//! Robustness fuzzing: corrupted or adversarial inputs must produce
//! errors (or bounded garbage), never panics or runaway loops. A sink
//! decodes packets assembled by other nodes over a lossy network — it has
//! to be bulletproof.

use dophy::decoder::decode_packet;
use dophy::header::DophyHeader;
use dophy::model_mgr::ModelSet;
use dophy::symbols::SymbolSpaces;
use dophy_coding::aggregate::AggregationPolicy;
use dophy_coding::range::{EncoderState, RangeDecoder};
use dophy_coding::serialize::ModelBlob;
use dophy_sim::{NodeId, Placement, RadioModel, RngHub, Topology};
use proptest::prelude::*;

fn topo() -> Topology {
    Topology::generate(
        Placement::Grid {
            side: 4,
            spacing: 12.0,
        },
        &RadioModel::default(),
        &RngHub::new(123),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random bytes as a range-coded stream: decoding bounded symbol
    /// counts must always terminate without panicking.
    #[test]
    fn range_decoder_survives_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        totals in proptest::collection::vec(2u32..1000, 1..50),
    ) {
        if let Ok(mut dec) = RangeDecoder::from_wire(&bytes) {
            for &t in &totals {
                match dec.decode_target(t) {
                    Ok(target) => {
                        prop_assert!(target < t);
                        if dec.decode_advance(target, 1).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
    }

    /// Arbitrary header fields + random stream bytes through the full
    /// packet decoder: must return Ok or Err, never panic, and any Ok
    /// result must be structurally valid.
    #[test]
    fn packet_decoder_survives_corruption(
        origin in 0u16..16,
        hops in 0u8..20,
        final_sender in 0u16..16,
        final_attempt in 1u16..=7,
        stream in proptest::collection::vec(any::<u8>(), 0..40),
        low in 0u64..(1u64 << 33),
        range in 1u32..=u32::MAX,
        cache in any::<u8>(),
        cache_size in 1u16..6,
    ) {
        let t = topo();
        let spaces = SymbolSpaces::new(
            (0..t.node_count())
                .map(|i| t.neighbors(NodeId(i as u16)).len())
                .max()
                .unwrap(),
            7,
            AggregationPolicy::Cap { cap: 4 },
            false,
        );
        let models = ModelSet::initial(&spaces);
        let header = DophyHeader {
            origin: NodeId(origin),
            seq: 1,
            epoch: 0,
            hops,
            coding_disabled: false,
            coder_state: EncoderState { low, range, cache, cache_size },
            stream,
        };
        // Err = corruption detected (the expected outcome); Ok must be
        // structurally valid.
        if let Ok(decoded) =
            decode_packet(&header, &t, &spaces, &models, NodeId(final_sender), final_attempt)
        {
            prop_assert_eq!(decoded.observations.len(), usize::from(hops) + 1);
            let path = decoded.path();
            prop_assert_eq!(path[0], NodeId(origin));
            prop_assert_eq!(*path.last().unwrap(), NodeId::SINK);
            // Every decoded hop must be a real topology edge.
            for w in path.windows(2) {
                if w[1] != NodeId::SINK {
                    prop_assert!(
                        t.neighbors(w[0]).contains(&w[1]),
                        "decoded non-edge {:?}", w
                    );
                }
            }
        }
    }

    /// Random bytes as a model blob: parse or reject, never panic; parsed
    /// models must be coder-safe.
    #[test]
    fn model_blob_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(model) = ModelBlob::from_bytes(bytes).decode() {
            use dophy_coding::model::SymbolModel;
            prop_assert!(model.num_symbols() >= 1);
            prop_assert!(model.total() >= model.num_symbols() as u32);
            prop_assert!(model.total() <= dophy_coding::range::MAX_TOTAL);
            for s in 0..model.num_symbols() {
                let (_, f) = model.lookup(s);
                prop_assert!(f >= 1);
            }
        }
    }

    /// Random bytes as a serialized header: parse or reject, never panic;
    /// round trip must be stable when parsing succeeds.
    #[test]
    fn header_parse_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        if let Some(h) = DophyHeader::from_bytes(&bytes) {
            // Re-serialisation canonicalises (e.g. the hops high bit), so a
            // second round trip must be a fixed point.
            let once = h.to_bytes();
            let twice = DophyHeader::from_bytes(&once).expect("self-produced bytes parse");
            prop_assert_eq!(&h, &twice);
        }
    }
}
