//! Robustness fuzzing: corrupted or adversarial inputs must produce
//! errors (or bounded garbage), never panics or runaway loops. A sink
//! decodes packets assembled by other nodes over a lossy network — it has
//! to be bulletproof.

use dophy::decoder::decode_packet;
use dophy::header::DophyHeader;
use dophy::model_mgr::ModelSet;
use dophy::symbols::SymbolSpaces;
use dophy_coding::aggregate::AggregationPolicy;
use dophy_coding::range::{EncoderState, RangeDecoder};
use dophy_coding::serialize::ModelBlob;
use dophy_sim::{NodeId, Placement, RadioModel, RngHub, Topology};
use proptest::prelude::*;

fn topo() -> Topology {
    Topology::generate(
        Placement::Grid {
            side: 4,
            spacing: 12.0,
        },
        &RadioModel::default(),
        &RngHub::new(123),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random bytes as a range-coded stream: decoding bounded symbol
    /// counts must always terminate without panicking.
    #[test]
    fn range_decoder_survives_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        totals in proptest::collection::vec(2u32..1000, 1..50),
    ) {
        if let Ok(mut dec) = RangeDecoder::from_wire(&bytes) {
            for &t in &totals {
                match dec.decode_target(t) {
                    Ok(target) => {
                        prop_assert!(target < t);
                        if dec.decode_advance(target, 1).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
    }

    /// Arbitrary header fields + random stream bytes through the full
    /// packet decoder: must return Ok or Err, never panic, and any Ok
    /// result must be structurally valid.
    #[test]
    fn packet_decoder_survives_corruption(
        origin in 0u32..16,
        hops in 0u8..20,
        final_sender in 0u32..16,
        final_attempt in 1u16..=7,
        stream in proptest::collection::vec(any::<u8>(), 0..40),
        low in 0u64..(1u64 << 33),
        range in 1u32..=u32::MAX,
        cache in any::<u8>(),
        cache_size in 1u16..6,
    ) {
        let t = topo();
        let spaces = SymbolSpaces::new(
            (0..t.node_count())
                .map(|i| t.neighbors(NodeId(i as u32)).len())
                .max()
                .unwrap(),
            7,
            AggregationPolicy::Cap { cap: 4 },
            false,
        );
        let models = ModelSet::initial(&spaces);
        let header = DophyHeader {
            origin: NodeId(origin),
            seq: 1,
            epoch: 0,
            hops,
            coding_disabled: false,
            coder_state: EncoderState { low, range, cache, cache_size },
            stream,
        };
        // Err = corruption detected (the expected outcome); Ok must be
        // structurally valid.
        if let Ok(decoded) =
            decode_packet(&header, &t, &spaces, &models, NodeId(final_sender), final_attempt)
        {
            prop_assert_eq!(decoded.observations.len(), usize::from(hops) + 1);
            let path = decoded.path();
            prop_assert_eq!(path[0], NodeId(origin));
            prop_assert_eq!(*path.last().unwrap(), NodeId::SINK);
            // Every decoded hop must be a real topology edge.
            for w in path.windows(2) {
                if w[1] != NodeId::SINK {
                    prop_assert!(
                        t.neighbors(w[0]).contains(&w[1]),
                        "decoded non-edge {:?}", w
                    );
                }
            }
        }
    }

    /// Random bytes as a model blob: parse or reject, never panic; parsed
    /// models must be coder-safe.
    #[test]
    fn model_blob_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(model) = ModelBlob::from_bytes(bytes).decode() {
            use dophy_coding::model::SymbolModel;
            prop_assert!(model.num_symbols() >= 1);
            prop_assert!(model.total() >= model.num_symbols() as u32);
            prop_assert!(model.total() <= dophy_coding::range::MAX_TOTAL);
            for s in 0..model.num_symbols() {
                let (_, f) = model.lookup(s);
                prop_assert!(f >= 1);
            }
        }
    }

    /// Random bytes as a serialized header: parse or reject, never panic;
    /// round trip must be stable when parsing succeeds.
    #[test]
    fn header_parse_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        if let Some(h) = DophyHeader::from_bytes(&bytes) {
            // Re-serialisation canonicalises (e.g. the hops high bit), so a
            // second round trip must be a fixed point.
            let once = h.to_bytes();
            let twice = DophyHeader::from_bytes(&once).expect("self-produced bytes parse");
            prop_assert_eq!(&h, &twice);
        }
    }

    /// The receive-time fault model at the wire level: serialize a
    /// genuinely encoded packet, apply arbitrary byte mutations, and
    /// re-parse. Parsing either destroys the frame or yields a header the
    /// decoder turns into a typed result — never a panic — and headers
    /// claiming impossible hop counts or origins hit the dedicated
    /// structural checks before any model decoding.
    #[test]
    fn mutated_wire_packets_decode_to_typed_results(
        seq in any::<u32>(),
        attempt in 1u16..=7,
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
        final_sender in 0u32..16,
        final_attempt in 1u16..=7,
    ) {
        use dophy::decoder::DecodeError;
        let t = topo();
        let spaces = SymbolSpaces::new(
            (0..t.node_count())
                .map(|i| t.neighbors(NodeId(i as u32)).len())
                .max()
                .unwrap(),
            7,
            AggregationPolicy::Cap { cap: 4 },
            false,
        );
        let models = ModelSet::initial(&spaces);
        let relay = t.neighbors(NodeId::SINK)[0];
        let origin = t
            .neighbors(relay)
            .iter()
            .copied()
            .find(|&n| n != NodeId::SINK)
            .unwrap_or(relay);
        let mut h = DophyHeader::new(origin, seq, 0);
        dophy::encoder::encode_hop(&mut h, &t, &spaces, &models, origin, relay, attempt)
            .expect("fresh models encode");
        let mut bytes = h.to_bytes();
        for &(pos, val) in &mutations {
            let idx = pos % bytes.len();
            bytes[idx] ^= val;
        }
        if let Some(parsed) = DophyHeader::from_bytes(&bytes) {
            let res = decode_packet(
                &parsed,
                &t,
                &spaces,
                &models,
                NodeId(final_sender),
                final_attempt,
            );
            if usize::from(parsed.hops) >= t.node_count() {
                prop_assert!(
                    matches!(res, Err(DecodeError::HopCountOutOfRange { .. })),
                    "impossible hop count must be caught structurally, got {res:?}"
                );
            } else if parsed.origin.index() >= t.node_count() {
                prop_assert!(
                    matches!(res, Err(DecodeError::OriginOutOfRange { .. })),
                    "impossible origin must be caught structurally, got {res:?}"
                );
            }
            // Any other outcome (Ok or typed Err) is acceptable; getting
            // here without a panic is the property under test.
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-layer integration: the live pipeline under injected faults
// ---------------------------------------------------------------------------

use dophy_bench::figures::{canonical_dophy, canonical_sim};
use dophy_bench::scenario::{run_scenario, RunSpec};
use dophy_bench::RunOutput;
use dophy_sim::{FaultConfig, SimDuration};
use std::collections::BTreeMap;

/// Stable textual fingerprint of everything a run reports that faults
/// could perturb (estimates sorted so HashMap iteration order cannot
/// produce false mismatches).
fn fingerprint(out: &RunOutput) -> String {
    let estimates: BTreeMap<(u32, u32), String> = out
        .dophy
        .iter()
        .map(|(&k, &v)| (k, format!("{v:.12e}")))
        .collect();
    format!(
        "{:?}|{:?}|{estimates:?}|{:.12e}|{}",
        out.decode, out.faults, out.delivery_ratio, out.overhead.packets
    )
}

/// Acceptance: the canonical 200-node scenario at 1% frame corruption
/// completes twice with byte-identical results — fault draws come from
/// named RNG streams, so the whole faulted run replays exactly.
#[test]
fn canonical_faulted_run_replays_byte_identical() {
    let spec = RunSpec {
        faults: Some(FaultConfig::corruption(0.01)),
        ..RunSpec::new(
            canonical_sim(7, false),
            canonical_dophy(),
            SimDuration::from_secs(300),
        )
    };
    let a = run_scenario(&spec);
    let b = run_scenario(&spec);
    let fa = a.faults.expect("fault summary present");
    assert!(fa.injection.frames_corrupted > 0, "faults must fire");
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "faulted canonical run must replay identically"
    );
}

/// Acceptance: quarantining corrupted packets costs coverage, not
/// correctness — Dophy's MAE under 1% corruption stays within 20% (plus
/// an absolute epsilon for small-sample noise) of the fault-free run.
#[test]
fn corruption_degrades_accuracy_gracefully() {
    let duration = SimDuration::from_secs(900);
    let clean = run_scenario(&RunSpec::new(
        canonical_sim(131, true),
        canonical_dophy(),
        duration,
    ));
    let faulted = run_scenario(&RunSpec {
        faults: Some(FaultConfig::corruption(0.01)),
        ..RunSpec::new(canonical_sim(131, true), canonical_dophy(), duration)
    });
    let f = faulted.faults.expect("fault summary present");
    assert!(
        faulted.decode.quarantined() + f.frames_destroyed > 0,
        "1% corruption must actually bite"
    );
    let clean_mae = clean.score_scheme(&clean.dophy).mae;
    let faulted_mae = faulted.score_scheme(&faulted.dophy).mae;
    assert!(
        faulted_mae < clean_mae * 1.2 + 0.01,
        "faulted MAE {faulted_mae:.4} vs clean {clean_mae:.4}: quarantine must not poison the estimator"
    );
}

/// Every frame truncated: nothing decodes, nothing reaches the
/// estimator, and the run still completes without a panic — the
/// isolation guarantee at its extreme.
#[test]
fn total_truncation_quarantines_everything() {
    let spec = RunSpec {
        faults: Some(FaultConfig {
            frame_corrupt_prob: 1.0,
            flips_per_frame: 4,
            truncate_prob: 1.0,
            header_bias: 0.5,
            crash: None,
            dissemination: None,
        }),
        ..RunSpec::new(
            canonical_sim(17, true),
            canonical_dophy(),
            SimDuration::from_secs(600),
        )
    };
    let out = run_scenario(&spec);
    let f = out.faults.expect("fault summary present");
    assert!(f.injection.truncations > 0, "truncation must fire");
    assert_eq!(
        out.decode.ok, 0,
        "no truncated frame may decode successfully"
    );
    assert!(
        out.dophy.is_empty(),
        "the estimator must never see a faulted packet"
    );
}
