//! Cross-crate integration tests: the full stack (simulator + routing +
//! Dophy) run end-to-end, with invariants checked against ground truth.

use dophy::decoder::decode_packet;
use dophy::header::DophyHeader;
use dophy::metrics::score;
use dophy::model_mgr::ModelUpdateConfig;
use dophy::protocol::{build_simulation, DophyConfig};
use dophy::symbols::SymbolSpaces;
use dophy_coding::aggregate::AggregationPolicy;
use dophy_sim::{LinkDynamics, NodeId, Placement, SimConfig, SimDuration};
use std::collections::HashMap;

fn base_sim(seed: u64) -> SimConfig {
    SimConfig {
        placement: Placement::Grid {
            side: 5,
            spacing: 15.0,
        },
        dynamics: LinkDynamics::Static,
        seed,
        ..SimConfig::canonical(seed)
    }
}

fn fast_dophy() -> DophyConfig {
    DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(30),
        ..DophyConfig::default()
    }
}

#[test]
fn estimates_converge_to_empirical_truth() {
    let sim = base_sim(11);
    let (mut engine, shared) = build_simulation(&sim, &fast_dophy());
    engine.start();
    engine.run_for(SimDuration::from_secs(1500));

    let mut truth = HashMap::new();
    for (i, l) in engine.topology().links().iter().enumerate() {
        let t = engine.trace().links()[i];
        if t.data_tx >= 100 {
            truth.insert((l.src.0, l.dst.0), t.empirical_loss().unwrap());
        }
    }
    assert!(truth.len() >= 10, "need traffic on many links");

    let s = shared.lock();
    let est: HashMap<(u32, u32), f64> = s
        .infer
        .in_band
        .estimates(sim.mac.max_attempts, 50)
        .into_iter()
        .map(|(k, e)| (k, e.loss))
        .collect();
    let rep = score(&est, &truth);
    assert!(rep.scored_links >= 10);
    assert!(
        rep.mae < 0.03,
        "MAE {} too high for a static network",
        rep.mae
    );
    assert!(rep.max_abs_error < 0.15, "max error {}", rep.max_abs_error);
}

#[test]
fn every_decoded_packet_matches_its_true_hop_log() {
    // refine=true → exact attempts; every successfully decoded packet must
    // reproduce the ground-truth hop log recorded by the forwarders.
    let cfg = DophyConfig {
        refine: true,
        aggregation: AggregationPolicy::Cap { cap: 3 },
        ..fast_dophy()
    };
    let sim = base_sim(13);
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(400));

    let s = shared.lock();
    assert!(s.decode.ok > 100, "decoded {}", s.decode.ok);
    assert_eq!(
        s.decode.bad_index + s.decode.path_mismatch + s.decode.coding,
        0,
        "static net must have zero hard decode failures: {:?}",
        s.decode
    );
    // Spot-verify the decode pipeline offline: re-decode is covered by the
    // protocol; here we check the observation counts line up with hop logs.
    let total_hops: usize = s.true_hops.values().map(Vec::len).sum();
    assert!(total_hops > 0);
    let mean_hops = total_hops as f64 / s.true_hops.len() as f64;
    assert!(
        (1.0..8.0).contains(&mean_hops),
        "grid paths should average a few hops: {mean_hops}"
    );
}

#[test]
fn dophy_beats_traditional_under_dynamics_and_not_worse_static() {
    // The paper's comparative claim, as an invariant.
    for (dynamics, must_win_by) in [
        (LinkDynamics::Static, 1.0),
        (
            LinkDynamics::Volatile {
                sigma_per_sqrt_s: 0.03,
            },
            1.5,
        ),
    ] {
        let spec = dophy_bench::RunSpec::new(
            SimConfig {
                placement: Placement::UniformDisk {
                    n: 60,
                    radius: 75.0,
                },
                dynamics,
                ..SimConfig::canonical(17)
            },
            fast_dophy(),
            SimDuration::from_secs(900),
        );
        let out = dophy_bench::run_scenario(&spec);
        let d = out.score_scheme(&out.dophy).mae;
        let em = out.score_scheme(&out.em).mae;
        assert!(
            d * must_win_by <= em,
            "{dynamics:?}: dophy {d} vs traditional {em} (needed {must_win_by}x)"
        );
    }
}

#[test]
fn aggregation_reduces_overhead_without_wrecking_accuracy() {
    let run = |cap: u8| {
        let cfg = DophyConfig {
            aggregation: AggregationPolicy::Cap { cap },
            ..fast_dophy()
        };
        let sim = base_sim(19);
        let (mut engine, shared) = build_simulation(&sim, &cfg);
        engine.start();
        engine.run_for(SimDuration::from_secs(900));
        let mut truth = HashMap::new();
        for (i, l) in engine.topology().links().iter().enumerate() {
            let t = engine.trace().links()[i];
            if t.data_tx >= 50 {
                truth.insert((l.src.0, l.dst.0), t.empirical_loss().unwrap());
            }
        }
        let s = shared.lock();
        let est: HashMap<(u32, u32), f64> = s
            .infer
            .in_band
            .estimates(sim.mac.max_attempts, 30)
            .into_iter()
            .map(|(k, e)| (k, e.loss))
            .collect();
        (s.overhead.mean_stream_bytes(), score(&est, &truth).mae)
    };
    let (bytes_full, mae_full) = run(7);
    let (bytes_agg, mae_agg) = run(3);
    assert!(
        bytes_agg <= bytes_full + 0.05,
        "aggregation must not inflate overhead: {bytes_agg} vs {bytes_full}"
    );
    assert!(
        mae_agg < mae_full + 0.02,
        "censored MLE keeps accuracy: {mae_agg} vs {mae_full}"
    );
}

#[test]
fn model_updates_reduce_stream_size_on_stationary_traffic() {
    // After the sink learns the real symbol distribution, per-packet
    // streams should not be larger than under the built-in prior.
    let run = |updates: bool| {
        let cfg = DophyConfig {
            model_update: ModelUpdateConfig {
                update_period: SimDuration::from_secs(120),
                min_observations: if updates { 100 } else { u64::MAX },
                ..ModelUpdateConfig::default()
            },
            ..fast_dophy()
        };
        let sim = base_sim(23);
        let (mut engine, shared) = build_simulation(&sim, &cfg);
        engine.start();
        engine.run_for(SimDuration::from_secs(1200));
        let s = shared.lock();
        // Only measure the tail (after learning kicked in) via totals;
        // good enough for a one-sided check.
        (s.overhead.mean_stream_bytes(), s.manager.refreshes)
    };
    let (with_updates, refreshes) = run(true);
    let (without, zero) = run(false);
    assert!(refreshes >= 2);
    assert_eq!(zero, 0);
    assert!(
        with_updates <= without + 0.1,
        "learned models must not code worse: {with_updates} vs {without}"
    );
}

#[test]
fn offline_encode_decode_agrees_with_simulation_spaces() {
    // Build the same SymbolSpaces the stack builds, then round-trip a
    // synthetic packet over the generated topology.
    let sim = base_sim(29);
    let topo = sim.topology();
    let max_degree = (0..topo.node_count())
        .map(|i| topo.neighbors(NodeId(i as u32)).len())
        .max()
        .unwrap();
    let spaces = SymbolSpaces::new(
        max_degree,
        sim.mac.max_attempts,
        AggregationPolicy::Identity,
        false,
    );
    let models = dophy::model_mgr::ModelSet::initial(&spaces);
    // Path: corner node 24 via best neighbors; stop before the sink.
    let mut path = vec![NodeId(24)];
    for _ in 0..3 {
        let cur = *path.last().unwrap();
        let next = topo.neighbors(cur)[0];
        path.push(next);
        if next == NodeId::SINK {
            break;
        }
    }
    // Every relay on the walk encodes its hop; the walk's last node then
    // hands the packet to the sink (that final hop is observed directly).
    let mut header = DophyHeader::new(path[0], 9, 0);
    for w in path.windows(2) {
        dophy::encoder::encode_hop(&mut header, &topo, &spaces, &models, w[0], w[1], 2).unwrap();
    }
    let last_relay = *path.last().unwrap();
    let decoded =
        decode_packet(&header, &topo, &spaces, &models, last_relay, 1).expect("decodable");
    assert_eq!(decoded.origin, path[0]);
    assert_eq!(decoded.observations.len(), usize::from(header.hops) + 1);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let sim = SimConfig {
            dynamics: LinkDynamics::Drift {
                amp: 0.2,
                period_s: 120.0,
            },
            ..base_sim(31)
        };
        let (mut engine, shared) = build_simulation(&sim, &fast_dophy());
        engine.start();
        engine.run_for(SimDuration::from_secs(400));
        let s = shared.lock();
        (
            s.overhead.packets,
            s.overhead.stream_bytes,
            s.decode,
            s.manager.dissemination_bytes,
            engine.trace().bytes_on_air,
        )
    };
    assert_eq!(run(), run());
}
