//! Observability invariants: attaching tracing, counting, and metrics
//! instrumentation to a run must not perturb the simulation, and the
//! artifacts the instrumentation produces must be well-formed.

use dophy_bench::{execute_cell, run_scenario, run_scenario_with, Instruments, RunOutput, RunSpec};
use dophy_sim::obs::{
    CountingObserver, Event, FlightRecorder, JsonlTracer, MultiObserver, Observer, TraceRecord,
    TxEvent,
};
use dophy_sim::{ChromeTracer, LinkDynamics, Placement, SimConfig, SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn quick_spec() -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 4,
            spacing: 15.0,
        },
        dynamics: LinkDynamics::Volatile {
            sigma_per_sqrt_s: 0.02,
        },
        ..SimConfig::canonical(17)
    };
    let dophy = dophy::protocol::DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(30),
        ..dophy::protocol::DophyConfig::default()
    };
    RunSpec::new(sim, dophy, SimDuration::from_secs(600))
}

/// Serializes the simulation-determined parts of a run (everything except
/// wall-clock telemetry) so two runs can be compared byte-for-byte. The
/// vendored serde emits map keys in sorted order, so equal outputs always
/// produce equal bytes.
fn fingerprint(out: &RunOutput) -> String {
    let mut s = String::new();
    s += &serde_json::to_string(&out.truth).unwrap();
    s += &serde_json::to_string(&out.dophy).unwrap();
    s += &serde_json::to_string(&out.naive).unwrap();
    s += &serde_json::to_string(&out.bayes).unwrap();
    s += &serde_json::to_string(&out.em).unwrap();
    s += &serde_json::to_string(&out.ls).unwrap();
    s += &serde_json::to_string(&out.decode).unwrap();
    s += &serde_json::to_string(&out.overhead).unwrap();
    s += &serde_json::to_string(&out.churn).unwrap();
    s += &format!(
        "|{}|{}|{}|{}",
        out.dissemination_bytes, out.refreshes, out.delivery_ratio, out.node_count
    );
    s
}

#[test]
fn observed_run_is_bit_identical_to_bare_run() {
    let spec = quick_spec();
    let bare = run_scenario(&spec);

    let tracer = Arc::new(JsonlTracer::new(Vec::new()));
    let counter = Arc::new(CountingObserver::new());
    let observer = Arc::new(MultiObserver::new(vec![
        tracer.clone() as Arc<dyn dophy_sim::Observer>,
        counter.clone() as Arc<dyn dophy_sim::Observer>,
    ]));
    let observed = run_scenario_with(
        &spec,
        Instruments {
            observer: Some(observer.clone()),
            metrics_every: Some(SimDuration::from_secs(60)),
            ..Instruments::default()
        },
    );

    // The full simulation outcome must be unaffected by instrumentation.
    for (name, a, b) in [
        (
            "truth",
            serde_json::to_string(&bare.truth).unwrap(),
            serde_json::to_string(&observed.truth).unwrap(),
        ),
        (
            "dophy",
            serde_json::to_string(&bare.dophy).unwrap(),
            serde_json::to_string(&observed.dophy).unwrap(),
        ),
        (
            "naive",
            serde_json::to_string(&bare.naive).unwrap(),
            serde_json::to_string(&observed.naive).unwrap(),
        ),
        (
            "bayes",
            serde_json::to_string(&bare.bayes).unwrap(),
            serde_json::to_string(&observed.bayes).unwrap(),
        ),
        (
            "em",
            serde_json::to_string(&bare.em).unwrap(),
            serde_json::to_string(&observed.em).unwrap(),
        ),
        (
            "ls",
            serde_json::to_string(&bare.ls).unwrap(),
            serde_json::to_string(&observed.ls).unwrap(),
        ),
        (
            "decode",
            serde_json::to_string(&bare.decode).unwrap(),
            serde_json::to_string(&observed.decode).unwrap(),
        ),
        (
            "overhead",
            serde_json::to_string(&bare.overhead).unwrap(),
            serde_json::to_string(&observed.overhead).unwrap(),
        ),
        (
            "churn",
            serde_json::to_string(&bare.churn).unwrap(),
            serde_json::to_string(&observed.churn).unwrap(),
        ),
    ] {
        assert_eq!(a, b, "component {name} differs");
    }
    assert_eq!(fingerprint(&bare), fingerprint(&observed));

    // The trace saw real traffic and every line parses back into the
    // typed record it came from.
    tracer.flush();
    assert_eq!(tracer.io_errors(), 0);
    drop(observer); // the engine released its clone when the run finished
    let raw = match Arc::try_unwrap(tracer) {
        Ok(t) => t.into_inner(),
        Err(t) => panic!("tracer still shared: {} refs", Arc::strong_count(&t)),
    };
    let text = String::from_utf8(raw).expect("trace is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 1000, "only {} trace lines", lines.len());
    for line in &lines {
        let rec: TraceRecord =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
        // Round-trip: re-serializing yields the identical line.
        assert_eq!(&serde_json::to_string(&rec).unwrap(), *line);
    }

    // The counting observer agrees with the tracer on volume.
    let counts = counter.counts();
    let total = counts.tx
        + counts.rx
        + counts.ack
        + counts.drops
        + counts.timers
        + counts.parent_changes
        + counts.epoch_switches
        + counts.decodes
        + counts.spans;
    assert_eq!(total, lines.len() as u64);
    assert!(counts.tx > 0 && counts.rx > 0 && counts.ack > 0);
    assert!(counts.decodes > 0, "sink never decoded anything");
    assert!(counts.spans > 0, "lifecycle tracing never fired");
    assert!(!counter.noisiest_links(5).is_empty());

    // Metrics snapshots exist on the requested cadence and cover the MAC,
    // routing, coding, and decode families.
    assert_eq!(observed.metrics.len(), 10);
    let last = observed.metrics.last().unwrap();
    for family in [
        "mac_unicast_started",
        "mac_bytes_on_air",
        "routing_beacons_sent",
        "routing_parent_changes",
        "model_dissemination_bytes",
        "decode_packets{outcome=ok}",
        "app_packets_delivered",
    ] {
        assert!(
            last.counters.iter().any(|(k, _)| k.starts_with(family)),
            "metrics missing family {family}"
        );
    }
    assert!(last
        .gauges
        .iter()
        .any(|(k, _)| k == "estimator_coverage_ratio"));
    assert!(last
        .histograms
        .iter()
        .any(|(k, _)| k == "mac_queue_depth_hist"));
    // Snapshots are strictly time-ordered on the sampling cadence.
    for w in observed.metrics.windows(2) {
        assert!(w[0].t_us < w[1].t_us);
    }
}

#[test]
fn metrics_cadence_does_not_perturb_results() {
    // Sampling metrics chunks the engine's run_for calls; the chunking
    // itself (no observer at all) must leave results untouched.
    let spec = quick_spec();
    let bare = run_scenario(&spec);
    let sampled = run_scenario_with(
        &spec,
        Instruments {
            metrics_every: Some(SimDuration::from_secs(7)),
            ..Instruments::default()
        },
    );
    assert_eq!(fingerprint(&bare), fingerprint(&sampled));
    assert!(!sampled.metrics.is_empty());
}

/// The full deep-observability stack at once — lifecycle tracing to both
/// exporters, event counting, hot-path profiling, metrics sampling, and
/// the flight recorder — must still leave the simulation bit-identical to
/// a bare run, and every artifact must be well-formed.
#[test]
fn fully_instrumented_run_is_bit_identical_and_artifacts_are_well_formed() {
    let spec = quick_spec();
    let bare = run_scenario(&spec);

    let jsonl = Arc::new(JsonlTracer::new(Vec::new()));
    let chrome = Arc::new(ChromeTracer::new(Vec::new()));
    let counter = Arc::new(CountingObserver::new());
    let recorder = Arc::new(FlightRecorder::new(128));
    let observer = Arc::new(MultiObserver::new(vec![
        jsonl.clone() as Arc<dyn Observer>,
        chrome.clone() as Arc<dyn Observer>,
        counter.clone() as Arc<dyn Observer>,
    ]));
    let full = run_scenario_with(
        &spec,
        Instruments {
            observer: Some(observer),
            metrics_every: Some(SimDuration::from_secs(60)),
            progress: false,
            profile: true,
            flight_recorder: Some(recorder.clone()),
            ..Instruments::default()
        },
    );

    // Zero perturbation even with everything on at once.
    assert_eq!(fingerprint(&bare), fingerprint(&full));

    // The Chrome trace is one well-formed JSON array of span events.
    assert!(chrome.finish());
    assert_eq!(chrome.io_errors(), 0);
    assert!(chrome.events_written() > 0, "chrome trace is empty");
    let chrome_text = {
        let chrome = Arc::try_unwrap(chrome).unwrap_or_else(|c| {
            panic!("chrome tracer still shared: {} refs", Arc::strong_count(&c))
        });
        String::from_utf8(chrome.into_inner()).expect("chrome trace is UTF-8")
    };
    let parsed: serde::Value = serde_json::from_str(&chrome_text).expect("chrome trace parses");
    let events = parsed.as_array().expect("chrome trace is an array");
    assert!(!events.is_empty());
    for ev in events {
        let obj = ev.as_object().expect("trace event is an object");
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(
                serde::find_field(obj, key).is_some(),
                "chrome event missing {key}"
            );
        }
    }

    // The profiler reported every instrumented subsystem, and each one
    // actually ran during a full simulation.
    let profile = full.profile.as_ref().expect("profile requested");
    let names: Vec<&str> = profile
        .subsystems
        .iter()
        .map(|s| s.subsystem.as_str())
        .collect();
    assert_eq!(
        names,
        [
            "queue_pop",
            "broadcast_fanout",
            "unicast_arq",
            "decode",
            "estimator_update"
        ]
    );
    for sub in &profile.subsystems {
        assert!(sub.count > 0, "subsystem {} never profiled", sub.subsystem);
        assert!(sub.total_ns > 0, "subsystem {} has no time", sub.subsystem);
    }
    // Profile histograms were also exported into the metrics registry.
    let last = full.metrics.last().expect("metrics sampled");
    for sub in names {
        let key = format!("profile_wall_ns{{subsystem={sub}}}");
        assert!(
            last.histograms.iter().any(|(k, _)| *k == key),
            "metrics missing {key}"
        );
    }

    // The flight recorder ring saw the run and holds at most its capacity,
    // with trace ids intact in the retained tail.
    assert!(recorder.total_recorded() > 128);
    let tail = recorder.tail();
    assert_eq!(tail.len(), 128);
    assert!(
        tail.iter().any(|r| matches!(r.event, Event::Span(_))),
        "no spans in the recorder tail"
    );

    // JSONL tracer stayed healthy alongside everything else.
    jsonl.flush();
    assert_eq!(jsonl.io_errors(), 0);
}

/// Observer that panics after a fixed number of transmissions — stands in
/// for any mid-run failure inside an instrumented cell.
struct PanicAfter {
    seen: AtomicU64,
    limit: u64,
}

impl Observer for PanicAfter {
    fn on_tx(&self, _now: SimTime, _ev: &TxEvent) {
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.limit {
            panic!("injected mid-run failure for the flight recorder");
        }
    }
}

/// A panic inside an instrumented run must surface as a cell error AND
/// leave a postmortem JSONL with the last events (trace ids included) —
/// the flight recorder sits before other observers in the fan-out, so it
/// has already recorded the events leading up to the failure.
#[test]
fn injected_panic_dumps_flight_recorder_postmortem() {
    let path = std::env::temp_dir().join(format!(
        "dophy-postmortem-{}-{}.jsonl",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_file(&path);

    let recorder = Arc::new(FlightRecorder::with_output(64, path.clone()));
    let bomb = Arc::new(PanicAfter {
        seen: AtomicU64::new(0),
        limit: 500,
    });
    let spec = quick_spec();
    let err = execute_cell(
        "panic-cell",
        spec,
        Instruments {
            observer: Some(bomb as Arc<dyn Observer>),
            flight_recorder: Some(recorder.clone()),
            ..Instruments::default()
        },
        1,
    )
    .expect_err("the injected panic must fail the cell");
    assert!(
        err.contains("panic-cell") && err.contains("injected mid-run failure"),
        "error must name the cell and the panic: {err}"
    );

    let text = std::fs::read_to_string(&path).expect("postmortem file written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + 64, "header + full ring");
    let header: serde::Value = serde_json::from_str(lines[0]).unwrap();
    let pm = serde::find_field(header.as_object().unwrap(), "postmortem")
        .and_then(serde::Value::as_object)
        .expect("postmortem header");
    assert_eq!(
        serde::find_field(pm, "label").and_then(serde::Value::as_str),
        Some("panic-cell")
    );
    let mut span_lines = 0;
    for line in &lines[1..] {
        let rec: TraceRecord =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad tail line {line}: {e}"));
        if let Event::Span(s) = rec.event {
            assert_ne!(s.trace_id, 0);
            span_lines += 1;
        }
    }
    assert!(span_lines > 0, "postmortem tail carries no trace ids");
    let _ = std::fs::remove_file(&path);
}
