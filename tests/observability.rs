//! Observability invariants: attaching tracing, counting, and metrics
//! instrumentation to a run must not perturb the simulation, and the
//! artifacts the instrumentation produces must be well-formed.

use dophy_bench::{run_scenario, run_scenario_with, Instruments, RunOutput, RunSpec};
use dophy_sim::obs::{CountingObserver, JsonlTracer, MultiObserver, TraceRecord};
use dophy_sim::{LinkDynamics, Placement, SimConfig, SimDuration};
use std::sync::Arc;

fn quick_spec() -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 4,
            spacing: 15.0,
        },
        dynamics: LinkDynamics::Volatile {
            sigma_per_sqrt_s: 0.02,
        },
        ..SimConfig::canonical(17)
    };
    let dophy = dophy::protocol::DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(30),
        ..dophy::protocol::DophyConfig::default()
    };
    RunSpec::new(sim, dophy, SimDuration::from_secs(600))
}

/// Serializes the simulation-determined parts of a run (everything except
/// wall-clock telemetry) so two runs can be compared byte-for-byte. The
/// vendored serde emits map keys in sorted order, so equal outputs always
/// produce equal bytes.
fn fingerprint(out: &RunOutput) -> String {
    let mut s = String::new();
    s += &serde_json::to_string(&out.truth).unwrap();
    s += &serde_json::to_string(&out.dophy).unwrap();
    s += &serde_json::to_string(&out.naive).unwrap();
    s += &serde_json::to_string(&out.bayes).unwrap();
    s += &serde_json::to_string(&out.em).unwrap();
    s += &serde_json::to_string(&out.ls).unwrap();
    s += &serde_json::to_string(&out.decode).unwrap();
    s += &serde_json::to_string(&out.overhead).unwrap();
    s += &serde_json::to_string(&out.churn).unwrap();
    s += &format!(
        "|{}|{}|{}|{}",
        out.dissemination_bytes, out.refreshes, out.delivery_ratio, out.node_count
    );
    s
}

#[test]
fn observed_run_is_bit_identical_to_bare_run() {
    let spec = quick_spec();
    let bare = run_scenario(&spec);

    let tracer = Arc::new(JsonlTracer::new(Vec::new()));
    let counter = Arc::new(CountingObserver::new());
    let observer = Arc::new(MultiObserver::new(vec![
        tracer.clone() as Arc<dyn dophy_sim::Observer>,
        counter.clone() as Arc<dyn dophy_sim::Observer>,
    ]));
    let observed = run_scenario_with(
        &spec,
        Instruments {
            observer: Some(observer.clone()),
            metrics_every: Some(SimDuration::from_secs(60)),
            progress: false,
        },
    );

    // The full simulation outcome must be unaffected by instrumentation.
    for (name, a, b) in [
        (
            "truth",
            serde_json::to_string(&bare.truth).unwrap(),
            serde_json::to_string(&observed.truth).unwrap(),
        ),
        (
            "dophy",
            serde_json::to_string(&bare.dophy).unwrap(),
            serde_json::to_string(&observed.dophy).unwrap(),
        ),
        (
            "naive",
            serde_json::to_string(&bare.naive).unwrap(),
            serde_json::to_string(&observed.naive).unwrap(),
        ),
        (
            "bayes",
            serde_json::to_string(&bare.bayes).unwrap(),
            serde_json::to_string(&observed.bayes).unwrap(),
        ),
        (
            "em",
            serde_json::to_string(&bare.em).unwrap(),
            serde_json::to_string(&observed.em).unwrap(),
        ),
        (
            "ls",
            serde_json::to_string(&bare.ls).unwrap(),
            serde_json::to_string(&observed.ls).unwrap(),
        ),
        (
            "decode",
            serde_json::to_string(&bare.decode).unwrap(),
            serde_json::to_string(&observed.decode).unwrap(),
        ),
        (
            "overhead",
            serde_json::to_string(&bare.overhead).unwrap(),
            serde_json::to_string(&observed.overhead).unwrap(),
        ),
        (
            "churn",
            serde_json::to_string(&bare.churn).unwrap(),
            serde_json::to_string(&observed.churn).unwrap(),
        ),
    ] {
        assert_eq!(a, b, "component {name} differs");
    }
    assert_eq!(fingerprint(&bare), fingerprint(&observed));

    // The trace saw real traffic and every line parses back into the
    // typed record it came from.
    tracer.flush();
    assert_eq!(tracer.io_errors(), 0);
    drop(observer); // the engine released its clone when the run finished
    let raw = match Arc::try_unwrap(tracer) {
        Ok(t) => t.into_inner(),
        Err(t) => panic!("tracer still shared: {} refs", Arc::strong_count(&t)),
    };
    let text = String::from_utf8(raw).expect("trace is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 1000, "only {} trace lines", lines.len());
    for line in &lines {
        let rec: TraceRecord =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
        // Round-trip: re-serializing yields the identical line.
        assert_eq!(&serde_json::to_string(&rec).unwrap(), *line);
    }

    // The counting observer agrees with the tracer on volume.
    let counts = counter.counts();
    let total = counts.tx
        + counts.rx
        + counts.ack
        + counts.drops
        + counts.timers
        + counts.parent_changes
        + counts.epoch_switches
        + counts.decodes;
    assert_eq!(total, lines.len() as u64);
    assert!(counts.tx > 0 && counts.rx > 0 && counts.ack > 0);
    assert!(counts.decodes > 0, "sink never decoded anything");
    assert!(!counter.noisiest_links(5).is_empty());

    // Metrics snapshots exist on the requested cadence and cover the MAC,
    // routing, coding, and decode families.
    assert_eq!(observed.metrics.len(), 10);
    let last = observed.metrics.last().unwrap();
    for family in [
        "mac_unicast_started",
        "mac_bytes_on_air",
        "routing_beacons_sent",
        "routing_parent_changes",
        "model_dissemination_bytes",
        "decode_packets{outcome=ok}",
        "app_packets_delivered",
    ] {
        assert!(
            last.counters.iter().any(|(k, _)| k.starts_with(family)),
            "metrics missing family {family}"
        );
    }
    assert!(last
        .gauges
        .iter()
        .any(|(k, _)| k == "estimator_coverage_ratio"));
    assert!(last
        .histograms
        .iter()
        .any(|(k, _)| k == "mac_queue_depth_hist"));
    // Snapshots are strictly time-ordered on the sampling cadence.
    for w in observed.metrics.windows(2) {
        assert!(w[0].t_us < w[1].t_us);
    }
}

#[test]
fn metrics_cadence_does_not_perturb_results() {
    // Sampling metrics chunks the engine's run_for calls; the chunking
    // itself (no observer at all) must leave results untouched.
    let spec = quick_spec();
    let bare = run_scenario(&spec);
    let sampled = run_scenario_with(
        &spec,
        Instruments {
            observer: None,
            metrics_every: Some(SimDuration::from_secs(7)),
            progress: false,
        },
    );
    assert_eq!(fingerprint(&bare), fingerprint(&sampled));
    assert!(!sampled.metrics.is_empty());
}
