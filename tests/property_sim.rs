//! Property tests on the simulator: conservation invariants that must hold
//! for any topology, seed, dynamics, and MAC configuration.

use dophy_routing::{RouterConfig, RoutingOnlyNode};
use dophy_sim::{Engine, LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use proptest::prelude::*;
use std::sync::Arc;

fn dynamics_strategy() -> impl Strategy<Value = LinkDynamics> {
    prop_oneof![
        Just(LinkDynamics::Static),
        (0.01f64..0.1).prop_map(|s| LinkDynamics::Volatile {
            sigma_per_sqrt_s: s
        }),
        ((0.05f64..0.3), (10.0f64..300.0))
            .prop_map(|(amp, period_s)| LinkDynamics::Drift { amp, period_s }),
        ((0.02f64..0.2), (0.1f64..0.9), (2.0f64..120.0)).prop_map(|(lift, bad_factor, cycle_s)| {
            LinkDynamics::Bursty {
                lift,
                bad_factor,
                cycle_s,
            }
        }),
    ]
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    prop_oneof![
        (2u16..5, (8.0f64..20.0)).prop_map(|(side, spacing)| Placement::Grid { side, spacing }),
        (2u16..25, (30.0f64..80.0)).prop_map(|(n, radius)| Placement::UniformDisk { n, radius }),
        (2u16..10, (5.0f64..30.0)).prop_map(|(n, spacing)| Placement::Line { n, spacing }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trace_counters_conserve(
        placement in placement_strategy(),
        dynamics in dynamics_strategy(),
        seed in 0u64..10_000,
        max_attempts in 1u16..10,
    ) {
        let cfg = SimConfig {
            placement,
            radio: RadioModel::default(),
            mac: MacConfig {
                max_attempts,
                ..MacConfig::default()
            },
            dynamics,
            seed,
        };
        let topo = Arc::new(cfg.topology());
        let models = cfg.loss_models(&topo);
        let protos = (0..topo.node_count())
            .map(|_| RoutingOnlyNode::new(RouterConfig::default()))
            .collect();
        let mut e = Engine::new(Arc::clone(&topo), &models, cfg.mac, cfg.hub(), protos);
        e.start();
        e.run_for(SimDuration::from_secs(90));

        let t = e.trace();
        for (i, l) in t.links().iter().enumerate() {
            prop_assert!(l.data_rx <= l.data_tx, "link {i}: rx > tx");
            prop_assert!(l.ack_rx <= l.ack_tx, "link {i}: ack rx > tx");
            prop_assert!(l.bcast_rx <= l.bcast_tx, "link {i}: bcast rx > tx");
            // ACKs only follow received data frames.
            prop_assert!(l.ack_tx <= l.data_rx, "link {i}: more acks than receptions");
        }
        prop_assert_eq!(
            t.unicast_acked + t.unicast_failed,
            t.unicast_started,
            "every exchange ends exactly once"
        );
        if let Some(dr) = t.unicast_delivery_ratio() {
            prop_assert!((0.0..=1.0).contains(&dr));
        }
        let total_bcast_rx: u64 = t.links().iter().map(|l| l.bcast_rx).sum();
        prop_assert_eq!(total_bcast_rx, t.broadcast_rx);
        // Attempt counts never exceed the budget.
        if let Some(max) = t.attempts_hist.max_value() {
            prop_assert!(max as u16 <= max_attempts);
        }
    }

    #[test]
    fn replay_is_exact(
        seed in 0u64..10_000,
        dynamics in dynamics_strategy(),
    ) {
        let cfg = SimConfig {
            placement: Placement::UniformDisk { n: 15, radius: 50.0 },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics,
            seed,
        };
        let run = || {
            let topo = Arc::new(cfg.topology());
            let models = cfg.loss_models(&topo);
            let protos = (0..topo.node_count())
                .map(|_| RoutingOnlyNode::new(RouterConfig::default()))
                .collect();
            let mut e = Engine::new(topo, &models, cfg.mac, cfg.hub(), protos);
            e.start();
            e.run_for(SimDuration::from_secs(60));
            (
                e.trace().bytes_on_air,
                e.trace().broadcast_tx,
                e.trace().broadcast_rx,
                e.trace().links().to_vec(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
