//! Property tests on the simulator: conservation invariants that must hold
//! for any topology, seed, dynamics, and MAC configuration.

use dophy_routing::{RouterConfig, RoutingOnlyNode};
use dophy_sim::{Engine, LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use proptest::prelude::*;
use std::sync::Arc;

fn dynamics_strategy() -> impl Strategy<Value = LinkDynamics> {
    prop_oneof![
        Just(LinkDynamics::Static),
        (0.01f64..0.1).prop_map(|s| LinkDynamics::Volatile {
            sigma_per_sqrt_s: s
        }),
        ((0.05f64..0.3), (10.0f64..300.0))
            .prop_map(|(amp, period_s)| LinkDynamics::Drift { amp, period_s }),
        ((0.02f64..0.2), (0.1f64..0.9), (2.0f64..120.0)).prop_map(|(lift, bad_factor, cycle_s)| {
            LinkDynamics::Bursty {
                lift,
                bad_factor,
                cycle_s,
            }
        }),
    ]
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    prop_oneof![
        (2u32..5, (8.0f64..20.0)).prop_map(|(side, spacing)| Placement::Grid { side, spacing }),
        (2u32..25, (30.0f64..80.0)).prop_map(|(n, radius)| Placement::UniformDisk { n, radius }),
        (2u32..10, (5.0f64..30.0)).prop_map(|(n, spacing)| Placement::Line { n, spacing }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trace_counters_conserve(
        placement in placement_strategy(),
        dynamics in dynamics_strategy(),
        seed in 0u64..10_000,
        max_attempts in 1u16..10,
    ) {
        let cfg = SimConfig {
            placement,
            radio: RadioModel::default(),
            mac: MacConfig {
                max_attempts,
                ..MacConfig::default()
            },
            dynamics,
            seed,
        };
        let topo = Arc::new(cfg.topology());
        let models = cfg.loss_models(&topo);
        let protos = (0..topo.node_count())
            .map(|_| RoutingOnlyNode::new(RouterConfig::default()))
            .collect();
        let mut e = Engine::new(Arc::clone(&topo), &models, cfg.mac, cfg.hub(), protos);
        e.start();
        e.run_for(SimDuration::from_secs(90));

        let t = e.trace();
        for (i, l) in t.links().iter().enumerate() {
            prop_assert!(l.data_rx <= l.data_tx, "link {i}: rx > tx");
            prop_assert!(l.ack_rx <= l.ack_tx, "link {i}: ack rx > tx");
            prop_assert!(l.bcast_rx <= l.bcast_tx, "link {i}: bcast rx > tx");
            // ACKs only follow received data frames.
            prop_assert!(l.ack_tx <= l.data_rx, "link {i}: more acks than receptions");
        }
        prop_assert_eq!(
            t.unicast_acked + t.unicast_failed,
            t.unicast_started,
            "every exchange ends exactly once"
        );
        if let Some(dr) = t.unicast_delivery_ratio() {
            prop_assert!((0.0..=1.0).contains(&dr));
        }
        let total_bcast_rx: u64 = t.links().iter().map(|l| l.bcast_rx).sum();
        prop_assert_eq!(total_bcast_rx, t.broadcast_rx);
        // Attempt counts never exceed the budget.
        if let Some(max) = t.attempts_hist.max_value() {
            prop_assert!(max as u16 <= max_attempts);
        }
    }

    /// The CSR dst→link index must agree with a reference linear scan of
    /// the link table for every ordered node pair — present links and
    /// absent ones alike (regression for the O(1) `link_id` rewrite).
    #[test]
    fn link_id_index_matches_linear_scan(
        placement in placement_strategy(),
        seed in 0u64..10_000,
    ) {
        let cfg = SimConfig {
            placement,
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed,
        };
        let topo = cfg.topology();
        let n = topo.node_count();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let (u, v) = (dophy_sim::NodeId(u), dophy_sim::NodeId(v));
                let scanned = topo
                    .links()
                    .iter()
                    .position(|l| l.src == u && l.dst == v);
                prop_assert_eq!(
                    topo.link_id(u, v),
                    scanned,
                    "index and scan disagree for {:?}->{:?}",
                    u,
                    v
                );
                // The PRR accessor rides the same index.
                prop_assert_eq!(
                    topo.base_prr(u, v),
                    scanned.map(|i| topo.links()[i].base_prr)
                );
            }
        }
        // Fan-out pairs mirror the neighbor list exactly.
        for u in 0..n as u32 {
            let u = dophy_sim::NodeId(u);
            let pairs: Vec<_> = topo.neighbor_links(u).collect();
            prop_assert_eq!(pairs.len(), topo.neighbors(u).len());
            for (&v, &(pv, link)) in topo.neighbors(u).iter().zip(&pairs) {
                prop_assert_eq!(v, pv);
                prop_assert_eq!(topo.link_id(u, v), Some(link));
            }
        }
    }

    #[test]
    fn replay_is_exact(
        seed in 0u64..10_000,
        dynamics in dynamics_strategy(),
    ) {
        let cfg = SimConfig {
            placement: Placement::UniformDisk { n: 15, radius: 50.0 },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics,
            seed,
        };
        let run = || {
            let topo = Arc::new(cfg.topology());
            let models = cfg.loss_models(&topo);
            let protos = (0..topo.node_count())
                .map(|_| RoutingOnlyNode::new(RouterConfig::default()))
                .collect();
            let mut e = Engine::new(topo, &models, cfg.mac, cfg.hub(), protos);
            e.start();
            e.run_for(SimDuration::from_secs(60));
            (
                e.trace().bytes_on_air,
                e.trace().broadcast_tx,
                e.trace().broadcast_rx,
                e.trace().links().to_vec(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}

/// 1000-node scale smoke: the full Dophy stack at the fig14-scale sweep's
/// largest size must complete a short run, replay byte-identically, and
/// surface the engine throughput counters in a metrics snapshot.
#[test]
fn thousand_node_smoke() {
    use dophy::protocol::{build_simulation, DophyConfig};
    use dophy::telemetry::sample_metrics;
    use dophy_sim::obs::MetricsRegistry;

    let cfg = SimConfig {
        // Same constant-density scaling as fig14-scale: 120 m at 200
        // nodes → 120·√5 m at 1000.
        placement: Placement::UniformDisk {
            n: 1000,
            radius: 120.0 * 5.0_f64.sqrt(),
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed: 977,
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(5),
        warmup: SimDuration::from_secs(10),
        ..DophyConfig::default()
    };
    let run = || {
        let (mut engine, sink) = build_simulation(&cfg, &dophy);
        engine.start();
        engine.run_for(SimDuration::from_secs(30));
        let mut reg = MetricsRegistry::new();
        {
            let sink = sink.lock();
            sample_metrics(&mut reg, &engine, &sink);
        }
        let snap = reg.snapshot(engine.now()).clone();
        (
            engine.events_processed(),
            engine.trace().bytes_on_air,
            engine.trace().broadcast_rx,
            snap,
        )
    };

    let (events, bytes, bcast_rx, snap) = run();
    assert!(
        events > 100_000,
        "1000 nodes should be busy: {events} events"
    );
    assert!(bytes > 0 && bcast_rx > 0, "traffic must have flowed");
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    };
    assert_eq!(
        counter("engine_events_processed"),
        Some(events),
        "metrics snapshot must carry the engine event counter"
    );
    assert!(
        snap.gauges
            .iter()
            .any(|(k, v)| k == "engine_events_per_sim_sec" && *v > 0.0),
        "metrics snapshot must carry the engine throughput gauge"
    );

    let (events2, bytes2, bcast_rx2, _) = run();
    assert_eq!(
        (events, bytes, bcast_rx),
        (events2, bytes2, bcast_rx2),
        "same-seed 1000-node runs must replay identically"
    );
}
