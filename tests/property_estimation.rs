//! Property-based tests on the estimation stack: statistical invariants of
//! the truncated/censored MLE and the traditional-tomography solvers.

use dophy::baseline::{PathMeasurement, TraditionalConfig, TraditionalTomography};
use dophy::estimator::LinkEstimator;
use dophy_coding::aggregate::AttemptObservation;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws truncated-geometric attempt samples and feeds the estimator,
/// censoring at `cap` when given.
fn feed(est: &mut LinkEstimator, p: f64, r: u16, n: usize, cap: Option<u16>, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fed = 0;
    while fed < n {
        let mut a = 1u16;
        while rng.gen::<f64>() >= p && a <= r {
            a += 1;
        }
        if a > r {
            continue;
        }
        fed += 1;
        match cap {
            Some(c) if a >= c => est.observe(AttemptObservation::Range { lo: c, hi: r }),
            _ => est.observe(AttemptObservation::Exact(a)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The MLE is consistent: with many samples it lands near the true p,
    /// for any p, retry budget, and censoring cap.
    #[test]
    fn mle_is_consistent(
        p in 0.25f64..0.95,
        r in 4u16..10,
        cap_sel in 0usize..3,
        seed in 0u64..1000,
    ) {
        let cap = match cap_sel {
            0 => None,
            1 => Some(2.min(r)),
            _ => Some(4.min(r)),
        };
        let mut e = LinkEstimator::new();
        feed(&mut e, p, r, 8000, cap, seed);
        let est = e.mle(r).unwrap();
        prop_assert!(
            (est.p_success - p).abs() < 0.05,
            "p={} cap={:?} est={}", p, cap, est.p_success
        );
    }

    /// The likelihood is finite everywhere and maximised at the MLE
    /// (no better value on a coarse grid).
    #[test]
    fn mle_maximises_likelihood(
        p in 0.3f64..0.9,
        r in 4u16..9,
        seed in 0u64..1000,
    ) {
        let mut e = LinkEstimator::new();
        feed(&mut e, p, r, 500, Some(3.min(r)), seed);
        let est = e.mle(r).unwrap();
        let at_mle = e.log_likelihood(est.p_success, r);
        prop_assert!(at_mle.is_finite());
        for i in 1..40 {
            let q = i as f64 / 40.0;
            prop_assert!(
                e.log_likelihood(q, r) <= at_mle + 1e-6,
                "likelihood at {} beats MLE {}", q, est.p_success
            );
        }
    }

    /// Merging estimators is associative with feeding order.
    #[test]
    fn merge_commutes(
        p in 0.3f64..0.9,
        na in 10usize..200,
        nb in 10usize..200,
        seed in 0u64..1000,
    ) {
        let mut a = LinkEstimator::new();
        let mut b = LinkEstimator::new();
        feed(&mut a, p, 7, na, None, seed);
        feed(&mut b, p, 7, nb, Some(3), seed + 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        let (ea, eb) = (ab.mle(7).unwrap(), ba.mle(7).unwrap());
        prop_assert!((ea.p_success - eb.p_success).abs() < 1e-6);
    }

    /// EM on a random chain recovers planted survival rates from exact
    /// (infinite-sample) delivery ratios.
    #[test]
    fn em_recovers_planted_chain(
        sigmas in proptest::collection::vec(0.5f64..0.99, 2..6),
    ) {
        let mut tomo = TraditionalTomography::new();
        // Chain 0 <- 1 <- 2 ... ; measurements for every suffix give the
        // solver enough leverage to separate links.
        let sent = 1_000_000u64;
        for start in 1..=sigmas.len() {
            let path: Vec<(u32, u32)> = (1..=start)
                .rev()
                .map(|i| (i as u32, (i - 1) as u32))
                .collect();
            let dr: f64 = sigmas[..start].iter().product();
            tomo.add(PathMeasurement {
                path,
                sent,
                delivered: (sent as f64 * dr).round() as u64,
            });
        }
        // Deep lossy chains (dr ≈ 0.5^5) have a flat likelihood surface;
        // give EM enough iterations to actually converge.
        let cfg = TraditionalConfig {
            max_iters: 20_000,
            tol: 1e-10,
            ..TraditionalConfig::default()
        };
        let est = tomo.estimate_em(&cfg);
        for (i, &sig) in sigmas.iter().enumerate() {
            let link = ((i + 1) as u32, i as u32);
            let got = est[&link];
            prop_assert!(
                (got - sig).abs() < 0.02,
                "link {:?}: {} vs planted {}", link, got, sig
            );
        }
    }

    /// Both solvers always emit probabilities in [0, 1] on arbitrary
    /// (possibly inconsistent) measurements.
    #[test]
    fn solvers_emit_probabilities(
        raw in proptest::collection::vec(
            (proptest::collection::vec((0u32..20, 0u32..20), 1..5), 1u64..500, 0u64..600),
            1..10,
        ),
    ) {
        let mut tomo = TraditionalTomography::new();
        for (path, sent, delivered) in raw {
            tomo.add(PathMeasurement {
                path,
                sent,
                delivered: delivered.min(sent),
            });
        }
        let cfg = TraditionalConfig { min_sent: 1, ..TraditionalConfig::default() };
        for v in tomo.estimate_em(&cfg).values().chain(tomo.estimate_logls(&cfg).values()) {
            prop_assert!(v.is_finite() && (0.0..=1.0).contains(v), "estimate {v}");
        }
    }
}
