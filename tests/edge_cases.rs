//! Edge-case integration tests: degenerate topologies, saturation, and
//! unusual configurations must degrade gracefully, never panic.

use dophy::protocol::{build_simulation, DophyConfig, NodeChurnConfig, TrafficShape};
use dophy_sim::{LinkDynamics, MacConfig, NodeId, Placement, RadioModel, SimConfig, SimDuration};

fn base(placement: Placement, seed: u64) -> SimConfig {
    SimConfig {
        placement,
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    }
}

#[test]
fn sink_only_network_idles_cleanly() {
    let sim = base(Placement::Line { n: 1, spacing: 1.0 }, 1);
    let (mut engine, shared) = build_simulation(&sim, &DophyConfig::default());
    engine.start();
    engine.run_for(SimDuration::from_secs(600));
    let s = shared.lock();
    assert_eq!(s.overhead.packets, 0);
    assert_eq!(s.sent_per_origin.iter().sum::<u64>(), 0);
}

#[test]
fn two_node_network_works() {
    let sim = base(Placement::Line { n: 2, spacing: 5.0 }, 2);
    let cfg = DophyConfig {
        traffic_period: SimDuration::from_secs(1),
        warmup: SimDuration::from_secs(10),
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(300));
    let s = shared.lock();
    assert!(s.overhead.packets > 200);
    // All 1-hop: streams are empty, decode always succeeds.
    assert_eq!(s.decode.success_ratio(), 1.0);
    assert_eq!(s.overhead.mean_stream_bytes(), 0.0);
    assert!(s.infer.in_band.covered_links() >= 1);
}

#[test]
fn disconnected_nodes_drop_without_panic() {
    // Two far-apart line segments: nodes beyond the gap can never reach
    // the sink.
    let sim = base(
        Placement::Line {
            n: 8,
            spacing: 70.0, // far beyond usable range
        },
        3,
    );
    let topo = sim.topology();
    assert!(!topo.is_collectable(), "gap must disconnect the line");
    let cfg = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(10),
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(300));
    let s = shared.lock();
    // Disconnected origins count their packets as no-route drops.
    assert!(s.no_route_drops > 0);
    assert_eq!(s.overhead.packets, 0, "nothing can reach the sink");
}

#[test]
fn queue_saturation_drops_but_survives() {
    let sim = SimConfig {
        mac: MacConfig {
            queue_capacity: 2,
            ..MacConfig::default()
        },
        ..base(
            Placement::Grid {
                side: 4,
                spacing: 12.0,
            },
            4,
        )
    };
    // Absurd traffic rate: 50 ms periods through 2-deep queues.
    let cfg = DophyConfig {
        traffic_period: SimDuration::from_millis(50),
        warmup: SimDuration::from_secs(5),
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(120));
    assert!(
        engine.trace().queue_drops > 0,
        "saturation must drop frames"
    );
    let s = shared.lock();
    assert!(s.overhead.packets > 0, "some packets still flow");
    // Decoded packets stay consistent even under loss.
    assert_eq!(s.decode.bad_index + s.decode.path_mismatch, 0);
}

#[test]
fn poisson_traffic_flows_end_to_end() {
    let sim = base(
        Placement::Grid {
            side: 4,
            spacing: 14.0,
        },
        5,
    );
    let cfg = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        traffic_shape: TrafficShape::Poisson,
        warmup: SimDuration::from_secs(20),
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(600));
    let s = shared.lock();
    // 15 origins × ~290 s of traffic at 0.5 pkt/s ≈ 2100 expected.
    assert!(
        s.overhead.packets > 1000,
        "poisson traffic too thin: {}",
        s.overhead.packets
    );
    assert!(s.decode.success_ratio() > 0.95);
}

#[test]
fn tiny_retry_budget_still_estimates() {
    // R = 1: no retransmissions at all; every observation is attempt 1 and
    // links are only measured through delivery/truncation. The stack must
    // run and produce (coarse) estimates without panicking.
    let sim = SimConfig {
        mac: MacConfig {
            max_attempts: 1,
            ..MacConfig::default()
        },
        ..base(
            Placement::Grid {
                side: 3,
                spacing: 10.0,
            },
            6,
        )
    };
    let cfg = DophyConfig {
        traffic_period: SimDuration::from_secs(1),
        warmup: SimDuration::from_secs(10),
        // Cap must fit the budget.
        aggregation: dophy_coding::aggregate::AggregationPolicy::Identity,
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(300));
    let s = shared.lock();
    assert!(s.overhead.packets > 50);
    for (_, est) in s.infer.in_band.estimates(1, 10) {
        assert!(est.loss >= 0.0 && est.loss <= 1.0);
    }
}

#[test]
fn node_churn_degrades_gracefully() {
    let sim = base(
        Placement::Grid {
            side: 5,
            spacing: 14.0,
        },
        8,
    );
    let cfg = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(20),
        churn: Some(NodeChurnConfig {
            mean_up: SimDuration::from_secs(180),
            mean_down: SimDuration::from_secs(30),
        }),
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(1200));
    let s = shared.lock();
    // Traffic still flows and decodes despite constant reboots.
    assert!(s.overhead.packets > 1000, "packets {}", s.overhead.packets);
    assert!(
        s.decode.success_ratio() > 0.95,
        "decode under churn: {:?}",
        s.decode
    );
    // Hard decode failures must stay zero (death only loses packets, never
    // corrupts streams).
    assert_eq!(
        s.decode.bad_index + s.decode.path_mismatch + s.decode.coding,
        0
    );
    // Delivery suffers — that's the point of the stressor.
    let dr = s.total_delivery_ratio().unwrap();
    assert!(dr > 0.5 && dr < 0.999, "delivery {dr}");
    drop(s);
    // Some nodes are down right now (statistically certain with 24 nodes
    // cycling 180s/30s).
    let down = (1..engine.topology().node_count())
        .filter(|&i| !engine.radio_on(dophy_sim::NodeId(i as u32)))
        .count();
    assert!(down > 0, "expected some nodes down at snapshot time");
}

#[test]
fn very_long_line_produces_deep_paths() {
    let sim = base(
        Placement::Line {
            n: 15,
            spacing: 22.0,
        },
        7,
    );
    let cfg = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(60),
        ..DophyConfig::default()
    };
    let (mut engine, shared) = build_simulation(&sim, &cfg);
    engine.start();
    engine.run_for(SimDuration::from_secs(900));
    let s = shared.lock();
    let max_hops = s.overhead.hops_hist.max_value().unwrap_or(0);
    assert!(max_hops >= 8, "line should produce deep paths: {max_hops}");
    assert!(
        s.decode.success_ratio() > 0.95,
        "deep paths must still decode: {:?}",
        s.decode
    );
    drop(s);
    // Far node has a working route.
    assert!(engine.protocol(NodeId(14)).router().next_hop().is_some());
}
