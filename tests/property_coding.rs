//! Property-based tests on the coding stack: for *any* valid hop sequence,
//! model shape, and aggregation policy, Dophy's in-packet encoding must
//! decode back exactly (paths always; attempts exactly in refine mode,
//! within the censoring range otherwise).

use dophy::decoder::decode_packet;
use dophy::encoder::encode_hop;
use dophy::header::DophyHeader;
use dophy::model_mgr::ModelSet;
use dophy::symbols::SymbolSpaces;
use dophy_coding::aggregate::{AggregationPolicy, AttemptObservation, SymbolMapper};
use dophy_coding::model::{AdaptiveModel, StaticModel, SymbolModel};
use dophy_coding::range::{RangeDecoder, RangeEncoder};
use dophy_sim::{NodeId, Placement, RadioModel, RngHub, Topology};
use proptest::prelude::*;

fn topology() -> Topology {
    // One fixed, well-connected topology is enough: properties range over
    // hop choices, attempts, models, and policies.
    Topology::generate(
        Placement::Grid {
            side: 4,
            spacing: 12.0,
        },
        &RadioModel::default(),
        &RngHub::new(99),
    )
}

fn policy_strategy() -> impl Strategy<Value = AggregationPolicy> {
    prop_oneof![
        Just(AggregationPolicy::Identity),
        (1u8..=7).prop_map(|cap| AggregationPolicy::Cap { cap }),
        Just(AggregationPolicy::ExpBuckets),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary symbol/frequency streams round-trip through the range
    /// coder under arbitrary static models.
    #[test]
    fn range_coder_round_trips_any_model(
        freqs in proptest::collection::vec(1u32..5000, 2..40),
        picks in proptest::collection::vec(0usize..1000, 0..300),
    ) {
        let model = StaticModel::from_frequencies(&freqs);
        let n = model.num_symbols();
        let syms: Vec<usize> = picks.iter().map(|p| p % n).collect();
        let mut m = model.clone();
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            m.encode_symbol(&mut enc, s).unwrap();
        }
        let wire = enc.finish_wire().unwrap();
        let mut dec = RangeDecoder::from_wire(&wire).unwrap();
        let mut m2 = model;
        for &s in &syms {
            prop_assert_eq!(m2.decode_symbol(&mut dec).unwrap(), s);
        }
    }

    /// Adaptive models stay in encoder/decoder lockstep on any input.
    #[test]
    fn adaptive_model_lockstep(
        n in 2usize..30,
        picks in proptest::collection::vec(0usize..1000, 1..400),
    ) {
        let syms: Vec<usize> = picks.iter().map(|p| p % n).collect();
        let mut enc_model = AdaptiveModel::new(n);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            enc_model.encode_symbol(&mut enc, s).unwrap();
        }
        let bytes = enc.finish().unwrap();
        let mut dec_model = AdaptiveModel::new(n);
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &s in &syms {
            prop_assert_eq!(dec_model.decode_symbol(&mut dec).unwrap(), s);
        }
        prop_assert_eq!(enc_model, dec_model);
    }

    /// Hop-by-hop suspend/resume across nodes equals straight-through
    /// encoding for any symbol sequence.
    #[test]
    fn suspend_resume_transparent(
        picks in proptest::collection::vec((0u32..12, 1u32..65536), 0..200),
    ) {
        let mut direct = RangeEncoder::new();
        for &(sym, total_seed) in &picks {
            let total = 2 + total_seed % 200;
            direct.encode_uniform(sym % total, total).unwrap();
        }
        let direct_bytes = direct.finish().unwrap();

        let mut state = dophy_coding::range::EncoderState::fresh();
        let mut carried = Vec::new();
        for &(sym, total_seed) in &picks {
            let total = 2 + total_seed % 200;
            let mut enc = RangeEncoder::resume(state, carried);
            enc.encode_uniform(sym % total, total).unwrap();
            let (s, b) = enc.suspend();
            state = s;
            carried = b;
        }
        let hopwise = RangeEncoder::resume(state, carried).finish().unwrap();
        prop_assert_eq!(direct_bytes, hopwise);
    }

    /// Full Dophy packet round trip over random walks and attempts, all
    /// aggregation policies.
    #[test]
    fn packet_round_trip(
        steps in proptest::collection::vec((0usize..16, 1u16..=7), 1..12),
        policy in policy_strategy(),
        refine in any::<bool>(),
        seed_hop_p in 0.2f64..0.9,
    ) {
        let topo = topology();
        let max_degree = (0..topo.node_count())
            .map(|i| topo.neighbors(NodeId(i as u32)).len())
            .max()
            .unwrap();
        let spaces = SymbolSpaces::new(max_degree, 7, policy, refine);
        // Random-ish but valid models for both contexts.
        let models = ModelSet {
            epoch: 0,
            hop: StaticModel::truncated_geometric(spaces.hop_alphabet(), seed_hop_p),
            attempt: StaticModel::truncated_geometric(spaces.attempt_alphabet(), seed_hop_p),
        };

        // Build the walk: at each step pick neighbor (index % degree).
        let origin = NodeId(15);
        let mut path = vec![origin];
        let mut attempts = Vec::new();
        for &(nbr, att) in &steps {
            let cur = *path.last().unwrap();
            let nbrs = topo.neighbors(cur);
            path.push(nbrs[nbr % nbrs.len()]);
            attempts.push(att);
        }

        let mut header = DophyHeader::new(origin, 1, 0);
        for (i, w) in path.windows(2).enumerate() {
            encode_hop(&mut header, &topo, &spaces, &models, w[0], w[1], attempts[i]).unwrap();
        }
        let final_sender = *path.last().unwrap();
        let decoded = decode_packet(&header, &topo, &spaces, &models, final_sender, 1)
            .expect("round trip");

        // Path recovered exactly.
        let mut expect_path = path.clone();
        expect_path.push(NodeId::SINK);
        prop_assert_eq!(decoded.path(), expect_path);
        // Attempts recovered exactly (refine) or within range.
        let mapper = SymbolMapper::new(policy, 7);
        for (obs, &att) in decoded.observations.iter().zip(&attempts) {
            match obs.observation {
                AttemptObservation::Exact(a) => {
                    if refine || matches!(policy, AggregationPolicy::Identity) {
                        prop_assert_eq!(a, att);
                    } else {
                        // Singleton bucket.
                        let (lo, hi) = mapper.range_of(mapper.symbol_of(att));
                        prop_assert!(lo == hi && a == att);
                    }
                }
                AttemptObservation::Range { lo, hi } => {
                    prop_assert!(!refine);
                    prop_assert!(lo <= att && att <= hi);
                }
            }
        }
    }

    /// Wire trimming never breaks decodability regardless of content.
    #[test]
    fn wire_trim_safe(
        picks in proptest::collection::vec(0u32..=65535, 0..500),
    ) {
        let total = 65536;
        let mut enc = RangeEncoder::new();
        for &v in &picks {
            enc.encode(v, 1, total).unwrap();
        }
        let wire = enc.finish_wire().unwrap();
        let mut dec = RangeDecoder::from_wire(&wire).unwrap();
        for &v in &picks {
            let t = dec.decode_target(total).unwrap();
            prop_assert_eq!(t, v);
            dec.decode_advance(v, 1).unwrap();
        }
    }
}
