//! Cross-backend agreement: on i.i.d. Bernoulli links with ample probes,
//! every inference backend — in-band MLE, MINC dual, sparse-L1 — must
//! converge to the same ground truth it is estimating, and each backend
//! must be bit-identical across two same-seed runs.
//!
//! The generator is a synthetic ARQ world, not the full stack: a fixed
//! collection tree whose links lose each transmission i.i.d., `r` attempts
//! per hop. Delivered packets yield per-hop `Evidence::Hop` observations
//! (the in-band channel travels *inside* the packet, so lost packets
//! report nothing); windows of outcomes yield `Evidence::PathOutcome`
//! tallies for the end-to-end backends. That puts every backend on its
//! honest diet while keeping the truth exactly known.

use dophy::infer::{EstimatorKind, Evidence, Inference, SnapshotQuery};
use dophy::tracking::WindowConfig;
use dophy_coding::aggregate::AttemptObservation;
use dophy_sim::SimTime;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Chain topology 3 → 2 → 1 → 0: every link appears in a distinct set of
/// paths, so the end-to-end backends are fully identified.
const CHAIN: [(u32, u32); 3] = [(3, 2), (2, 1), (1, 0)];
/// Two ARQ attempts, not the stack's usual seven: the end-to-end backends
/// only see post-ARQ hop losses (`loss^R`), and at R=7 those vanish below
/// one event per run, leaving nothing to attribute. R=2 keeps hop losses
/// material while still giving the in-band MLE retry counts to work with.
const R: u16 = 2;
const PACKETS_PER_ORIGIN: u64 = 20_000;
const WINDOW: u64 = 100;

/// Runs the synthetic world and returns the filled inference stack.
/// Everything is driven by one seeded RNG, so the whole function is a
/// pure map `(seed, losses) -> Inference state`.
fn run_world(seed: u64, loss: &BTreeMap<(u32, u32), f64>) -> Inference {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inf = Inference::new(WindowConfig::default());
    let path_of = |origin: u32| -> Vec<(u32, u32)> {
        CHAIN
            .iter()
            .copied()
            .skip_while(|&(src, _)| src != origin)
            .collect()
    };
    for origin in [3u32, 2, 1] {
        let path = path_of(origin);
        let mut window_sent = 0u64;
        let mut window_delivered = 0u64;
        let mut windows_done = 0u64;
        for _ in 0..PACKETS_PER_ORIGIN {
            window_sent += 1;
            // Walk the packet hop by hop; each hop is an ARQ exchange of
            // up to R attempts against that link's Bernoulli loss.
            let mut hops: Vec<Evidence> = Vec::new();
            let mut delivered = true;
            for &(src, dst) in &path {
                let p = 1.0 - loss[&(src, dst)];
                let mut attempt = None;
                for a in 1..=R {
                    if rng.gen::<f64>() < p {
                        attempt = Some(a);
                        break;
                    }
                }
                match attempt {
                    Some(a) => hops.push(Evidence::Hop {
                        at: SimTime::from_micros(windows_done * 1_000_000),
                        sender: src,
                        receiver: dst,
                        observation: AttemptObservation::Exact(a),
                    }),
                    None => {
                        delivered = false;
                        break;
                    }
                }
            }
            if delivered {
                window_delivered += 1;
                // The measurement header arrives only with the packet.
                for ev in &hops {
                    inf.observe(ev);
                }
            }
            if window_sent == WINDOW {
                inf.observe(&Evidence::PathOutcome {
                    at: SimTime::from_micros(windows_done * 1_000_000),
                    origin,
                    path: path.clone(),
                    sent: window_sent,
                    delivered: window_delivered,
                });
                windows_done += 1;
                window_sent = 0;
                window_delivered = 0;
            }
        }
    }
    inf
}

fn query() -> SnapshotQuery {
    SnapshotQuery {
        now: SimTime::from_micros(PACKETS_PER_ORIGIN * 1_000_000),
        r: R,
        min_samples: 50,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn backends_agree_with_truth_and_are_seed_deterministic(
        seed in 0u64..1u64 << 48,
        l0 in 0.20f64..0.40,
        l1 in 0.20f64..0.40,
        l2 in 0.20f64..0.40,
    ) {
        let loss: BTreeMap<(u32, u32), f64> =
            CHAIN.iter().copied().zip([l0, l1, l2]).collect();
        let inf = run_world(seed, &loss);
        let q = query();

        // Agreement with truth. At R=2 every backend is ultimately
        // estimating a Bernoulli rate from ~20–60k trials, but the
        // end-to-end backends pay `loss = (1−σ)^(1/R)` on top, which
        // amplifies survival-space noise hardest as loss → 0 — hence the
        // 0.20 loss floor (keeps the amplification bounded) and looser
        // end-to-end tolerances. At these sizes 0.08 sits past 4σ while
        // still catching any systematic bias well below the signal.
        for (kind, tol) in [
            (EstimatorKind::InBand, 0.05),
            (EstimatorKind::Minc, 0.08),
            (EstimatorKind::SparseL1, 0.08),
        ] {
            let snap: BTreeMap<(u32, u32), f64> = inf
                .backend(kind)
                .snapshot(&q)
                .into_iter()
                .map(|(k, e)| (k, e.loss))
                .collect();
            for (&link, &true_loss) in &loss {
                let got = snap.get(&link).copied().unwrap_or_else(|| {
                    panic!("{kind} reported nothing for {link:?}: {snap:?}")
                });
                prop_assert!(
                    (got - true_loss).abs() < tol,
                    "{kind} on {link:?}: estimated {got:.4}, true {true_loss:.4}"
                );
            }
        }

        // Bit-identical across two same-seed runs, per backend.
        let again = run_world(seed, &loss);
        for kind in EstimatorKind::ALL {
            prop_assert!(
                inf.backend(kind).snapshot(&q) == again.backend(kind).snapshot(&q),
                "{kind} not bit-identical across same-seed runs"
            );
        }
    }
}
