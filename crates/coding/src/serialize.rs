//! Compact wire serialization of probability models.
//!
//! Dophy's Optimization 2 periodically disseminates a refreshed probability
//! model from the sink to the network. Dissemination costs real radio bytes,
//! so the model must travel compactly: each frequency is quantized to one
//! byte on a logarithmic-ish scale. The quantization is deliberately lossy —
//! both sides (sink and nodes) reconstruct the *same* quantized model, which
//! is all arithmetic coding requires.
//!
//! Wire layout: `[version: u8][num_symbols: u8][q0, q1, ... q_{n-1}]` where
//! `q_i` encodes frequency `f_i` as described in [`quantize`].

use crate::model::StaticModel;
use crate::range::MAX_TOTAL;
use serde::{Deserialize, Serialize};

/// Serialization format version byte.
pub const WIRE_VERSION: u8 = 1;

/// Errors raised when decoding a model blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelWireError {
    /// Blob shorter than its header claims.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Declared alphabet size of zero.
    EmptyAlphabet,
}

impl std::fmt::Display for ModelWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "model blob truncated"),
            Self::BadVersion(v) => write!(f, "unknown model wire version {v}"),
            Self::EmptyAlphabet => write!(f, "model blob declares empty alphabet"),
        }
    }
}

impl std::error::Error for ModelWireError {}

/// Quantizes a frequency to one byte.
///
/// Values `1..=128` are stored exactly (codes `0..=127`); larger values are
/// stored as `128 + round(12 * log2(f / 128))`, a 1/12-octave log scale. The
/// 127 log codes span `128 * 2^(127/12) ≈ 1.96e6`, comfortably covering the
/// full `MAX_TOTAL` range with < 3% relative error.
pub fn quantize(freq: u32) -> u8 {
    let f = freq.max(1);
    if f <= 128 {
        (f - 1) as u8
    } else {
        let code = 128.0 + 12.0 * (f64::from(f) / 128.0).log2();
        code.round().min(255.0) as u8
    }
}

/// Inverse of [`quantize`].
pub fn dequantize(code: u8) -> u32 {
    if code < 128 {
        u32::from(code) + 1
    } else {
        let f = 128.0 * 2f64.powf(f64::from(code - 128) / 12.0);
        (f.round() as u32).min(MAX_TOTAL)
    }
}

/// A model blob as carried in dissemination packets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelBlob {
    bytes: Vec<u8>,
}

impl ModelBlob {
    /// Serializes `model` (quantizing frequencies).
    ///
    /// # Panics
    /// Panics if the alphabet exceeds 255 symbols (Dophy alphabets are tiny:
    /// retransmission budgets and neighbor-table sizes).
    pub fn encode(model: &StaticModel) -> Self {
        use crate::model::SymbolModel;
        let n = model.num_symbols();
        assert!(n <= 255, "alphabet too large for wire format");
        let mut bytes = Vec::with_capacity(2 + n);
        bytes.push(WIRE_VERSION);
        bytes.push(n as u8);
        for f in model.frequencies() {
            bytes.push(quantize(f));
        }
        Self { bytes }
    }

    /// Parses a blob back into a model. Both sides must call this on the
    /// same bytes to obtain identical coder tables.
    pub fn decode(&self) -> Result<StaticModel, ModelWireError> {
        let b = &self.bytes;
        if b.len() < 2 {
            return Err(ModelWireError::Truncated);
        }
        if b[0] != WIRE_VERSION {
            return Err(ModelWireError::BadVersion(b[0]));
        }
        let n = usize::from(b[1]);
        if n == 0 {
            return Err(ModelWireError::EmptyAlphabet);
        }
        if b.len() < 2 + n {
            return Err(ModelWireError::Truncated);
        }
        let freqs: Vec<u32> = b[2..2 + n].iter().map(|&c| dequantize(c)).collect();
        Ok(StaticModel::from_frequencies(&freqs))
    }

    /// Wire size in bytes — charged to dissemination overhead.
    pub fn wire_size(&self) -> usize {
        self.bytes.len()
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps raw received bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// The canonical quantized model: encode → decode. The sink must use
    /// this (not the raw learned model) so it codes against exactly what the
    /// nodes received.
    pub fn canonical(model: &StaticModel) -> (Self, StaticModel) {
        let blob = Self::encode(model);
        let quantized = blob.decode().expect("self-encoded blob is valid");
        (blob, quantized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SymbolModel;

    #[test]
    fn quantize_exact_below_128() {
        for f in 1..=128u32 {
            assert_eq!(dequantize(quantize(f)), f);
        }
    }

    #[test]
    fn quantize_relative_error_bounded() {
        for f in [129u32, 200, 500, 1000, 5000, 20000, 65535, 65536] {
            let q = dequantize(quantize(f));
            let rel = (f64::from(q) - f64::from(f)).abs() / f64::from(f);
            assert!(rel < 0.03, "f={f} q={q} rel={rel}");
        }
    }

    #[test]
    fn quantize_monotone() {
        let mut last = 0;
        for f in 1..=MAX_TOTAL {
            let c = quantize(f);
            assert!(c >= last, "quantize not monotone at {f}");
            last = c;
            if f > 1000 {
                break;
            }
        }
    }

    #[test]
    fn blob_round_trip() {
        let model = StaticModel::from_frequencies(&[5000, 800, 90, 9, 1]);
        let (blob, canonical) = ModelBlob::canonical(&model);
        assert_eq!(blob.wire_size(), 2 + 5);
        let decoded = blob.decode().unwrap();
        assert_eq!(decoded, canonical);
        // Shape survives quantization.
        let f = decoded.frequencies();
        assert!(f[0] > f[1] && f[1] > f[2] && f[2] > f[3]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            ModelBlob::from_bytes(vec![]).decode(),
            Err(ModelWireError::Truncated)
        );
        assert_eq!(
            ModelBlob::from_bytes(vec![9, 3, 1, 1, 1]).decode(),
            Err(ModelWireError::BadVersion(9))
        );
        assert_eq!(
            ModelBlob::from_bytes(vec![WIRE_VERSION, 0]).decode(),
            Err(ModelWireError::EmptyAlphabet)
        );
        assert_eq!(
            ModelBlob::from_bytes(vec![WIRE_VERSION, 4, 1, 1]).decode(),
            Err(ModelWireError::Truncated)
        );
    }

    #[test]
    fn canonical_is_idempotent() {
        let model = StaticModel::from_frequencies(&[60000, 3000, 200, 17]);
        let (_, canon1) = ModelBlob::canonical(&model);
        let (_, canon2) = ModelBlob::canonical(&canon1);
        assert_eq!(
            canon1, canon2,
            "re-quantizing a quantized model must be a no-op"
        );
    }

    #[test]
    fn coder_round_trip_through_wire_model() {
        use crate::range::{RangeDecoder, RangeEncoder};
        let learned = StaticModel::from_frequencies(&[40000, 9000, 1200, 300, 40, 7]);
        let (blob, sink_model) = ModelBlob::canonical(&learned);
        // "Node" receives bytes and reconstructs independently.
        let mut node_model = ModelBlob::from_bytes(blob.as_bytes().to_vec())
            .decode()
            .unwrap();

        let syms = [0usize, 0, 1, 0, 2, 5, 0, 0, 3, 1, 0, 4];
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            node_model.encode_symbol(&mut enc, s).unwrap();
        }
        let bytes = enc.finish().unwrap();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut sink_model = sink_model;
        for &s in &syms {
            assert_eq!(sink_model.decode_symbol(&mut dec).unwrap(), s);
        }
    }
}
