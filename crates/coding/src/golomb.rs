//! Golomb–Rice coding — a baseline encoder for retransmission counts.
//!
//! Golomb codes are optimal prefix codes for geometrically distributed
//! integers, which makes them the strongest *non-arithmetic* baseline for
//! Dophy's workload: attempt counts over a link with per-transmission success
//! probability `p` follow a (truncated) geometric law. The gap between
//! Golomb–Rice and the arithmetic coder quantifies how much Dophy gains from
//! fractional-bit coding and model adaptation.
//!
//! We implement the Rice restriction (divisor `m = 2^k`), which is what
//! resource-constrained sensor firmware would realistically ship.

use crate::bitio::{BitReader, BitWriter, OutOfBits};

/// Golomb–Rice coder with divisor `2^k`.
///
/// ```
/// use dophy_coding::golomb::RiceCoder;
/// use dophy_coding::bitio::{BitReader, BitWriter};
///
/// let coder = RiceCoder::new(1);
/// let mut w = BitWriter::new();
/// for v in [0u64, 3, 1, 7] {
///     coder.encode(&mut w, v);
/// }
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// for v in [0u64, 3, 1, 7] {
///     assert_eq!(coder.decode(&mut r).unwrap(), v);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiceCoder {
    k: u32,
}

impl RiceCoder {
    /// Creates a coder with divisor `2^k`.
    ///
    /// # Panics
    /// Panics if `k > 32`.
    pub fn new(k: u32) -> Self {
        assert!(k <= 32, "rice parameter too large");
        Self { k }
    }

    /// The Rice parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Picks the (near-)optimal Rice parameter for a geometric distribution
    /// with mean `mean` (mean of the encoded values, zero-based).
    ///
    /// Uses the classic rule `k = max(0, ceil(log2(mean * ln 2)))`.
    pub fn for_mean(mean: f64) -> Self {
        if mean <= 0.0 {
            return Self::new(0);
        }
        let target = mean * std::f64::consts::LN_2;
        let k = if target <= 1.0 {
            0
        } else {
            target.log2().ceil().max(0.0) as u32
        };
        Self::new(k.min(32))
    }

    /// Encodes a zero-based value.
    pub fn encode(&self, w: &mut BitWriter, value: u64) {
        let q = value >> self.k;
        w.write_unary(q);
        w.write_bits(value & ((1u64 << self.k) - 1), self.k);
    }

    /// Decodes one value.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u64, OutOfBits> {
        let q = r.read_unary()?;
        let rem = if self.k == 0 { 0 } else { r.read_bits(self.k)? };
        Ok((q << self.k) | rem)
    }

    /// Exact code length of `value` in bits.
    pub fn code_len(&self, value: u64) -> u64 {
        (value >> self.k) + 1 + u64::from(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_values() {
        for k in 0..6 {
            let coder = RiceCoder::new(k);
            let values: Vec<u64> = (0..64).collect();
            let mut w = BitWriter::new();
            for &v in &values {
                coder.encode(&mut w, v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(coder.decode(&mut r).unwrap(), v, "k={k} v={v}");
            }
        }
    }

    #[test]
    fn code_len_matches_actual() {
        for k in 0..5 {
            let coder = RiceCoder::new(k);
            for v in 0..40u64 {
                let mut w = BitWriter::new();
                coder.encode(&mut w, v);
                assert_eq!(w.bit_len(), coder.code_len(v), "k={k} v={v}");
            }
        }
    }

    #[test]
    fn k_zero_is_unary() {
        let coder = RiceCoder::new(0);
        assert_eq!(coder.code_len(0), 1);
        assert_eq!(coder.code_len(5), 6);
    }

    #[test]
    fn for_mean_selects_sane_parameters() {
        assert_eq!(RiceCoder::for_mean(0.0).k(), 0);
        assert_eq!(RiceCoder::for_mean(0.3).k(), 0);
        // Large means need larger divisors.
        assert!(RiceCoder::for_mean(100.0).k() >= 5);
        // Monotone non-decreasing in the mean.
        let mut last = 0;
        for m in [0.1, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0] {
            let k = RiceCoder::for_mean(m).k();
            assert!(k >= last, "k must grow with mean");
            last = k;
        }
    }

    #[test]
    fn geometric_input_compresses_near_entropy() {
        // Geometric with p = 0.8 (typical decent link): entropy ≈ 0.9 bits.
        // Deterministic quasi-geometric sequence.
        let values: Vec<u64> = (0..10_000u64)
            .map(|i| {
                let x = (i * 2654435761) % 1000;
                match x {
                    0..=799 => 0,
                    800..=959 => 1,
                    960..=991 => 2,
                    _ => 3,
                }
            })
            .collect();
        let coder = RiceCoder::new(0);
        let mut w = BitWriter::new();
        for &v in &values {
            coder.encode(&mut w, v);
        }
        let bits_per = w.bit_len() as f64 / values.len() as f64;
        // Unary on this distribution: E[len] = 1*0.8+2*0.16+3*0.032+4*0.008 ≈ 1.25.
        assert!(bits_per < 1.3, "got {bits_per}");
    }
}
