//! Entropy and expected-code-length utilities.
//!
//! Used by the experiment harness to report how close each coder gets to the
//! information-theoretic bound, and by the model manager to decide whether a
//! refreshed model is worth disseminating (expected redundancy vs blob cost).

use crate::model::{StaticModel, SymbolModel};

/// Shannon entropy of a discrete distribution given as weights (need not be
/// normalised). Zero-weight outcomes contribute nothing. Result in bits.
pub fn entropy_bits(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|w| **w > 0.0)
        .map(|&w| {
            let p = w / total;
            -p * p.log2()
        })
        .sum()
}

/// Cross-entropy `H(p, q)` in bits: the expected code length when symbols
/// drawn from `true_weights` are coded with `model`'s probabilities.
///
/// # Panics
/// Panics if the lengths differ.
pub fn cross_entropy_bits(true_weights: &[f64], model: &StaticModel) -> f64 {
    assert_eq!(
        true_weights.len(),
        model.num_symbols(),
        "distribution/model size mismatch"
    );
    let total: f64 = true_weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    true_weights
        .iter()
        .enumerate()
        .filter(|(_, w)| **w > 0.0)
        .map(|(i, &w)| {
            let p = w / total;
            p * -model.probability(i).log2()
        })
        .sum()
}

/// KL divergence `D(p || q)` in bits — the per-symbol redundancy paid for
/// coding `true_weights` with `model` instead of the ideal model.
pub fn kl_divergence_bits(true_weights: &[f64], model: &StaticModel) -> f64 {
    cross_entropy_bits(true_weights, model) - entropy_bits(true_weights)
}

/// Entropy of a geometric distribution truncated to `1..=r`, with
/// per-trial success probability `p`. This is the information content of one
/// retransmission-count observation — the lower bound on Dophy's per-hop
/// encoding cost.
pub fn truncated_geometric_entropy_bits(p: f64, r: u16) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    let weights: Vec<f64> = (0..r).map(|k| (1.0 - p).powi(i32::from(k)) * p).collect();
    entropy_bits(&weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn entropy_of_uniform() {
        assert!(close(entropy_bits(&[1.0, 1.0]), 1.0, 1e-12));
        assert!(close(entropy_bits(&[1.0; 8]), 3.0, 1e-12));
    }

    #[test]
    fn entropy_of_degenerate_is_zero() {
        assert_eq!(entropy_bits(&[5.0, 0.0, 0.0]), 0.0);
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_unnormalised_matches_normalised() {
        let a = entropy_bits(&[0.2, 0.3, 0.5]);
        let b = entropy_bits(&[2.0, 3.0, 5.0]);
        assert!(close(a, b, 1e-12));
    }

    #[test]
    fn cross_entropy_at_least_entropy() {
        let truth = [0.7, 0.2, 0.1];
        let model = StaticModel::from_frequencies(&[10, 10, 10]);
        let h = entropy_bits(&truth);
        let ce = cross_entropy_bits(&truth, &model);
        assert!(ce >= h - 1e-12, "Gibbs: cross entropy below entropy");
        assert!(kl_divergence_bits(&truth, &model) >= -1e-12);
    }

    #[test]
    fn matched_model_has_near_zero_kl() {
        let truth = [7000.0, 2000.0, 1000.0];
        let model = StaticModel::from_frequencies(&[7000, 2000, 1000]);
        assert!(kl_divergence_bits(&truth, &model) < 1e-9);
    }

    #[test]
    fn geometric_entropy_shrinks_with_good_links() {
        let good = truncated_geometric_entropy_bits(0.95, 7);
        let bad = truncated_geometric_entropy_bits(0.5, 7);
        assert!(good < bad);
        // A 95% link is nearly deterministic: well under half a bit.
        assert!(good < 0.5, "got {good}");
        // A coin-flip link approaches the entropy of a geometric(0.5),
        // which is 2 bits untruncated.
        assert!(bad > 1.5 && bad < 2.1, "got {bad}");
    }
}
