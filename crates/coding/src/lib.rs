//! # dophy-coding
//!
//! Entropy-coding substrate for the Dophy loss-tomography reproduction
//! (*Fine-Grained Loss Tomography in Dynamic Sensor Networks*, ICPP 2015).
//!
//! Dophy's central mechanism is to carry, inside every data packet, an
//! arithmetic-coded record of the retransmission count observed at each hop.
//! This crate provides everything that mechanism needs:
//!
//! * [`range`] — a carry-propagating range coder whose encoder state can be
//!   **suspended into a packet header and resumed at the next hop**, so a
//!   stream is built incrementally along a path and flushed only at the sink;
//! * [`model`] — static (disseminated) and adaptive (Fenwick-tree) frequency
//!   models that drive the coder;
//! * [`aggregate`] — symbol-set reduction for retransmission counts
//!   (the paper's Optimization 1);
//! * [`serialize`] — one-byte-per-symbol quantized model blobs for periodic
//!   model dissemination (the paper's Optimization 2);
//! * [`golomb`], [`elias`], [`fixed`], [`bitio`] — baseline coders used in
//!   the encoding-efficiency comparisons;
//! * [`entropy`] — entropy/cross-entropy utilities for redundancy accounting.
//!
//! ## Example: hop-by-hop encoding
//!
//! ```
//! use dophy_coding::range::{RangeEncoder, RangeDecoder, EncoderState};
//! use dophy_coding::model::{StaticModel, SymbolModel};
//!
//! // Model shared by nodes and sink (normally disseminated as a blob).
//! let model = StaticModel::truncated_geometric(7, 0.8);
//!
//! // Hop 1 encodes attempt=1 (symbol 0), suspends into the packet...
//! let mut enc = RangeEncoder::new();
//! let mut m = model.clone();
//! m.encode_symbol(&mut enc, 0).unwrap();
//! let (state, bytes) = enc.suspend();
//!
//! // ...hop 2 resumes and encodes attempt=3 (symbol 2)...
//! let mut enc = RangeEncoder::resume(state, bytes);
//! m.encode_symbol(&mut enc, 2).unwrap();
//!
//! // ...the sink flushes and decodes both.
//! let stream = enc.finish().unwrap();
//! let mut dec = RangeDecoder::new(&stream).unwrap();
//! let mut m2 = model.clone();
//! assert_eq!(m2.decode_symbol(&mut dec).unwrap(), 0);
//! assert_eq!(m2.decode_symbol(&mut dec).unwrap(), 2);
//! # let _ = EncoderState::fresh();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod bitio;
pub mod elias;
pub mod entropy;
pub mod fixed;
pub mod golomb;
pub mod model;
pub mod range;
pub mod serialize;

pub use aggregate::{AggregationPolicy, AttemptObservation, SymbolMapper};
pub use model::{AdaptiveModel, StaticModel, SymbolModel};
pub use range::{EncoderState, RangeCodingError, RangeDecoder, RangeEncoder};
pub use serialize::ModelBlob;
