//! Symbol aggregation for retransmission counts (Dophy Optimization 1).
//!
//! The raw observable at each hop is the *attempt number* of the first
//! successfully received frame: an integer in `1..=R` where `R` is the MAC
//! retransmission budget. Encoding the full alphabet of `R` values wastes
//! bits because high attempt counts are rare. Dophy shrinks the symbol set by
//! *aggregating* counts, trading a little estimator information for a large
//! reduction in encoding overhead.
//!
//! Three policies are provided:
//!
//! * [`AggregationPolicy::Identity`] — no aggregation; alphabet size `R`.
//! * [`AggregationPolicy::Cap`] — counts `>= cap` collapse into one
//!   "cap-or-more" symbol; alphabet size `cap`. The sink treats the merged
//!   symbol as a *right-censored* observation (see `dophy::estimator`).
//! * [`AggregationPolicy::ExpBuckets`] — exponentially widening buckets
//!   `{1}, {2}, {3,4}, {5..8}, ...`; the sink uses interval-censored
//!   observations.
//!
//! For lossless operation a policy can be wrapped with *escape refinement*
//! ([`SymbolMapper::refine_bits`]): after an aggregated symbol, the encoder
//! emits the residual uniformly so the exact count is recoverable. This lets
//! experiments separate "alphabet reduction" from "information loss".

use serde::{Deserialize, Serialize};

/// How attempt counts `1..=max_attempts` map onto coder symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregationPolicy {
    /// One symbol per attempt count.
    Identity,
    /// Counts `>= cap` share the final symbol.
    Cap {
        /// Number of distinct symbols; the last one means "cap or more".
        cap: u8,
    },
    /// Buckets `{1}, {2}, {3,4}, {5..8}, ...` (doubling widths).
    ExpBuckets,
}

/// What the sink learns about an attempt count from a decoded symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptObservation {
    /// The count is known exactly.
    Exact(u16),
    /// The count lies in `lo..=hi` (inclusive; censored observation).
    Range {
        /// Lower bound (inclusive).
        lo: u16,
        /// Upper bound (inclusive), i.e. the MAC retry budget for
        /// right-censored symbols.
        hi: u16,
    },
}

impl AttemptObservation {
    /// Midpoint used by moment-style estimators that cannot handle censoring.
    pub fn midpoint(&self) -> f64 {
        match *self {
            Self::Exact(a) => f64::from(a),
            Self::Range { lo, hi } => (f64::from(lo) + f64::from(hi)) / 2.0,
        }
    }
}

/// Concrete mapping between attempt counts and coder symbols.
///
/// ```
/// use dophy_coding::aggregate::{AggregationPolicy, AttemptObservation, SymbolMapper};
///
/// // Budget R = 7, alphabet capped at 3 symbols: {1}, {2}, {3..=7}.
/// let m = SymbolMapper::new(AggregationPolicy::Cap { cap: 3 }, 7);
/// assert_eq!(m.num_symbols(), 3);
/// assert_eq!(m.symbol_of(1), 0);
/// assert_eq!(m.symbol_of(6), 2);
/// // The merged symbol decodes to a censored observation.
/// assert_eq!(m.observation_of(2), AttemptObservation::Range { lo: 3, hi: 7 });
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolMapper {
    policy: AggregationPolicy,
    max_attempts: u16,
    /// Precomputed `(lo, hi)` attempt range per symbol.
    ranges: Vec<(u16, u16)>,
}

impl SymbolMapper {
    /// Builds a mapper for attempt counts `1..=max_attempts`.
    ///
    /// # Panics
    /// Panics if `max_attempts == 0`, or if a `Cap` policy's cap is zero or
    /// larger than `max_attempts`.
    pub fn new(policy: AggregationPolicy, max_attempts: u16) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        let ranges: Vec<(u16, u16)> = match policy {
            AggregationPolicy::Identity => (1..=max_attempts).map(|a| (a, a)).collect(),
            AggregationPolicy::Cap { cap } => {
                let cap = u16::from(cap);
                assert!(
                    cap >= 1 && cap <= max_attempts,
                    "cap must be in 1..=max_attempts"
                );
                (1..cap)
                    .map(|a| (a, a))
                    .chain(std::iter::once((cap, max_attempts)))
                    .collect()
            }
            AggregationPolicy::ExpBuckets => {
                let mut ranges = Vec::new();
                let mut lo = 1u16;
                let mut width = 1u16;
                while lo <= max_attempts {
                    let hi = lo.saturating_add(width - 1).min(max_attempts);
                    ranges.push((lo, hi));
                    lo = hi + 1;
                    if ranges.len() >= 2 {
                        width = width.saturating_mul(2);
                    }
                    if lo == 0 {
                        break; // saturated; cannot happen for sane budgets
                    }
                }
                ranges
            }
        };
        Self {
            policy,
            max_attempts,
            ranges,
        }
    }

    /// The policy this mapper implements.
    pub fn policy(&self) -> AggregationPolicy {
        self.policy
    }

    /// Size of the coder alphabet.
    pub fn num_symbols(&self) -> usize {
        self.ranges.len()
    }

    /// MAC retry budget this mapper was built for.
    pub fn max_attempts(&self) -> u16 {
        self.max_attempts
    }

    /// Maps an attempt count to its coder symbol.
    ///
    /// # Panics
    /// Panics if `attempt` is outside `1..=max_attempts`.
    pub fn symbol_of(&self, attempt: u16) -> usize {
        assert!(
            attempt >= 1 && attempt <= self.max_attempts,
            "attempt {attempt} outside 1..={}",
            self.max_attempts
        );
        match self.policy {
            AggregationPolicy::Identity => usize::from(attempt) - 1,
            AggregationPolicy::Cap { cap } => usize::from(attempt.min(u16::from(cap))) - 1,
            AggregationPolicy::ExpBuckets => {
                self.ranges.partition_point(|&(lo, _)| lo <= attempt) - 1
            }
        }
    }

    /// Attempt range `(lo, hi)` covered by `sym`.
    ///
    /// # Panics
    /// Panics if `sym >= num_symbols()`.
    pub fn range_of(&self, sym: usize) -> (u16, u16) {
        self.ranges[sym]
    }

    /// Observation the sink records when it decodes `sym` *without*
    /// refinement.
    pub fn observation_of(&self, sym: usize) -> AttemptObservation {
        let (lo, hi) = self.range_of(sym);
        if lo == hi {
            AttemptObservation::Exact(lo)
        } else {
            AttemptObservation::Range { lo, hi }
        }
    }

    /// Number of residual values inside symbol `sym` (1 means no residual
    /// needs encoding). Used by lossless escape refinement, which encodes the
    /// residual uniformly over this many values.
    pub fn refine_cardinality(&self, sym: usize) -> u32 {
        let (lo, hi) = self.range_of(sym);
        u32::from(hi - lo) + 1
    }

    /// Ideal refinement cost of `sym` in bits (uniform residual).
    pub fn refine_bits(&self, sym: usize) -> f64 {
        f64::from(self.refine_cardinality(sym)).log2()
    }

    /// Splits an exact attempt into `(symbol, residual)` for lossless coding.
    pub fn split(&self, attempt: u16) -> (usize, u32) {
        let sym = self.symbol_of(attempt);
        let (lo, _) = self.range_of(sym);
        (sym, u32::from(attempt - lo))
    }

    /// Reassembles an exact attempt from `(symbol, residual)`.
    ///
    /// # Panics
    /// Panics if the residual falls outside the symbol's range.
    pub fn join(&self, sym: usize, residual: u32) -> u16 {
        let (lo, hi) = self.range_of(sym);
        let attempt = lo + residual as u16;
        assert!(
            attempt <= hi,
            "residual {residual} out of range for symbol {sym}"
        );
        attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_one_to_one() {
        let m = SymbolMapper::new(AggregationPolicy::Identity, 7);
        assert_eq!(m.num_symbols(), 7);
        for a in 1..=7u16 {
            let s = m.symbol_of(a);
            assert_eq!(s, usize::from(a) - 1);
            assert_eq!(m.observation_of(s), AttemptObservation::Exact(a));
            assert_eq!(m.refine_cardinality(s), 1);
        }
    }

    #[test]
    fn cap_merges_tail() {
        let m = SymbolMapper::new(AggregationPolicy::Cap { cap: 3 }, 7);
        assert_eq!(m.num_symbols(), 3);
        assert_eq!(m.symbol_of(1), 0);
        assert_eq!(m.symbol_of(2), 1);
        for a in 3..=7 {
            assert_eq!(m.symbol_of(a), 2);
        }
        assert_eq!(
            m.observation_of(2),
            AttemptObservation::Range { lo: 3, hi: 7 }
        );
        assert_eq!(m.refine_cardinality(2), 5);
    }

    #[test]
    fn cap_equal_to_budget_is_lossless() {
        let m = SymbolMapper::new(AggregationPolicy::Cap { cap: 7 }, 7);
        assert_eq!(m.num_symbols(), 7);
        for a in 1..=7u16 {
            assert_eq!(
                m.observation_of(m.symbol_of(a)),
                AttemptObservation::Exact(a)
            );
        }
    }

    #[test]
    fn exp_buckets_shape() {
        let m = SymbolMapper::new(AggregationPolicy::ExpBuckets, 20);
        // {1},{2},{3,4},{5..8},{9..16},{17..20}
        let expect = [(1, 1), (2, 2), (3, 4), (5, 8), (9, 16), (17, 20)];
        assert_eq!(m.num_symbols(), expect.len());
        for (s, &(lo, hi)) in expect.iter().enumerate() {
            assert_eq!(m.range_of(s), (lo, hi));
        }
        for a in 1..=20u16 {
            let s = m.symbol_of(a);
            let (lo, hi) = m.range_of(s);
            assert!(lo <= a && a <= hi, "attempt {a} mapped to [{lo},{hi}]");
        }
    }

    #[test]
    fn split_join_round_trip_all_policies() {
        for policy in [
            AggregationPolicy::Identity,
            AggregationPolicy::Cap { cap: 1 },
            AggregationPolicy::Cap { cap: 4 },
            AggregationPolicy::ExpBuckets,
        ] {
            let m = SymbolMapper::new(policy, 15);
            for a in 1..=15u16 {
                let (s, r) = m.split(a);
                assert_eq!(m.join(s, r), a, "{policy:?} attempt {a}");
            }
        }
    }

    #[test]
    fn cap_one_collapses_everything() {
        let m = SymbolMapper::new(AggregationPolicy::Cap { cap: 1 }, 7);
        assert_eq!(m.num_symbols(), 1);
        for a in 1..=7 {
            assert_eq!(m.symbol_of(a), 0);
        }
        assert_eq!(
            m.observation_of(0),
            AttemptObservation::Range { lo: 1, hi: 7 }
        );
    }

    #[test]
    fn midpoint_of_observations() {
        assert_eq!(AttemptObservation::Exact(3).midpoint(), 3.0);
        assert_eq!(AttemptObservation::Range { lo: 3, hi: 7 }.midpoint(), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_attempt_zero() {
        let m = SymbolMapper::new(AggregationPolicy::Identity, 7);
        m.symbol_of(0);
    }

    #[test]
    #[should_panic(expected = "cap must be")]
    fn rejects_cap_above_budget() {
        SymbolMapper::new(AggregationPolicy::Cap { cap: 9 }, 7);
    }

    #[test]
    fn refine_bits_zero_for_singletons() {
        let m = SymbolMapper::new(AggregationPolicy::ExpBuckets, 16);
        assert_eq!(m.refine_bits(0), 0.0);
        assert_eq!(m.refine_bits(1), 0.0);
        assert!(m.refine_bits(2) > 0.9 && m.refine_bits(2) < 1.1);
    }
}
