//! Byte-oriented arithmetic (range) coder with suspendable encoder state.
//!
//! This is the coding engine at the heart of Dophy. The design follows the
//! classic carry-propagating range coder used by LZMA: a 32-bit `range`, a
//! 33-bit `low` accumulator whose carry is resolved through a one-byte cache,
//! and renormalisation whenever `range` drops below 2^24.
//!
//! Two properties matter for the Dophy use case:
//!
//! 1. **Incremental, hop-by-hop encoding.** In Dophy every forwarder appends
//!    symbols to the arithmetic stream carried inside the data packet and the
//!    stream is only *finished* (flushed) at the sink. The encoder therefore
//!    exposes its internal state as a small POD ([`EncoderState`]) that rides
//!    in the packet header next to the emitted bytes, so encoding can be
//!    suspended at one node and resumed at the next.
//! 2. **Multi-context coding.** Each [`encode`](RangeEncoder::encode) call
//!    takes an explicit `(cum, freq, total)` triple, so callers may interleave
//!    symbols from different probability models (Dophy interleaves a
//!    next-hop-index context and a retransmission-count context) as long as
//!    the decoder consults the same models in the same order.
//!
//! The coder is exact: for any sequence of `(cum, freq, total)` triples with
//! `freq >= 1`, `cum + freq <= total` and `total <= MAX_TOTAL`, decoding
//! reproduces the sequence bit-for-bit.

use serde::{Deserialize, Serialize};

/// Renormalisation threshold: the encoder keeps `range >= 2^24`.
pub const TOP: u32 = 1 << 24;

/// Maximum admissible model total. Keeping totals at or below 2^16 guarantees
/// `range / total >= 2^8` after renormalisation, so no symbol's sub-range
/// ever collapses to zero.
pub const MAX_TOTAL: u32 = 1 << 16;

/// Snapshot of an in-flight encoder, small enough to ride in a packet header.
///
/// `low` needs 33 bits between `encode` calls: a carry into bit 32 may be
/// pending until the next renormalisation resolves it. On the wire that is
/// 5 (low) + 4 (range) + 1 (cache) + 2 (cache_size) = 12 bytes; see
/// [`EncoderState::WIRE_SIZE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderState {
    /// Pending low bound of the current interval (33 significant bits).
    pub low: u64,
    /// Current interval width.
    pub range: u32,
    /// Byte withheld awaiting carry resolution.
    pub cache: u8,
    /// Number of withheld bytes (the cache byte plus a run of 0xFF bytes).
    pub cache_size: u16,
}

impl EncoderState {
    /// Bytes this state occupies in a packet header.
    pub const WIRE_SIZE: usize = 12;

    /// State of a freshly initialised encoder.
    pub fn fresh() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
        }
    }
}

impl Default for EncoderState {
    fn default() -> Self {
        Self::fresh()
    }
}

/// Errors surfaced by the range coder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeCodingError {
    /// A model handed the coder an invalid `(cum, freq, total)` triple.
    InvalidFrequencies {
        /// Cumulative frequency below the symbol.
        cum: u32,
        /// Symbol frequency.
        freq: u32,
        /// Model total.
        total: u32,
    },
    /// The decoder ran out of input bytes.
    UnexpectedEof,
    /// Encoder cache-run counter would overflow `u16` (pathological input;
    /// would require ~64 KiB of consecutive 0xFF output bytes).
    CacheOverflow,
}

impl std::fmt::Display for RangeCodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidFrequencies { cum, freq, total } => write!(
                f,
                "invalid frequency triple: cum={cum} freq={freq} total={total}"
            ),
            Self::UnexpectedEof => write!(f, "range decoder ran out of input"),
            Self::CacheOverflow => write!(f, "encoder carry-cache overflow"),
        }
    }
}

impl std::error::Error for RangeCodingError {}

fn validate(cum: u32, freq: u32, total: u32) -> Result<(), RangeCodingError> {
    if freq == 0 || total == 0 || total > MAX_TOTAL || cum.saturating_add(freq) > total {
        Err(RangeCodingError::InvalidFrequencies { cum, freq, total })
    } else {
        Ok(())
    }
}

/// Carry-propagating range encoder.
///
/// Create with [`RangeEncoder::new`], feed symbols via
/// [`encode`](RangeEncoder::encode), and either [`finish`](RangeEncoder::finish)
/// the stream or [`suspend`](RangeEncoder::suspend) it for transport inside a
/// packet and later [`resume`](RangeEncoder::resume) it elsewhere.
#[derive(Debug, Clone)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u16,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates a fresh encoder with an empty output buffer.
    pub fn new() -> Self {
        let s = EncoderState::fresh();
        Self {
            low: s.low,
            range: s.range,
            cache: s.cache,
            cache_size: s.cache_size,
            out: Vec::new(),
        }
    }

    /// Resumes encoding from a suspended state, appending emitted bytes to
    /// `out` (the bytes already carried in the packet).
    pub fn resume(state: EncoderState, out: Vec<u8>) -> Self {
        Self {
            low: state.low,
            range: state.range,
            cache: state.cache,
            cache_size: state.cache_size,
            out,
        }
    }

    /// Suspends the encoder, returning its state and the bytes emitted so far.
    pub fn suspend(self) -> (EncoderState, Vec<u8>) {
        debug_assert!(self.low < 1u64 << 33, "low exceeds 33 bits");
        (
            EncoderState {
                low: self.low,
                range: self.range,
                cache: self.cache,
                cache_size: self.cache_size,
            },
            self.out,
        )
    }

    /// Encodes one symbol occupying `[cum, cum + freq)` out of `total`.
    pub fn encode(&mut self, cum: u32, freq: u32, total: u32) -> Result<(), RangeCodingError> {
        validate(cum, freq, total)?;
        let r = self.range / total;
        self.low += u64::from(r) * u64::from(cum);
        self.range = r * freq;
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low()?;
        }
        Ok(())
    }

    /// Encodes a value uniformly distributed in `0..n` (n <= MAX_TOTAL).
    ///
    /// Convenience for escape/refinement payloads that carry residuals with
    /// no learned model.
    pub fn encode_uniform(&mut self, value: u32, n: u32) -> Result<(), RangeCodingError> {
        self.encode(value, 1, n)
    }

    /// Flushes all pending state; the returned buffer is a complete,
    /// self-contained stream.
    pub fn finish(mut self) -> Result<Vec<u8>, RangeCodingError> {
        for _ in 0..5 {
            self.shift_low()?;
        }
        Ok(self.out)
    }

    /// Flushes with minimal-length termination and strips the redundancy a
    /// packet need not carry. Three savings over [`finish`](Self::finish):
    ///
    /// 1. the final code value is chosen as the number in the final
    ///    interval `[low, low + range)` with the most trailing zero bits
    ///    (any value in the interval decodes identically), so the tail is
    ///    mostly zero bytes;
    /// 2. trailing zero bytes are dropped — the decoder synthesizes zeros
    ///    past the end of its input;
    /// 3. the leading byte is dropped — the decoder's 32-bit code register
    ///    shifts the first byte out entirely, so its value never matters.
    ///
    /// Decode the result with [`RangeDecoder::from_wire`].
    pub fn finish_wire(mut self) -> Result<Vec<u8>, RangeCodingError> {
        // Pick the value with maximal trailing zeros in [low, low+range).
        let lo = self.low;
        let hi = lo + u64::from(self.range) - 1;
        for k in (0..48).rev() {
            let cand = (hi >> k) << k;
            if cand >= lo {
                self.low = cand;
                break;
            }
        }
        let mut full = {
            for _ in 0..5 {
                self.shift_low()?;
            }
            self.out
        };
        if !full.is_empty() {
            full.remove(0);
        }
        while full.last() == Some(&0) {
            full.pop();
        }
        Ok(full)
    }

    /// Number of bytes emitted so far (excludes pending cache/low bytes).
    pub fn emitted_len(&self) -> usize {
        self.out.len()
    }

    /// Total stream length if the encoder were finished right now: emitted
    /// bytes plus the flush tail. Used for per-packet overhead accounting.
    pub fn finished_len_hint(&self) -> usize {
        // `finish` runs shift_low 5 times: each call moves one byte out of
        // (cache + low), emitting `cache_size` bytes on the calls where the
        // no-carry/carry condition holds. In total exactly cache_size + 4
        // bytes are appended.
        self.out.len() + usize::from(self.cache_size) + 4
    }

    fn shift_low(&mut self) -> Result<(), RangeCodingError> {
        const LOW_THRESHOLD: u64 = 0xFF00_0000;
        if self.low < LOW_THRESHOLD || self.low > u64::from(u32::MAX) {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size = self
            .cache_size
            .checked_add(1)
            .ok_or(RangeCodingError::CacheOverflow)?;
        self.low = (self.low << 8) & u64::from(u32::MAX);
        Ok(())
    }
}

/// Longest virtual zero tail the decoder will synthesize before declaring
/// the input truncated. Legitimate streams need at most a handful of
/// virtual zeros (see [`RangeDecoder::virtual_reads`]); the bound exists
/// so a truncated or corrupted stream becomes a typed
/// [`RangeCodingError::UnexpectedEof`] instead of an endless supply of
/// zero-fed garbage symbols.
pub const MAX_VIRTUAL_TAIL: usize = 64;

/// Range decoder over a finished stream.
#[derive(Debug, Clone)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    /// Sub-range width computed by the last `decode_target` call.
    r: u32,
    buf: &'a [u8],
    pos: usize,
    /// Bytes synthesized past the end of `buf` (the virtual zero tail).
    virtual_reads: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder; consumes the 5-byte preamble emitted by `finish`'s
    /// counterpart on the encoder side (the first byte is always the initial
    /// zero cache and is discarded by the shift).
    pub fn new(buf: &'a [u8]) -> Result<Self, RangeCodingError> {
        let mut d = Self {
            code: 0,
            range: u32::MAX,
            r: 0,
            buf,
            pos: 0,
            virtual_reads: 0,
        };
        for _ in 0..5 {
            d.code = (d.code << 8) | u32::from(d.next_byte()?);
        }
        Ok(d)
    }

    /// Creates a decoder over a wire-trimmed stream produced by
    /// [`RangeEncoder::finish_wire`]: the always-zero leading byte is
    /// synthesized, and missing trailing zeros are read virtually.
    pub fn from_wire(buf: &'a [u8]) -> Result<Self, RangeCodingError> {
        let mut d = Self {
            code: 0,
            range: u32::MAX,
            r: 0,
            buf,
            pos: 0,
            virtual_reads: 0,
        };
        // Equivalent to reading a zero byte followed by the first four wire
        // bytes (the zero shifts entirely out of the 32-bit code).
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte()?);
        }
        Ok(d)
    }

    fn next_byte(&mut self) -> Result<u8, RangeCodingError> {
        // Reading a little past the end is legal and *expected*: the wire
        // format trims trailing zero bytes, and the final renormalisations
        // look a few bytes beyond the last meaningful one, so virtual zeros
        // keep the arithmetic consistent. Exhaustion is tracked rather than
        // silent: `virtual_reads` counts every synthesized byte (exposed via
        // [`Self::virtual_reads`]), and once the tail exceeds
        // [`MAX_VIRTUAL_TAIL`] — far beyond what any finished stream needs —
        // the input must be truncated and decoding fails with a typed error
        // instead of manufacturing symbols from zeros forever.
        if let Some(&b) = self.buf.get(self.pos) {
            self.pos += 1;
            return Ok(b);
        }
        self.virtual_reads += 1;
        if self.virtual_reads > MAX_VIRTUAL_TAIL {
            return Err(RangeCodingError::UnexpectedEof);
        }
        self.pos += 1;
        Ok(0)
    }

    /// Returns the cumulative-frequency target for the next symbol under a
    /// model with the given `total`. The caller maps the target to a symbol
    /// `(cum, freq)` and must then call [`decode_advance`](Self::decode_advance).
    pub fn decode_target(&mut self, total: u32) -> Result<u32, RangeCodingError> {
        if total == 0 || total > MAX_TOTAL {
            return Err(RangeCodingError::InvalidFrequencies {
                cum: 0,
                freq: 0,
                total,
            });
        }
        self.r = self.range / total;
        Ok((self.code / self.r).min(total - 1))
    }

    /// Consumes the symbol identified after [`decode_target`](Self::decode_target).
    pub fn decode_advance(&mut self, cum: u32, freq: u32) -> Result<(), RangeCodingError> {
        self.code -= cum * self.r;
        self.range = self.r * freq;
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte()?);
            self.range <<= 8;
        }
        Ok(())
    }

    /// Decodes a value encoded with [`RangeEncoder::encode_uniform`].
    pub fn decode_uniform(&mut self, n: u32) -> Result<u32, RangeCodingError> {
        let v = self.decode_target(n)?;
        self.decode_advance(v, 1)?;
        Ok(v)
    }

    /// Bytes of input consumed so far (may exceed buffer length by the
    /// virtual zero-tail used during final renormalisation).
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes synthesized past the end of the input.
    ///
    /// A few (≤ 5: the code-register preamble plus final-renormalisation
    /// look-ahead) are normal for wire-trimmed streams. A larger count
    /// means the decoder ran off the end of a truncated stream and every
    /// symbol since has been decoded from manufactured zeros — callers
    /// that must *reject* truncation (rather than rely on downstream
    /// validation) should check this after the last expected symbol.
    pub fn virtual_reads(&self) -> usize {
        self.virtual_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encodes `syms` under a fixed uniform model of `n` symbols, decodes back.
    fn round_trip_uniform(syms: &[u32], n: u32) {
        let mut enc = RangeEncoder::new();
        for &s in syms {
            enc.encode(s, 1, n).unwrap();
        }
        let bytes = enc.finish().unwrap();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &s in syms {
            let t = dec.decode_target(n).unwrap();
            assert_eq!(t, s);
            dec.decode_advance(t, 1).unwrap();
        }
    }

    #[test]
    fn empty_stream_round_trips() {
        let enc = RangeEncoder::new();
        let bytes = enc.finish().unwrap();
        // 5 flush bytes.
        assert_eq!(bytes.len(), 5);
        RangeDecoder::new(&bytes).unwrap();
    }

    #[test]
    fn uniform_round_trip_small() {
        round_trip_uniform(&[0, 1, 2, 1, 0, 2, 2, 2, 0], 3);
    }

    #[test]
    fn uniform_round_trip_binary_long() {
        let syms: Vec<u32> = (0..2000).map(|i| u32::from(i % 7 == 0)).collect();
        round_trip_uniform(&syms, 2);
    }

    #[test]
    fn uniform_round_trip_max_total() {
        let syms: Vec<u32> = (0..500)
            .map(|i| (i * 2654435761u64 % 65536) as u32)
            .collect();
        round_trip_uniform(&syms, MAX_TOTAL);
    }

    #[test]
    fn skewed_model_round_trip() {
        // Model: sym0 freq 60000, sym1 freq 5535, sym2 freq 1; total 65536.
        let freqs = [60000u32, 5535, 1];
        let cums = [0u32, 60000, 65535];
        let total = 65536;
        let syms = [0usize, 0, 0, 1, 0, 2, 0, 0, 1, 1, 2, 0];
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            enc.encode(cums[s], freqs[s], total).unwrap();
        }
        let bytes = enc.finish().unwrap();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &s in &syms {
            let t = dec.decode_target(total).unwrap();
            let sym = if t < 60000 {
                0
            } else if t < 65535 {
                1
            } else {
                2
            };
            assert_eq!(sym, s);
            dec.decode_advance(cums[sym], freqs[sym]).unwrap();
        }
    }

    #[test]
    fn skewed_model_compresses() {
        // 10_000 symbols, 99.9% are symbol 0 with p=0.999 → ~0.0114 bits/sym.
        let total = 1000;
        let mut enc = RangeEncoder::new();
        for i in 0..10_000 {
            if i % 1000 == 999 {
                enc.encode(999, 1, total).unwrap();
            } else {
                enc.encode(0, 999, total).unwrap();
            }
        }
        let bytes = enc.finish().unwrap();
        // Entropy bound ≈ 10000 * H(0.001) / 8 ≈ 14.3 bytes; allow coder
        // overhead + flush.
        assert!(bytes.len() < 40, "got {} bytes", bytes.len());
    }

    #[test]
    fn suspend_resume_equals_straight_through() {
        let total = 16;
        let syms: Vec<u32> = (0..300).map(|i| (i * 31 % 16) as u32).collect();

        // Straight-through encoding.
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            enc.encode(s, 1, total).unwrap();
        }
        let direct = enc.finish().unwrap();

        // Suspend/resume after every symbol (the per-hop pattern).
        let mut state = EncoderState::fresh();
        let mut carried: Vec<u8> = Vec::new();
        for &s in &syms {
            let mut enc = RangeEncoder::resume(state, std::mem::take(&mut carried));
            enc.encode(s, 1, total).unwrap();
            let (st, bytes) = enc.suspend();
            state = st;
            carried = bytes;
        }
        let hopwise = RangeEncoder::resume(state, carried).finish().unwrap();

        assert_eq!(direct, hopwise);
    }

    #[test]
    fn finished_len_hint_is_exact() {
        let total = 8;
        let mut enc = RangeEncoder::new();
        for i in 0..123u32 {
            enc.encode(i % 8, 1, total).unwrap();
            let hint = enc.finished_len_hint();
            let finished = enc.clone().finish().unwrap().len();
            assert_eq!(hint, finished, "after symbol {i}");
        }
    }

    #[test]
    fn wire_format_round_trips() {
        for len in [0usize, 1, 2, 5, 50, 500] {
            let total = 11;
            let syms: Vec<u32> = (0..len).map(|i| (i * 7 % 11) as u32).collect();
            let mut enc = RangeEncoder::new();
            for &s in &syms {
                enc.encode_uniform(s, total).unwrap();
            }
            let wire = enc.finish_wire().unwrap();
            let mut dec = RangeDecoder::from_wire(&wire).unwrap();
            for &s in &syms {
                assert_eq!(dec.decode_uniform(total).unwrap(), s, "len={len}");
            }
        }
    }

    #[test]
    fn wire_format_is_smaller_than_full() {
        let mut enc = RangeEncoder::new();
        for i in 0..10u32 {
            enc.encode_uniform(i % 4, 4).unwrap();
        }
        let full = enc.clone().finish().unwrap();
        let wire = enc.finish_wire().unwrap();
        assert!(wire.len() < full.len());
        // Leading zero gone, trailing zeros trimmed.
        if !wire.is_empty() {
            assert_eq!(wire[0], full[1]);
            assert_ne!(wire.last(), Some(&0));
        }
    }

    #[test]
    fn wire_tail_is_near_content_size() {
        // ~30 bits of content (10 symbols × 3 bits) should land within a
        // byte or two of the 4-byte information content, not 4+ bytes over.
        let mut enc = RangeEncoder::new();
        for i in 0..10u32 {
            enc.encode_uniform(i % 8, 8).unwrap();
        }
        let wire = enc.finish_wire().unwrap();
        assert!(
            wire.len() <= 5,
            "30 bits should fit 5 wire bytes, got {}",
            wire.len()
        );
    }

    #[test]
    fn wire_format_survives_carry_heavy_streams() {
        // The same pattern as carry_propagation_stress, through the wire
        // path (the leading byte may carry to 1; stripping it must still be
        // safe because the decoder discards byte 0 of the full stream).
        let total = 65536;
        let mut enc = RangeEncoder::new();
        let mut expect = Vec::new();
        for i in 0..3000u32 {
            let cum = if i % 2 == 0 { 65535 } else { 0 };
            expect.push(cum);
            enc.encode(cum, 1, total).unwrap();
        }
        let wire = enc.finish_wire().unwrap();
        let mut dec = RangeDecoder::from_wire(&wire).unwrap();
        for &cum in &expect {
            let t = dec.decode_target(total).unwrap();
            assert_eq!(t, cum);
            dec.decode_advance(cum, 1).unwrap();
        }
    }

    #[test]
    fn empty_wire_stream_decodes() {
        let enc = RangeEncoder::new();
        let wire = enc.finish_wire().unwrap();
        assert!(
            wire.is_empty(),
            "no symbols → zero wire bytes, got {wire:?}"
        );
        RangeDecoder::from_wire(&wire).unwrap();
    }

    #[test]
    fn rejects_zero_frequency() {
        let mut enc = RangeEncoder::new();
        assert!(matches!(
            enc.encode(0, 0, 10),
            Err(RangeCodingError::InvalidFrequencies { .. })
        ));
    }

    #[test]
    fn rejects_total_above_max() {
        let mut enc = RangeEncoder::new();
        assert!(enc.encode(0, 1, MAX_TOTAL + 1).is_err());
    }

    #[test]
    fn rejects_cum_freq_overflow() {
        let mut enc = RangeEncoder::new();
        assert!(enc.encode(9, 2, 10).is_err());
    }

    #[test]
    fn mixed_context_round_trip() {
        // Interleave three different totals, as Dophy does with its
        // next-hop / retx / escape contexts.
        let plan: Vec<(u32, u32)> = (0..400)
            .map(|i| match i % 3 {
                0 => (4, (i / 3 % 4) as u32),
                1 => (100, (i % 100) as u32),
                _ => (65536, (i * 37 % 65536) as u32),
            })
            .collect();
        let mut enc = RangeEncoder::new();
        for &(n, v) in &plan {
            enc.encode_uniform(v, n).unwrap();
        }
        let bytes = enc.finish().unwrap();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &(n, v) in &plan {
            assert_eq!(dec.decode_uniform(n).unwrap(), v);
        }
    }

    #[test]
    fn truncated_mid_stream_errors_instead_of_looping() {
        // Cut a long stream in half: decoding must hit a typed EOF once
        // the virtual zero tail is spent, never spin forever handing out
        // zero-manufactured symbols.
        let total = 256;
        let mut enc = RangeEncoder::new();
        for i in 0..2000u32 {
            enc.encode_uniform(i.wrapping_mul(2654435761) % total, total)
                .unwrap();
        }
        let bytes = enc.finish().unwrap();
        let cut = &bytes[..bytes.len() / 2];
        let mut dec = RangeDecoder::new(cut).unwrap();
        let mut err = None;
        for _ in 0..4000 {
            if let Err(e) = dec.decode_uniform(total) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(RangeCodingError::UnexpectedEof));
        assert!(
            dec.virtual_reads() > MAX_VIRTUAL_TAIL,
            "EOF must come from the exhaustion guard, got {} virtual reads",
            dec.virtual_reads()
        );
    }

    #[test]
    fn intact_wire_stream_uses_bounded_virtual_tail() {
        // The legitimate zero-pad past a trimmed wire stream stays tiny;
        // anything bigger would blur the truncation signal.
        let total = 11;
        let syms: Vec<u32> = (0..500).map(|i| (i * 7 % 11) as u32).collect();
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            enc.encode_uniform(s, total).unwrap();
        }
        let wire = enc.finish_wire().unwrap();
        let mut dec = RangeDecoder::from_wire(&wire).unwrap();
        for &s in &syms {
            assert_eq!(dec.decode_uniform(total).unwrap(), s);
        }
        assert!(
            dec.virtual_reads() <= 5,
            "complete stream needed {} virtual bytes",
            dec.virtual_reads()
        );
    }

    #[test]
    fn carry_propagation_stress() {
        // Encode a pattern engineered to produce long runs near the carry
        // boundary: alternating near-1.0 and near-0.0 cumulative positions.
        let total = 65536;
        let mut enc = RangeEncoder::new();
        let mut expect = Vec::new();
        for i in 0..5000u32 {
            let (cum, freq) = if i % 2 == 0 { (65535, 1) } else { (0, 1) };
            expect.push((cum, freq));
            enc.encode(cum, freq, total).unwrap();
        }
        let bytes = enc.finish().unwrap();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &(cum, freq) in &expect {
            let t = dec.decode_target(total).unwrap();
            assert_eq!(t, cum);
            dec.decode_advance(cum, freq).unwrap();
        }
    }
}
