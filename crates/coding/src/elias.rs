//! Elias gamma/delta codes — universal-code baselines.
//!
//! Elias codes need no parameter and no model, making them the "zero
//! configuration" baseline a naive in-packet recording scheme might use for
//! retransmission counts. They code *positive* integers; attempt counts are
//! already `>= 1`, so no offset is needed.

use crate::bitio::{BitReader, BitWriter, OutOfBits};

/// Number of bits in the minimal binary representation of `v` (`v >= 1`).
#[inline]
fn bit_width(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Encodes `value >= 1` with Elias gamma: unary length prefix + binary tail.
///
/// # Panics
/// Panics if `value == 0` (gamma codes positive integers only).
pub fn gamma_encode(w: &mut BitWriter, value: u64) {
    assert!(value >= 1, "elias gamma codes positive integers");
    let n = bit_width(value);
    // n-1 zeros... classically gamma writes n-1 zero bits then the n-bit
    // value. Our unary helper writes ones then a zero; invert by writing the
    // prefix manually to stay faithful to the textbook code.
    for _ in 0..n - 1 {
        w.write_bit(false);
    }
    w.write_bits(value, n);
}

/// Decodes an Elias-gamma value.
pub fn gamma_decode(r: &mut BitReader<'_>) -> Result<u64, OutOfBits> {
    let mut zeros = 0u32;
    while !r.read_bit()? {
        zeros += 1;
    }
    // The leading 1 bit already consumed; read the remaining `zeros` bits.
    let rest = r.read_bits(zeros)?;
    Ok((1u64 << zeros) | rest)
}

/// Exact gamma code length in bits.
pub fn gamma_len(value: u64) -> u64 {
    assert!(value >= 1);
    u64::from(2 * bit_width(value) - 1)
}

/// Encodes `value >= 1` with Elias delta: gamma-coded width + binary tail.
///
/// # Panics
/// Panics if `value == 0`.
pub fn delta_encode(w: &mut BitWriter, value: u64) {
    assert!(value >= 1, "elias delta codes positive integers");
    let n = bit_width(value);
    gamma_encode(w, u64::from(n));
    // The top bit of `value` is implied by the width.
    w.write_bits(value & !(1u64 << (n - 1)), n - 1);
}

/// Decodes an Elias-delta value.
pub fn delta_decode(r: &mut BitReader<'_>) -> Result<u64, OutOfBits> {
    let n = gamma_decode(r)? as u32;
    let rest = r.read_bits(n - 1)?;
    Ok((1u64 << (n - 1)) | rest)
}

/// Exact delta code length in bits.
pub fn delta_len(value: u64) -> u64 {
    assert!(value >= 1);
    let n = u64::from(bit_width(value));
    gamma_len(n) + n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_round_trip() {
        let values: Vec<u64> = (1..200).chain([1 << 20, (1 << 40) + 12345]).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            gamma_encode(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(gamma_decode(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn delta_round_trip() {
        let values: Vec<u64> = (1..200).chain([1 << 20, (1 << 40) + 12345]).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            delta_encode(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(delta_decode(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn gamma_lengths() {
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(3), 3);
        assert_eq!(gamma_len(4), 5);
        assert_eq!(gamma_len(15), 7);
        for v in 1..100u64 {
            let mut w = BitWriter::new();
            gamma_encode(&mut w, v);
            assert_eq!(w.bit_len(), gamma_len(v), "v={v}");
        }
    }

    #[test]
    fn delta_lengths() {
        assert_eq!(delta_len(1), 1);
        for v in 1..100u64 {
            let mut w = BitWriter::new();
            delta_encode(&mut w, v);
            assert_eq!(w.bit_len(), delta_len(v), "v={v}");
        }
    }

    #[test]
    fn delta_beats_gamma_for_large_values() {
        assert!(delta_len(1 << 30) < gamma_len(1 << 30));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_zero() {
        let mut w = BitWriter::new();
        gamma_encode(&mut w, 0);
    }
}
