//! Probability models driving the range coder.
//!
//! Dophy keeps two kinds of models:
//!
//! * [`StaticModel`] — a frozen frequency table. This is what the sink
//!   disseminates to the network at each model-update epoch (the paper's
//!   Optimization 2): every node encodes against the same table, so the sink
//!   can decode without per-packet synchronisation.
//! * [`AdaptiveModel`] — a Fenwick-tree backed table that updates after every
//!   symbol. Encoder and decoder stay in lockstep because both apply the
//!   identical deterministic update rule. Used for within-packet adaptation
//!   and as the sink-side learning structure from which new static models are
//!   derived.
//!
//! All models guarantee every symbol a frequency of at least one (no
//! zero-probability symbols), and keep their totals at or below
//! [`crate::range::MAX_TOTAL`].

use crate::range::{RangeCodingError, RangeDecoder, RangeEncoder, MAX_TOTAL};
use serde::{Deserialize, Serialize};

/// Interface between a frequency table and the range coder.
pub trait SymbolModel {
    /// Number of symbols in the alphabet.
    fn num_symbols(&self) -> usize;

    /// Sum of all frequencies. Always `<= MAX_TOTAL`.
    fn total(&self) -> u32;

    /// `(cumulative, frequency)` of `sym`.
    ///
    /// # Panics
    /// Panics if `sym >= num_symbols()`.
    fn lookup(&self, sym: usize) -> (u32, u32);

    /// Maps a decoder target in `0..total()` back to `(sym, cum, freq)`.
    fn symbol_for(&self, target: u32) -> (usize, u32, u32);

    /// Post-symbol hook; adaptive models update their counts here.
    fn update(&mut self, _sym: usize) {}

    /// Encodes `sym` through `enc` and applies the adaptive update.
    fn encode_symbol(
        &mut self,
        enc: &mut RangeEncoder,
        sym: usize,
    ) -> Result<(), RangeCodingError> {
        let (cum, freq) = self.lookup(sym);
        enc.encode(cum, freq, self.total())?;
        self.update(sym);
        Ok(())
    }

    /// Decodes one symbol through `dec` and applies the adaptive update.
    fn decode_symbol(&mut self, dec: &mut RangeDecoder<'_>) -> Result<usize, RangeCodingError> {
        let target = dec.decode_target(self.total())?;
        let (sym, cum, freq) = self.symbol_for(target);
        dec.decode_advance(cum, freq)?;
        self.update(sym);
        Ok(sym)
    }

    /// Ideal code length of `sym` under this model, in bits.
    fn code_length_bits(&self, sym: usize) -> f64 {
        let (_, freq) = self.lookup(sym);
        let p = f64::from(freq) / f64::from(self.total());
        -p.log2()
    }
}

/// Frozen frequency table (cumulative array + binary search).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticModel {
    /// `cum[i]` = sum of frequencies of symbols `< i`; length = n + 1.
    cum: Vec<u32>,
}

impl StaticModel {
    /// Builds a model from raw frequencies. Zero frequencies are bumped to
    /// one (add-one smoothing keeps every symbol encodable) and the table is
    /// scaled down if the total would exceed `MAX_TOTAL`.
    ///
    /// # Panics
    /// Panics if `freqs` is empty.
    pub fn from_frequencies(freqs: &[u32]) -> Self {
        assert!(!freqs.is_empty(), "alphabet must be non-empty");
        let mut f: Vec<u64> = freqs.iter().map(|&x| u64::from(x.max(1))).collect();
        let mut total: u64 = f.iter().sum();
        while total > u64::from(MAX_TOTAL) {
            total = 0;
            for x in &mut f {
                *x = (*x / 2).max(1);
                total += *x;
            }
        }
        let mut cum = Vec::with_capacity(f.len() + 1);
        let mut acc = 0u32;
        cum.push(0);
        for x in &f {
            acc += *x as u32;
            cum.push(acc);
        }
        Self { cum }
    }

    /// Uniform model over `n` symbols.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > MAX_TOTAL`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0 && n <= MAX_TOTAL as usize);
        Self::from_frequencies(&vec![1u32; n])
    }

    /// Builds a model whose probabilities follow a truncated geometric
    /// distribution with per-trial success probability `p` — the natural
    /// prior for retransmission counts over a link with loss `1 - p`.
    ///
    /// Symbol `i` (zero-based) gets weight proportional to `(1-p)^i * p`.
    pub fn truncated_geometric(n: usize, p: f64) -> Self {
        assert!(n > 0);
        let p = p.clamp(1e-6, 1.0 - 1e-6);
        let scale = 32_768.0;
        let freqs: Vec<u32> = (0..n)
            .map(|i| {
                let w = (1.0 - p).powi(i as i32) * p;
                (w * scale).round().max(1.0) as u32
            })
            .collect();
        Self::from_frequencies(&freqs)
    }

    /// Per-symbol frequencies (reconstructed from the cumulative table).
    pub fn frequencies(&self) -> Vec<u32> {
        self.cum.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Probability assigned to `sym`.
    pub fn probability(&self, sym: usize) -> f64 {
        let (_, f) = self.lookup(sym);
        f64::from(f) / f64::from(self.total())
    }
}

impl SymbolModel for StaticModel {
    fn num_symbols(&self) -> usize {
        self.cum.len() - 1
    }

    fn total(&self) -> u32 {
        *self.cum.last().expect("non-empty")
    }

    fn lookup(&self, sym: usize) -> (u32, u32) {
        let lo = self.cum[sym];
        let hi = self.cum[sym + 1];
        (lo, hi - lo)
    }

    fn symbol_for(&self, target: u32) -> (usize, u32, u32) {
        // partition_point: first index where cum[i] > target, minus one.
        let idx = self.cum.partition_point(|&c| c <= target) - 1;
        let (cum, freq) = self.lookup(idx);
        (idx, cum, freq)
    }
}

/// Fenwick (binary indexed) tree over symbol frequencies.
///
/// Supports O(log n) point updates, prefix sums, and target→symbol search,
/// which is everything an adaptive arithmetic-coding model needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FenwickTree {
    /// 1-based implicit tree; `tree[0]` unused.
    tree: Vec<u32>,
    n: usize,
}

impl FenwickTree {
    /// Zero-initialised tree over `n` slots.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
            n,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `delta` to slot `i`.
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i <= self.n {
            let v = i64::from(self.tree[i]) + delta;
            debug_assert!(v >= 0, "fenwick underflow");
            self.tree[i] = v as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..i` (exclusive prefix sum).
    pub fn prefix_sum(&self, i: usize) -> u32 {
        let mut i = i.min(self.n);
        let mut s = 0u32;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Value stored in slot `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.prefix_sum(i + 1) - self.prefix_sum(i)
    }

    /// Sum of all slots.
    pub fn total(&self) -> u32 {
        self.prefix_sum(self.n)
    }

    /// Finds the largest `i` such that `prefix_sum(i) <= target`, i.e. the
    /// symbol whose cumulative interval contains `target`.
    pub fn search(&self, mut target: u32) -> usize {
        let mut pos = 0usize;
        let mut mask = self.n.next_power_of_two();
        // If n is a power of two, next_power_of_two returns n itself, which
        // is the correct starting stride.
        while mask > 0 {
            let next = pos + mask;
            if next <= self.n && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos.min(self.n - 1)
    }
}

/// Adaptive frequency model with halving rescale.
///
/// Every symbol starts at frequency 1. After each encode/decode the observed
/// symbol's frequency grows by `increment`; when the total would exceed
/// `rescale_threshold` all frequencies are halved (floored at 1), so the
/// model tracks non-stationary distributions — exactly what link-quality
/// drift produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveModel {
    tree: FenwickTree,
    increment: u32,
    rescale_threshold: u32,
}

/// Default per-observation frequency increment.
pub const DEFAULT_INCREMENT: u32 = 32;
/// Default rescale threshold (half of `MAX_TOTAL` leaves headroom).
pub const DEFAULT_RESCALE: u32 = MAX_TOTAL / 2;

impl AdaptiveModel {
    /// Uniform-start adaptive model over `n` symbols.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n` exceeds `MAX_TOTAL`.
    pub fn new(n: usize) -> Self {
        Self::with_params(n, DEFAULT_INCREMENT, DEFAULT_RESCALE)
    }

    /// Adaptive model with explicit increment and rescale threshold.
    ///
    /// # Panics
    /// Panics on empty alphabets, zero increments, or thresholds that cannot
    /// accommodate the alphabet.
    pub fn with_params(n: usize, increment: u32, rescale_threshold: u32) -> Self {
        assert!(n > 0, "alphabet must be non-empty");
        assert!(increment > 0, "increment must be positive");
        assert!(
            rescale_threshold <= MAX_TOTAL && rescale_threshold as usize >= 2 * n,
            "rescale threshold must fit the alphabet and MAX_TOTAL"
        );
        let mut tree = FenwickTree::new(n);
        for i in 0..n {
            tree.add(i, 1);
        }
        Self {
            tree,
            increment,
            rescale_threshold,
        }
    }

    /// Seeds the adaptive model from a static table (warm start after a
    /// model-update epoch).
    pub fn from_static(model: &StaticModel) -> Self {
        let freqs = model.frequencies();
        let mut m = Self::new(freqs.len());
        for (i, &f) in freqs.iter().enumerate() {
            // Slot already holds 1; add the remainder.
            if f > 1 {
                m.tree.add(i, i64::from(f - 1));
            }
        }
        m.rescale_if_needed();
        m
    }

    /// Current frequency of `sym`.
    pub fn frequency(&self, sym: usize) -> u32 {
        self.tree.get(sym)
    }

    /// Freezes the current counts into a static model.
    pub fn snapshot(&self) -> StaticModel {
        let freqs: Vec<u32> = (0..self.tree.len()).map(|i| self.tree.get(i)).collect();
        StaticModel::from_frequencies(&freqs)
    }

    /// Records an observation without coding (sink-side statistics
    /// collection between model updates).
    pub fn observe(&mut self, sym: usize) {
        self.update(sym);
    }

    fn rescale_if_needed(&mut self) {
        if self.tree.total() <= self.rescale_threshold {
            return;
        }
        let n = self.tree.len();
        let mut fresh = FenwickTree::new(n);
        for i in 0..n {
            let f = (self.tree.get(i) / 2).max(1);
            fresh.add(i, i64::from(f));
        }
        self.tree = fresh;
    }
}

impl SymbolModel for AdaptiveModel {
    fn num_symbols(&self) -> usize {
        self.tree.len()
    }

    fn total(&self) -> u32 {
        self.tree.total()
    }

    fn lookup(&self, sym: usize) -> (u32, u32) {
        assert!(sym < self.tree.len(), "symbol out of range");
        let cum = self.tree.prefix_sum(sym);
        let freq = self.tree.get(sym);
        (cum, freq)
    }

    fn symbol_for(&self, target: u32) -> (usize, u32, u32) {
        let sym = self.tree.search(target);
        let (cum, freq) = self.lookup(sym);
        (sym, cum, freq)
    }

    fn update(&mut self, sym: usize) {
        self.tree.add(sym, i64::from(self.increment));
        self.rescale_if_needed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::{RangeDecoder, RangeEncoder};

    #[test]
    fn fenwick_matches_naive() {
        let mut t = FenwickTree::new(13);
        let mut naive = [0u32; 13];
        let updates = [
            (0, 5i64),
            (12, 3),
            (6, 7),
            (6, 2),
            (3, 1),
            (12, -3),
            (0, -1),
        ];
        for &(i, d) in &updates {
            t.add(i, d);
            naive[i] = (i64::from(naive[i]) + d) as u32;
        }
        for i in 0..=13 {
            let expect: u32 = naive[..i].iter().sum();
            assert_eq!(t.prefix_sum(i), expect, "prefix {i}");
        }
        for (i, &v) in naive.iter().enumerate() {
            assert_eq!(t.get(i), v, "get {i}");
        }
    }

    #[test]
    fn fenwick_search_finds_containing_symbol() {
        let mut t = FenwickTree::new(5);
        for (i, f) in [3u32, 1, 4, 1, 5].iter().enumerate() {
            t.add(i, i64::from(*f));
        }
        // Cumulative: [0,3,4,8,9,14)
        let expect = [
            (0, 0),
            (2, 0),
            (3, 1),
            (4, 2),
            (7, 2),
            (8, 3),
            (9, 4),
            (13, 4),
        ];
        for &(target, sym) in &expect {
            assert_eq!(t.search(target), sym, "target {target}");
        }
    }

    #[test]
    fn fenwick_search_power_of_two_size() {
        let mut t = FenwickTree::new(8);
        for i in 0..8 {
            t.add(i, 2);
        }
        for target in 0..16u32 {
            assert_eq!(t.search(target), (target / 2) as usize);
        }
    }

    #[test]
    fn static_model_lookup_consistency() {
        let m = StaticModel::from_frequencies(&[10, 0, 5, 1]);
        // Zero was smoothed to one.
        assert_eq!(m.frequencies(), vec![10, 1, 5, 1]);
        assert_eq!(m.total(), 17);
        for sym in 0..4 {
            let (cum, freq) = m.lookup(sym);
            for t in cum..cum + freq {
                let (s, c, f) = m.symbol_for(t);
                assert_eq!((s, c, f), (sym, cum, freq));
            }
        }
    }

    #[test]
    fn static_model_scales_down_large_totals() {
        let m = StaticModel::from_frequencies(&[1_000_000, 2_000_000, 10]);
        assert!(m.total() <= MAX_TOTAL);
        // Relative ordering preserved.
        let f = m.frequencies();
        assert!(f[1] > f[0]);
        assert!(f[0] > f[2]);
    }

    #[test]
    fn truncated_geometric_is_monotone_decreasing() {
        let m = StaticModel::truncated_geometric(8, 0.7);
        let f = m.frequencies();
        for w in f.windows(2) {
            assert!(w[0] >= w[1], "geometric weights must not increase: {f:?}");
        }
        assert!(m.probability(0) > 0.5);
    }

    #[test]
    fn adaptive_model_coder_round_trip() {
        let syms: Vec<usize> = (0..2000).map(|i| (i * i) % 10).collect();
        let mut enc_model = AdaptiveModel::new(10);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            enc_model.encode_symbol(&mut enc, s).unwrap();
        }
        let bytes = enc.finish().unwrap();

        let mut dec_model = AdaptiveModel::new(10);
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &s in &syms {
            assert_eq!(dec_model.decode_symbol(&mut dec).unwrap(), s);
        }
        // Models stayed in lockstep.
        assert_eq!(enc_model, dec_model);
    }

    #[test]
    fn adaptive_model_beats_uniform_on_skewed_input() {
        // 95% zeros from a 16-symbol alphabet.
        let syms: Vec<usize> = (0..4000)
            .map(|i| if i % 20 == 0 { i % 16 } else { 0 })
            .collect();

        let encode_with = |mut model: Box<dyn SymbolModel>| -> usize {
            let mut enc = RangeEncoder::new();
            for &s in &syms {
                model.encode_symbol(&mut enc, s).unwrap();
            }
            enc.finish().unwrap().len()
        };

        let adaptive = encode_with(Box::new(AdaptiveModel::new(16)));
        let uniform = encode_with(Box::new(StaticModel::uniform(16)));
        assert!(
            adaptive * 2 < uniform,
            "adaptive {adaptive} should be well under half of uniform {uniform}"
        );
    }

    #[test]
    fn adaptive_rescale_keeps_total_bounded() {
        let mut m = AdaptiveModel::with_params(4, 1000, 4000);
        for _ in 0..10_000 {
            m.update(1);
        }
        assert!(m.total() <= 4000 + 1000);
        // All symbols still encodable.
        for s in 0..4 {
            assert!(m.frequency(s) >= 1);
        }
    }

    #[test]
    fn from_static_preserves_shape() {
        let st = StaticModel::from_frequencies(&[100, 50, 10, 1]);
        let ad = AdaptiveModel::from_static(&st);
        assert!(ad.frequency(0) > ad.frequency(1));
        assert!(ad.frequency(1) > ad.frequency(2));
        assert!(ad.frequency(3) >= 1);
    }

    #[test]
    fn snapshot_round_trips_frequencies() {
        let mut ad = AdaptiveModel::new(6);
        for s in [0, 0, 0, 1, 1, 5] {
            ad.observe(s);
        }
        let snap = ad.snapshot();
        assert_eq!(snap.frequencies().len(), 6);
        assert_eq!(snap.total(), ad.total());
        for s in 0..6 {
            assert_eq!(snap.lookup(s), ad.lookup(s));
        }
    }

    #[test]
    fn static_and_adaptive_interleaved_contexts() {
        // Two independent contexts through one stream, as Dophy uses.
        let hops: Vec<(usize, usize)> = (0..500).map(|i| (i % 5, (i * 3) % 7)).collect();
        let mut ctx_a = AdaptiveModel::new(5);
        let mut ctx_b = StaticModel::truncated_geometric(7, 0.6);
        let mut enc = RangeEncoder::new();
        for &(a, b) in &hops {
            ctx_a.encode_symbol(&mut enc, a).unwrap();
            ctx_b.encode_symbol(&mut enc, b).unwrap();
        }
        let bytes = enc.finish().unwrap();

        let mut dctx_a = AdaptiveModel::new(5);
        let mut dctx_b = ctx_b.clone();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &(a, b) in &hops {
            assert_eq!(dctx_a.decode_symbol(&mut dec).unwrap(), a);
            assert_eq!(dctx_b.decode_symbol(&mut dec).unwrap(), b);
        }
    }
}
