//! Bit-level I/O over byte buffers.
//!
//! [`BitWriter`] and [`BitReader`] provide MSB-first bit streams used by the
//! baseline entropy coders ([`crate::golomb`], [`crate::elias`],
//! [`crate::fixed`]). The arithmetic coder in [`crate::range`] works on whole
//! bytes and does not use these types.
//!
//! Bits are packed most-significant-bit first: the first bit written lands in
//! bit 7 of byte 0. A partially filled final byte is zero-padded on flush,
//! which means a reader must know (from context) how many symbols to read —
//! exactly the situation in packet headers where the symbol count is implied
//! by the hop count.

/// Accumulates bits MSB-first into an internal byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Current partial byte, bits occupy the high positions.
    cur: u8,
    /// Number of valid bits in `cur` (0..=7).
    nbits: u8,
    /// Total bits written (including those still in `cur`).
    total_bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with capacity for roughly `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits / 8 + 1),
            ..Self::default()
        }
    }

    /// Writes a single bit (`true` = 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | u8::from(bit);
        self.nbits += 1;
        self.total_bits += 1;
        if self.nbits == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.nbits = 0;
        }
    }

    /// Writes the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Writes `n` consecutive one-bits followed by a zero (unary coding).
    pub fn write_unary(&mut self, n: u64) {
        for _ in 0..n {
            self.write_bit(true);
        }
        self.write_bit(false);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.total_bits
    }

    /// Number of bytes the finished stream will occupy.
    pub fn byte_len(&self) -> usize {
        (self.total_bits as usize).div_ceil(8)
    }

    /// Flushes the partial byte (zero-padded) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push(self.cur << (8 - self.nbits));
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position of the next bit to read.
    pos: u64,
}

/// Error returned when a read runs past the end of the underlying buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit reader exhausted")
    }
}

impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, OutOfBits> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.buf.len() {
            return Err(OutOfBits);
        }
        let shift = 7 - (self.pos % 8) as u32;
        self.pos += 1;
        Ok((self.buf[byte] >> shift) & 1 == 1)
    }

    /// Reads `n` bits MSB-first into the low bits of the result.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, OutOfBits> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }

    /// Reads a unary-coded value: counts one-bits until the terminating zero.
    pub fn read_unary(&mut self) -> Result<u64, OutOfBits> {
        let mut n = 0u64;
        while self.read_bit()? {
            n += 1;
        }
        Ok(n)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Bits remaining in the buffer (including any padding bits).
    pub fn remaining_bits(&self) -> u64 {
        (self.buf.len() as u64 * 8).saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [
            true, false, true, true, false, false, true, false, true, true,
        ];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 10);
        assert_eq!(w.byte_len(), 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn unary_round_trip() {
        let mut w = BitWriter::new();
        for n in [0u64, 1, 2, 7, 20] {
            w.write_unary(n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for n in [0u64, 1, 2, 7, 20] {
            assert_eq!(r.read_unary().unwrap(), n);
        }
    }

    #[test]
    fn reader_reports_exhaustion() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        // One padded byte: 8 bits readable, then exhausted.
        assert_eq!(r.read_bits(8).unwrap(), 0b1010_0000);
        assert_eq!(r.read_bit(), Err(OutOfBits));
    }

    #[test]
    fn byte_len_matches_finish() {
        for nbits in 0..40u32 {
            let mut w = BitWriter::new();
            for i in 0..nbits {
                w.write_bit(i % 3 == 0);
            }
            let expected = w.byte_len();
            assert_eq!(w.finish().len(), expected, "nbits={nbits}");
        }
    }

    #[test]
    fn bit_pos_tracks_reads() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0xCD, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit_pos(), 0);
        assert_eq!(r.remaining_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.bit_pos(), 5);
        assert_eq!(r.remaining_bits(), 11);
    }
}
