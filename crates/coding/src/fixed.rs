//! Fixed-width encoding — the "explicit recording" baseline.
//!
//! Traditional in-packet measurement schemes append a fixed-width record per
//! hop: the forwarder identifier plus a retransmission counter. This module
//! models that scheme exactly so the encoding-overhead comparison (paper
//! figure `fig3-encoding-overhead`) has a faithful upper baseline.

use crate::bitio::{BitReader, BitWriter, OutOfBits};

/// Bits needed to represent values `0..n` (at least 1).
pub fn width_for(n: u64) -> u32 {
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Fixed-width per-hop record layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedRecord {
    /// Bits for the forwarder/node identifier field.
    pub id_bits: u32,
    /// Bits for the attempt-count field.
    pub attempt_bits: u32,
}

impl FixedRecord {
    /// Layout sized for `num_nodes` identifiers and `max_attempts` counts.
    pub fn for_network(num_nodes: usize, max_attempts: u16) -> Self {
        Self {
            id_bits: width_for(num_nodes as u64),
            attempt_bits: width_for(u64::from(max_attempts)),
        }
    }

    /// Record size in bits.
    pub fn bits(&self) -> u32 {
        self.id_bits + self.attempt_bits
    }

    /// Byte-aligned record size (what firmware would actually reserve).
    pub fn bytes_aligned(&self) -> usize {
        (self.bits() as usize).div_ceil(8)
    }

    /// Appends one `(node_id, attempt)` record.
    ///
    /// # Panics
    /// Panics if either field does not fit its width.
    pub fn encode(&self, w: &mut BitWriter, node_id: u64, attempt: u16) {
        assert!(node_id < (1u64 << self.id_bits), "node id overflows field");
        assert!(
            u64::from(attempt) <= (1u64 << self.attempt_bits) - 1 + 1 && attempt >= 1,
            "attempt overflows field"
        );
        w.write_bits(node_id, self.id_bits);
        // Store attempt - 1 so the budget R fits in width_for(R) bits.
        w.write_bits(u64::from(attempt - 1), self.attempt_bits);
    }

    /// Reads one record back.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<(u64, u16), OutOfBits> {
        let id = r.read_bits(self.id_bits)?;
        let attempt = r.read_bits(self.attempt_bits)? as u16 + 1;
        Ok((id, attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_boundaries() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 1);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 2);
        assert_eq!(width_for(5), 3);
        assert_eq!(width_for(256), 8);
        assert_eq!(width_for(257), 9);
    }

    #[test]
    fn record_round_trip() {
        let rec = FixedRecord::for_network(200, 7);
        assert_eq!(rec.id_bits, 8);
        assert_eq!(rec.attempt_bits, 3);
        let hops = [(0u64, 1u16), (199, 7), (42, 3), (1, 1)];
        let mut w = BitWriter::new();
        for &(id, a) in &hops {
            rec.encode(&mut w, id, a);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(id, a) in &hops {
            assert_eq!(rec.decode(&mut r).unwrap(), (id, a));
        }
    }

    #[test]
    fn bytes_aligned_rounds_up() {
        let rec = FixedRecord {
            id_bits: 8,
            attempt_bits: 3,
        };
        assert_eq!(rec.bits(), 11);
        assert_eq!(rec.bytes_aligned(), 2);
    }

    #[test]
    #[should_panic(expected = "node id")]
    fn rejects_oversized_id() {
        let rec = FixedRecord::for_network(16, 7);
        let mut w = BitWriter::new();
        rec.encode(&mut w, 16, 1);
    }
}
