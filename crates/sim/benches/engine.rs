//! Engine hot-path microbenchmarks: the event queue, the two transmit
//! paths (broadcast fan-out, unicast ARQ), and whole-engine steps/sec at
//! 100/400/1000 nodes.
//!
//! The drivers are deliberately thin synthetic protocols (periodic
//! beacons, periodic unicasts to the best neighbor) rather than the full
//! Dophy stack, so the numbers isolate engine cost — queue churn, link
//! lookups, loss sampling — from routing/coding logic. Topology and loss
//! models are built once per size outside the timed loop; each iteration
//! constructs and runs a fresh engine over the shared topology.
//!
//! Results feed `BENCH_engine.json` (steps/sec = events processed per
//! wall-clock second, reported via `Throughput::Elements`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dophy_sim::event::{EventKind, EventQueue};
use dophy_sim::{
    Ctx, Engine, Frame, LinkDynamics, MacConfig, NodeId, Payload, Placement, Protocol, RadioModel,
    SimConfig, SimDuration, SimTime, TimerId,
};
use std::sync::Arc;

/// Constant-density disk, same scaling rule as the fig8/fig14 sweeps.
fn sim_config(n: u32, seed: u64) -> SimConfig {
    SimConfig {
        placement: Placement::UniformDisk {
            n,
            radius: 120.0 * (f64::from(n) / 200.0).sqrt(),
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    }
}

fn payload() -> Payload {
    Arc::new(0u8)
}

/// Broadcasts a beacon every `period`; ignores everything it hears.
struct BeaconNode {
    period: SimDuration,
}

impl Protocol for BeaconNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.period, TimerId(0));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId) {
        ctx.send_broadcast(payload(), 32);
        ctx.set_timer(self.period, TimerId(0));
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _frame: &Frame) {}
}

/// Unicasts to its best neighbor every `period` (full ARQ exchange).
struct UnicastNode {
    period: SimDuration,
    target: Option<NodeId>,
}

impl Protocol for UnicastNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        self.target = ctx.neighbors().first().copied();
        if self.target.is_some() {
            ctx.set_timer(self.period, TimerId(0));
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId) {
        if let Some(dst) = self.target {
            ctx.send_unicast(dst, payload(), 64);
        }
        ctx.set_timer(self.period, TimerId(0));
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _frame: &Frame) {}
}

/// Mixed workload: beacon every 2 s plus a unicast to the best neighbor
/// every 1 s — roughly the broadcast/unicast event mix of the full stack.
struct MixedNode {
    target: Option<NodeId>,
}

impl Protocol for MixedNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        self.target = ctx.neighbors().first().copied();
        ctx.set_timer(SimDuration::from_secs(2), TimerId(0));
        ctx.set_timer(SimDuration::from_secs(1), TimerId(1));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        match timer {
            TimerId(0) => {
                ctx.send_broadcast(payload(), 32);
                ctx.set_timer(SimDuration::from_secs(2), TimerId(0));
            }
            _ => {
                if let Some(dst) = self.target {
                    ctx.send_unicast(dst, payload(), 64);
                }
                ctx.set_timer(SimDuration::from_secs(1), TimerId(1));
            }
        }
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _frame: &Frame) {}
}

/// Builds, starts, and runs an engine over the shared topology; returns
/// events processed.
fn run_engine<P: Protocol>(
    cfg: &SimConfig,
    topo: &Arc<dophy_sim::Topology>,
    models: &[dophy_sim::LossModel],
    sim_secs: u64,
    make: impl Fn() -> P,
) -> u64 {
    let protos = (0..topo.node_count()).map(|_| make()).collect();
    let mut e = Engine::new(Arc::clone(topo), models, cfg.mac, cfg.hub(), protos);
    e.start();
    e.run_for(SimDuration::from_secs(sim_secs));
    e.events_processed()
}

fn bench_event_queue(c: &mut Criterion) {
    const N: u64 = 100_000;
    let mut g = c.benchmark_group("event-queue");
    g.sample_size(20);
    g.throughput(Throughput::Elements(N));
    g.bench_function("push-pop-100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Scattered insertion times (splitmix-style hash) exercise real
            // heap reordering instead of monotone append.
            for i in 0..N {
                let t = (i ^ 0x9E37_79B9).wrapping_mul(0xBF58_476D_1CE4_E5B9) % 1_000_000;
                q.push(
                    SimTime::ZERO + SimDuration::from_micros(t),
                    EventKind::Timer {
                        node: NodeId((i % 1000) as u32),
                        timer: TimerId(0),
                    },
                );
            }
            let mut popped = 0u64;
            while q.pop().is_some() {
                popped += 1;
            }
            black_box(popped)
        });
    });
    g.finish();
}

fn bench_broadcast_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast-fanout");
    g.sample_size(10);
    let cfg = sim_config(200, 7);
    let topo = Arc::new(cfg.topology());
    let models = cfg.loss_models(&topo);
    let period = SimDuration::from_secs(1);
    let events = run_engine(&cfg, &topo, &models, 30, || BeaconNode { period });
    g.throughput(Throughput::Elements(events));
    g.bench_with_input(BenchmarkId::new("beacon-30s", 200), &(), |b, ()| {
        b.iter(|| {
            black_box(run_engine(&cfg, &topo, &models, 30, || BeaconNode {
                period,
            }))
        });
    });
    g.finish();
}

fn bench_unicast_arq(c: &mut Criterion) {
    let mut g = c.benchmark_group("unicast-arq");
    g.sample_size(10);
    let cfg = sim_config(200, 11);
    let topo = Arc::new(cfg.topology());
    let models = cfg.loss_models(&topo);
    let period = SimDuration::from_millis(500);
    let events = run_engine(&cfg, &topo, &models, 30, || UnicastNode {
        period,
        target: None,
    });
    g.throughput(Throughput::Elements(events));
    g.bench_with_input(BenchmarkId::new("arq-30s", 200), &(), |b, ()| {
        b.iter(|| {
            black_box(run_engine(&cfg, &topo, &models, 30, || UnicastNode {
                period,
                target: None,
            }))
        });
    });
    g.finish();
}

fn bench_full_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine-steps");
    g.sample_size(10);
    for n in [100u32, 400, 1000] {
        let cfg = sim_config(n, 3);
        let topo = Arc::new(cfg.topology());
        let models = cfg.loss_models(&topo);
        let events = run_engine(&cfg, &topo, &models, 30, || MixedNode { target: None });
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("mixed-30s", n), &n, |b, _| {
            b.iter(|| {
                black_box(run_engine(&cfg, &topo, &models, 30, || MixedNode {
                    target: None,
                }))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_broadcast_fanout,
    bench_unicast_arq,
    bench_full_engine
);
criterion_main!(benches);
