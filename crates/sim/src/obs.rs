//! Structured observability: event tracing and a metrics registry.
//!
//! The simulator's ground-truth [`crate::trace::Trace`] records *what the
//! channel did*; this module records *why a run behaved the way it did*.
//! It has two halves:
//!
//! - **Event tracing.** The [`Observer`] trait receives structured,
//!   sim-time-stamped events from the engine hot path (tx/rx/ack/drop/
//!   timer) and from protocol layers (parent changes, model-epoch
//!   switches, decode outcomes). Every hook has a no-op default, and the
//!   engine holds an `Option<Arc<dyn Observer>>`, so an unobserved run
//!   pays only an untaken branch per event. [`JsonlTracer`] is the
//!   standard observer: it streams one JSON object per event to any
//!   writer, with severity and category filtering.
//!
//! - **Metrics.** [`MetricsRegistry`] holds named counters, gauges, and
//!   histograms with static label sets, and snapshots them into a
//!   time-series on whatever sim-time cadence the harness chooses.
//!
//! Observers receive `&self` and plain-data event payloads: they cannot
//! reach simulation RNG streams or mutate engine state, so an observed
//! run is bit-identical to an unobserved run of the same seed. The
//! integration tests enforce this zero-perturbation guarantee.

use crate::time::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Event payloads
// ---------------------------------------------------------------------------

/// One physical transmission attempt (unicast attempt or broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxEvent {
    /// Sending node.
    pub src: u32,
    /// Destination node; `None` for a link-layer broadcast.
    pub dst: Option<u32>,
    /// 1-based attempt number within the ARQ exchange (1 for broadcast).
    pub attempt: u16,
    /// On-air frame size in bytes.
    pub bytes: u32,
    /// Whether the channel delivered this copy (broadcasts report `true`;
    /// per-neighbor outcomes arrive as [`RxEvent`]s).
    pub ok: bool,
}

/// A frame copy delivered to a node's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RxEvent {
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Attempt number the delivered copy was sent on.
    pub attempt: u16,
    /// On-air frame size in bytes.
    pub bytes: u32,
    /// Whether the frame was a broadcast.
    pub broadcast: bool,
}

/// One link-layer ACK attempt back to the data sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckEvent {
    /// Data sender (the ACK's destination).
    pub src: u32,
    /// Data receiver (the ACK's sender).
    pub dst: u32,
    /// Attempt number being acknowledged.
    pub attempt: u16,
    /// Whether the ACK survived the reverse channel.
    pub ok: bool,
}

/// Why a frame (or a whole exchange) was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The sending node's radio was off.
    RadioOff,
    /// The MAC transmit queue was full.
    QueueFull,
    /// The ARQ exchange exhausted its attempt budget unacknowledged.
    LinkExhausted,
    /// No physical link exists towards the destination.
    NoLink,
    /// The destination's radio was off for the whole exchange.
    ReceiverOff,
    /// The routing layer had no parent/route for the packet.
    NoRoute,
    /// The packet's TTL/hop budget expired in the network.
    TtlExpired,
    /// The frame was destroyed by injected corruption (truncation or
    /// flips that made it structurally unparseable).
    Corrupt,
}

/// A frame or packet dropped before (or instead of) delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropEvent {
    /// Node at which the drop happened.
    pub node: u32,
    /// Intended destination, when known.
    pub dst: Option<u32>,
    /// Why the frame died.
    pub reason: DropReason,
}

/// A protocol timer fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerEvent {
    /// Node whose timer fired.
    pub node: u32,
    /// Raw timer id (protocol-defined meaning).
    pub timer: u32,
}

/// A node adopted a (new) routing parent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParentChangeEvent {
    /// Node switching parents.
    pub node: u32,
    /// Previous parent, `None` on first adoption.
    pub old_parent: Option<u32>,
    /// Newly adopted parent.
    pub new_parent: u32,
    /// Path ETX through the new parent at adoption time.
    pub etx: f64,
}

/// The sink published a new model epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochSwitchEvent {
    /// Internal (unwrapped) epoch number now current.
    pub epoch: u64,
}

/// Outcome of decoding one data packet at the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// Decoded cleanly.
    Ok,
    /// Packet carried an epoch the sink has no models for.
    UnknownEpoch,
    /// A decoded symbol index fell outside its space.
    BadIndex,
    /// The decoded path disagreed with observed forwarding.
    PathMismatch,
    /// Range-coder failure mid-stream.
    Coding,
    /// A hop had disabled coding (missing epoch models).
    Disabled,
    /// Structural pre-check failure: a header field (origin, length)
    /// was out of range before any decode work started.
    Malformed,
    /// The claimed hop count exceeds what the topology allows.
    BadHopCount,
}

/// A sink-side packet decode finished (successfully or not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeEvent {
    /// Origin node of the packet.
    pub origin: u32,
    /// Origin sequence number.
    pub seq: u32,
    /// Hop count the packet claimed.
    pub hops: u16,
    /// What the decoder concluded.
    pub outcome: DecodeOutcome,
}

// ---------------------------------------------------------------------------
// Causal lifecycle spans
// ---------------------------------------------------------------------------

/// What class of traced object a trace id refers to.
///
/// Trace ids are deterministic 64-bit values whose top two bits encode
/// the kind, so an id alone identifies both the object and its class.
/// They are derived purely from protocol state (origin/sequence numbers,
/// beacon counters, epoch numbers) — never from simulation RNG — so
/// assigning them cannot perturb a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A data (probe) packet, identified by `(origin, seq)`.
    Data,
    /// A routing beacon, identified by `(node, beacon_seq)`.
    Beacon,
    /// A model-epoch publication, identified by the epoch number.
    Model,
}

impl TraceKind {
    /// Decodes the kind tag from a trace id's top two bits.
    #[must_use]
    pub fn of(trace_id: u64) -> Option<TraceKind> {
        match trace_id >> 62 {
            1 => Some(TraceKind::Data),
            2 => Some(TraceKind::Beacon),
            3 => Some(TraceKind::Model),
            _ => None,
        }
    }

    /// Short lowercase name (`data`/`beacon`/`model`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Data => "data",
            TraceKind::Beacon => "beacon",
            TraceKind::Model => "model",
        }
    }
}

/// Trace id for a data (probe) packet: stable across every hop because
/// it is derived from the origin header, not from per-hop state.
///
/// Layout: tag(2) | origin(30) | seq(32). Node ids are masked to 30 bits;
/// ids past 2^30 would alias in traces only (identification, never
/// simulation state), far above any supported topology.
#[must_use]
pub const fn data_trace_id(origin: u32, seq: u32) -> u64 {
    (1u64 << 62) | (((origin & 0x3FFF_FFFF) as u64) << 32) | seq as u64
}

/// Trace id for a routing beacon, from the sender's beacon counter.
///
/// Layout: tag(2) | node(30) | beacon_seq(32) — the sequence wraps at
/// 2^32 beacons, several simulated years at any sane beacon interval.
#[must_use]
pub const fn beacon_trace_id(node: u32, beacon_seq: u64) -> u64 {
    (2u64 << 62) | (((node & 0x3FFF_FFFF) as u64) << 32) | (beacon_seq & 0xFFFF_FFFF)
}

/// Trace id for a model-epoch publication.
#[must_use]
pub const fn model_trace_id(epoch: u64) -> u64 {
    (3u64 << 62) | (epoch & 0x3FFF_FFFF_FFFF_FFFF)
}

/// One step in a traced object's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanPhase {
    /// The object was created and handed to the MAC (packet generated,
    /// beacon emitted, model epoch published).
    Origin,
    /// A physical transmission attempt of the traced frame.
    Tx {
        /// Destination; `None` for broadcast.
        dst: Option<u32>,
        /// 1-based ARQ attempt (1 for broadcast).
        attempt: u16,
        /// Whether the channel delivered this copy.
        ok: bool,
    },
    /// A copy of the traced frame reached a node's protocol.
    Deliver {
        /// Sending node of the delivered copy.
        src: u32,
        /// Attempt number the copy was sent on.
        attempt: u16,
    },
    /// An intermediate node re-enqueued the packet towards its parent.
    Forward {
        /// Next-hop destination.
        to: u32,
    },
    /// The fault layer destroyed the frame (structural corruption).
    Corrupt,
    /// The traced object died at this node.
    Drop {
        /// Why it died.
        reason: DropReason,
    },
    /// The sink finished decoding the traced packet.
    Decode {
        /// Decoder verdict (quarantine cause when not `Ok`).
        outcome: DecodeOutcome,
    },
    /// The estimator ingested the decoded per-hop observations.
    Ingest {
        /// Number of per-link observations extracted.
        observations: u16,
    },
}

/// A causal lifecycle span: one phase of one traced object at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Deterministic id shared by every span of the same object.
    pub trace_id: u64,
    /// Node at which the phase happened.
    pub node: u32,
    /// Which lifecycle step this is.
    pub phase: SpanPhase,
}

/// Any observable event, tagged by kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Transmission attempt.
    Tx(TxEvent),
    /// Frame delivery.
    Rx(RxEvent),
    /// ACK attempt.
    Ack(AckEvent),
    /// Drop.
    Drop(DropEvent),
    /// Timer fire.
    Timer(TimerEvent),
    /// Routing parent change.
    ParentChange(ParentChangeEvent),
    /// Model epoch switch.
    EpochSwitch(EpochSwitchEvent),
    /// Sink decode outcome.
    Decode(DecodeEvent),
    /// Causal lifecycle span.
    Span(SpanEvent),
}

/// Coarse importance level used for trace filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Per-frame detail (tx/rx/ack/timer).
    Debug,
    /// State transitions worth seeing at a glance.
    Info,
    /// Losses and failures.
    Warn,
}

/// Which subsystem an event belongs to, for category filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// MAC/channel events (tx, rx, ack, link drops).
    Mac,
    /// Engine-level events (timers).
    Engine,
    /// Routing events (parent changes, route drops).
    Routing,
    /// Model/epoch lifecycle events.
    Model,
    /// Sink decode events.
    Decode,
    /// Causal packet-lifecycle spans.
    Lifecycle,
}

impl Event {
    /// Severity of this event for filtering.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            Event::Tx(_) | Event::Rx(_) | Event::Ack(_) | Event::Timer(_) => Severity::Debug,
            Event::ParentChange(_) | Event::EpochSwitch(_) => Severity::Info,
            Event::Drop(_) => Severity::Warn,
            Event::Decode(e) => {
                if e.outcome == DecodeOutcome::Ok {
                    Severity::Debug
                } else {
                    Severity::Warn
                }
            }
            Event::Span(e) => match e.phase {
                SpanPhase::Drop { .. } | SpanPhase::Corrupt => Severity::Warn,
                SpanPhase::Decode { outcome } if outcome != DecodeOutcome::Ok => Severity::Warn,
                _ => Severity::Debug,
            },
        }
    }

    /// Subsystem category of this event for filtering.
    #[must_use]
    pub fn category(&self) -> Category {
        match self {
            Event::Tx(_) | Event::Rx(_) | Event::Ack(_) => Category::Mac,
            Event::Timer(_) => Category::Engine,
            Event::Drop(e) => match e.reason {
                DropReason::NoRoute | DropReason::TtlExpired => Category::Routing,
                _ => Category::Mac,
            },
            Event::ParentChange(_) => Category::Routing,
            Event::EpochSwitch(_) => Category::Model,
            Event::Decode(_) => Category::Decode,
            Event::Span(_) => Category::Lifecycle,
        }
    }
}

// ---------------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------------

/// Receives structured events from the engine and protocol layers.
///
/// Every hook defaults to a no-op, so observers implement only what they
/// care about. Hooks take `&self`: observers are shared (`Arc`) across
/// the engine and protocol layers and must do their own interior
/// synchronisation. They receive plain data and cannot perturb the
/// simulation.
pub trait Observer: Send + Sync {
    /// A physical transmission attempt started/resolved.
    fn on_tx(&self, _now: SimTime, _ev: &TxEvent) {}
    /// A frame copy was delivered to a protocol.
    fn on_rx(&self, _now: SimTime, _ev: &RxEvent) {}
    /// A link-layer ACK attempt resolved.
    fn on_ack(&self, _now: SimTime, _ev: &AckEvent) {}
    /// A frame or exchange was dropped.
    fn on_drop(&self, _now: SimTime, _ev: &DropEvent) {}
    /// A protocol timer fired.
    fn on_timer(&self, _now: SimTime, _ev: &TimerEvent) {}
    /// A node adopted a (new) routing parent.
    fn on_parent_change(&self, _now: SimTime, _ev: &ParentChangeEvent) {}
    /// The sink published a new model epoch.
    fn on_epoch_switch(&self, _now: SimTime, _ev: &EpochSwitchEvent) {}
    /// A sink-side decode finished.
    fn on_decode(&self, _now: SimTime, _ev: &DecodeEvent) {}
    /// A causal lifecycle span was recorded for a traced object.
    fn on_span(&self, _now: SimTime, _ev: &SpanEvent) {}
}

// ---------------------------------------------------------------------------
// JsonlTracer
// ---------------------------------------------------------------------------

/// One line of a JSONL trace: sim-time-stamped, severity/category tagged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated time in microseconds.
    pub t_us: u64,
    /// Severity of the event.
    pub severity: Severity,
    /// Subsystem category of the event.
    pub category: Category,
    /// The event payload.
    pub event: Event,
}

/// Observer streaming events as JSON Lines to a writer.
///
/// Each retained event becomes one [`TraceRecord`] serialized on its own
/// line. Events below the minimum severity, or outside the category
/// allow-list (when one is set), are skipped before any serialization
/// work happens. Write errors are counted, not propagated — tracing must
/// never abort a simulation.
pub struct JsonlTracer<W: Write + Send> {
    out: Mutex<W>,
    min_severity: Severity,
    categories: Option<Vec<Category>>,
    lines: AtomicU64,
    io_errors: AtomicU64,
}

impl<W: Write + Send> JsonlTracer<W> {
    /// Tracer writing every event to `out`.
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
            min_severity: Severity::Debug,
            categories: None,
            lines: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Keeps only events at or above `min` severity.
    #[must_use]
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }

    /// Keeps only events whose category is in `cats`.
    #[must_use]
    pub fn with_categories(mut self, cats: Vec<Category>) -> Self {
        self.categories = Some(cats);
        self
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Write errors swallowed so far (a healthy run reports 0).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        if self.out.lock().flush().is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Consumes the tracer, returning the writer (flushed).
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner();
        let _ = w.flush();
        w
    }

    fn emit(&self, now: SimTime, event: Event) {
        let severity = event.severity();
        if severity < self.min_severity {
            return;
        }
        let category = event.category();
        if let Some(cats) = &self.categories {
            if !cats.contains(&category) {
                return;
            }
        }
        let record = TraceRecord {
            t_us: now.as_micros(),
            severity,
            category,
            event,
        };
        let Ok(line) = serde_json::to_string(&record) else {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut out = self.out.lock();
        if writeln!(out, "{line}").is_ok() {
            self.lines.fetch_add(1, Ordering::Relaxed);
        } else {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<W: Write + Send> Observer for JsonlTracer<W> {
    fn on_tx(&self, now: SimTime, ev: &TxEvent) {
        self.emit(now, Event::Tx(*ev));
    }

    fn on_rx(&self, now: SimTime, ev: &RxEvent) {
        self.emit(now, Event::Rx(*ev));
    }

    fn on_ack(&self, now: SimTime, ev: &AckEvent) {
        self.emit(now, Event::Ack(*ev));
    }

    fn on_drop(&self, now: SimTime, ev: &DropEvent) {
        self.emit(now, Event::Drop(*ev));
    }

    fn on_timer(&self, now: SimTime, ev: &TimerEvent) {
        self.emit(now, Event::Timer(*ev));
    }

    fn on_parent_change(&self, now: SimTime, ev: &ParentChangeEvent) {
        self.emit(now, Event::ParentChange(*ev));
    }

    fn on_epoch_switch(&self, now: SimTime, ev: &EpochSwitchEvent) {
        self.emit(now, Event::EpochSwitch(*ev));
    }

    fn on_decode(&self, now: SimTime, ev: &DecodeEvent) {
        self.emit(now, Event::Decode(*ev));
    }

    fn on_span(&self, now: SimTime, ev: &SpanEvent) {
        self.emit(now, Event::Span(*ev));
    }
}

// ---------------------------------------------------------------------------
// CountingObserver
// ---------------------------------------------------------------------------

/// Snapshot of per-kind event totals from a [`CountingObserver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Transmission attempts.
    pub tx: u64,
    /// Frame deliveries.
    pub rx: u64,
    /// ACK attempts.
    pub ack: u64,
    /// Drops.
    pub drops: u64,
    /// Timer fires.
    pub timers: u64,
    /// Parent changes.
    pub parent_changes: u64,
    /// Epoch switches.
    pub epoch_switches: u64,
    /// Decode outcomes.
    pub decodes: u64,
    /// Causal lifecycle spans.
    pub spans: u64,
}

/// Observer tallying event totals and per-link activity.
///
/// Useful for quick diagnostics ("which links are noisy?") without the
/// cost of a full JSONL trace.
#[derive(Default)]
pub struct CountingObserver {
    tx: AtomicU64,
    rx: AtomicU64,
    ack: AtomicU64,
    drops: AtomicU64,
    timers: AtomicU64,
    parent_changes: AtomicU64,
    epoch_switches: AtomicU64,
    decodes: AtomicU64,
    spans: AtomicU64,
    /// Events per directed link `(src, dst)` (tx attempts + acks + drops).
    link_events: Mutex<BTreeMap<(u32, u32), u64>>,
}

impl CountingObserver {
    /// New observer with all counts at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current totals.
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            tx: self.tx.load(Ordering::Relaxed),
            rx: self.rx.load(Ordering::Relaxed),
            ack: self.ack.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            timers: self.timers.load(Ordering::Relaxed),
            parent_changes: self.parent_changes.load(Ordering::Relaxed),
            epoch_switches: self.epoch_switches.load(Ordering::Relaxed),
            decodes: self.decodes.load(Ordering::Relaxed),
            spans: self.spans.load(Ordering::Relaxed),
        }
    }

    /// Directed links ranked by event count, busiest first.
    pub fn noisiest_links(&self, top: usize) -> Vec<((u32, u32), u64)> {
        let map = self.link_events.lock();
        let mut v: Vec<_> = map.iter().map(|(&k, &n)| (k, n)).collect();
        // Count descending, link id ascending for deterministic ties.
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }

    fn bump_link(&self, src: u32, dst: u32) {
        *self.link_events.lock().entry((src, dst)).or_insert(0) += 1;
    }
}

impl Observer for CountingObserver {
    fn on_tx(&self, _now: SimTime, ev: &TxEvent) {
        self.tx.fetch_add(1, Ordering::Relaxed);
        if let Some(dst) = ev.dst {
            self.bump_link(ev.src, dst);
        }
    }

    fn on_rx(&self, _now: SimTime, ev: &RxEvent) {
        self.rx.fetch_add(1, Ordering::Relaxed);
        self.bump_link(ev.src, ev.dst);
    }

    fn on_ack(&self, _now: SimTime, ev: &AckEvent) {
        self.ack.fetch_add(1, Ordering::Relaxed);
        self.bump_link(ev.src, ev.dst);
    }

    fn on_drop(&self, _now: SimTime, ev: &DropEvent) {
        self.drops.fetch_add(1, Ordering::Relaxed);
        if let Some(dst) = ev.dst {
            self.bump_link(ev.node, dst);
        }
    }

    fn on_timer(&self, _now: SimTime, _ev: &TimerEvent) {
        self.timers.fetch_add(1, Ordering::Relaxed);
    }

    fn on_parent_change(&self, _now: SimTime, _ev: &ParentChangeEvent) {
        self.parent_changes.fetch_add(1, Ordering::Relaxed);
    }

    fn on_epoch_switch(&self, _now: SimTime, _ev: &EpochSwitchEvent) {
        self.epoch_switches.fetch_add(1, Ordering::Relaxed);
    }

    fn on_decode(&self, _now: SimTime, _ev: &DecodeEvent) {
        self.decodes.fetch_add(1, Ordering::Relaxed);
    }

    fn on_span(&self, _now: SimTime, _ev: &SpanEvent) {
        self.spans.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fans events out to several observers in order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<std::sync::Arc<dyn Observer>>,
}

impl MultiObserver {
    /// Builds a fan-out over `observers`.
    #[must_use]
    pub fn new(observers: Vec<std::sync::Arc<dyn Observer>>) -> Self {
        Self { observers }
    }
}

impl Observer for MultiObserver {
    fn on_tx(&self, now: SimTime, ev: &TxEvent) {
        for o in &self.observers {
            o.on_tx(now, ev);
        }
    }

    fn on_rx(&self, now: SimTime, ev: &RxEvent) {
        for o in &self.observers {
            o.on_rx(now, ev);
        }
    }

    fn on_ack(&self, now: SimTime, ev: &AckEvent) {
        for o in &self.observers {
            o.on_ack(now, ev);
        }
    }

    fn on_drop(&self, now: SimTime, ev: &DropEvent) {
        for o in &self.observers {
            o.on_drop(now, ev);
        }
    }

    fn on_timer(&self, now: SimTime, ev: &TimerEvent) {
        for o in &self.observers {
            o.on_timer(now, ev);
        }
    }

    fn on_parent_change(&self, now: SimTime, ev: &ParentChangeEvent) {
        for o in &self.observers {
            o.on_parent_change(now, ev);
        }
    }

    fn on_epoch_switch(&self, now: SimTime, ev: &EpochSwitchEvent) {
        for o in &self.observers {
            o.on_epoch_switch(now, ev);
        }
    }

    fn on_decode(&self, now: SimTime, ev: &DecodeEvent) {
        for o in &self.observers {
            o.on_decode(now, ev);
        }
    }

    fn on_span(&self, now: SimTime, ev: &SpanEvent) {
        for o in &self.observers {
            o.on_span(now, ev);
        }
    }
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

/// Fixed-size ring of the most recent observer events, for postmortems.
///
/// The recorder keeps the last `capacity` events (every kind, including
/// lifecycle spans with their trace ids) as [`TraceRecord`]s. When a run
/// dies inside the executor's `catch_unwind` cell isolation, the harness
/// calls [`FlightRecorder::dump_postmortem`] to write the tail as JSONL —
/// a header line describing the failure, then one record per line, oldest
/// first. Recording is bounded-memory and lock-scoped per event, so the
/// recorder is safe to leave attached to long runs.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<TraceRecord>>,
    total: AtomicU64,
    output: Option<PathBuf>,
}

/// Default number of events a [`FlightRecorder`] retains.
pub const FLIGHT_RECORDER_DEFAULT_CAPACITY: usize = 256;

impl FlightRecorder {
    /// Recorder retaining the last `capacity` events (no output path;
    /// dump via [`FlightRecorder::write_postmortem`] or `tail`).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            total: AtomicU64::new(0),
            output: None,
        }
    }

    /// Recorder that dumps its postmortem to `path` on failure.
    #[must_use]
    pub fn with_output(capacity: usize, path: impl Into<PathBuf>) -> Self {
        let mut r = Self::new(capacity);
        r.output = Some(path.into());
        r
    }

    /// Maximum number of events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events seen (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> Vec<TraceRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    fn record(&self, now: SimTime, event: Event) {
        let record = TraceRecord {
            t_us: now.as_micros(),
            severity: event.severity(),
            category: event.category(),
            event,
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes the postmortem to `w`: one header line (`{"postmortem":...}`
    /// with the failing cell label, error text, and ring statistics),
    /// then the retained tail as one [`TraceRecord`] JSON object per
    /// line, oldest first. Returns the number of event lines written.
    pub fn write_postmortem<W: Write>(
        &self,
        mut w: W,
        label: &str,
        error: &str,
    ) -> std::io::Result<u64> {
        let tail = self.tail();
        let header = serde::Value::Object(vec![(
            "postmortem".to_string(),
            serde::Value::Object(vec![
                ("label".to_string(), serde::Value::String(label.to_string())),
                ("error".to_string(), serde::Value::String(error.to_string())),
                ("events".to_string(), serde::Value::UInt(tail.len() as u64)),
                (
                    "total_recorded".to_string(),
                    serde::Value::UInt(self.total_recorded()),
                ),
                (
                    "capacity".to_string(),
                    serde::Value::UInt(self.capacity as u64),
                ),
            ]),
        )]);
        let header = serde_json::to_string(&header)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        writeln!(w, "{header}")?;
        let mut n = 0u64;
        for rec in &tail {
            let line = serde_json::to_string(rec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
            n += 1;
        }
        w.flush()?;
        Ok(n)
    }

    /// Dumps the postmortem to the configured output path (if any).
    /// Returns the path written, or `None` when no path was configured
    /// or the write failed (failures are reported on stderr — a crashing
    /// run must not lose its original error to a dump error).
    pub fn dump_postmortem(&self, label: &str, error: &str) -> Option<&Path> {
        let path = self.output.as_deref()?;
        match std::fs::File::create(path)
            .and_then(|f| self.write_postmortem(std::io::BufWriter::new(f), label, error))
        {
            Ok(n) => {
                eprintln!(
                    "flight recorder: wrote {} events to {} for failed cell '{}'",
                    n,
                    path.display(),
                    label
                );
                Some(path)
            }
            Err(e) => {
                eprintln!(
                    "flight recorder: failed to write postmortem to {}: {e}",
                    path.display()
                );
                None
            }
        }
    }
}

impl Observer for FlightRecorder {
    fn on_tx(&self, now: SimTime, ev: &TxEvent) {
        self.record(now, Event::Tx(*ev));
    }

    fn on_rx(&self, now: SimTime, ev: &RxEvent) {
        self.record(now, Event::Rx(*ev));
    }

    fn on_ack(&self, now: SimTime, ev: &AckEvent) {
        self.record(now, Event::Ack(*ev));
    }

    fn on_drop(&self, now: SimTime, ev: &DropEvent) {
        self.record(now, Event::Drop(*ev));
    }

    fn on_timer(&self, now: SimTime, ev: &TimerEvent) {
        self.record(now, Event::Timer(*ev));
    }

    fn on_parent_change(&self, now: SimTime, ev: &ParentChangeEvent) {
        self.record(now, Event::ParentChange(*ev));
    }

    fn on_epoch_switch(&self, now: SimTime, ev: &EpochSwitchEvent) {
        self.record(now, Event::EpochSwitch(*ev));
    }

    fn on_decode(&self, now: SimTime, ev: &DecodeEvent) {
        self.record(now, Event::Decode(*ev));
    }

    fn on_span(&self, now: SimTime, ev: &SpanEvent) {
        self.record(now, Event::Span(*ev));
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Histogram with power-of-two buckets plus count/sum/min/max.
///
/// Bucket `i` counts observations with value ≤ 2^i (last bucket is
/// unbounded), which is plenty of resolution for queue depths, retry
/// counts, and byte sizes while keeping snapshots tiny.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`NaN` until the first observation).
    pub min: f64,
    /// Largest observed value (`NaN` until the first observation).
    pub max: f64,
    /// Cumulative-style bucket counts; bucket `i` holds observations in
    /// `(2^(i-1), 2^i]` (bucket 0: ≤ 1; final bucket: everything larger).
    pub buckets: Vec<u64>,
}

/// Number of histogram buckets (≤1, ≤2, …, ≤2^16, +∞).
const HIST_BUCKETS: usize = 18;

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::NAN,
            max: f64::NAN,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        // `min`/`max` start as NaN; `f64::min`/`max` ignore the NaN side,
        // so the first observation initialises both.
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let mut idx = 0usize;
        let mut bound = 1.0f64;
        while idx + 1 < HIST_BUCKETS && value > bound {
            bound *= 2.0;
            idx += 1;
        }
        self.buckets[idx] += 1;
    }

    /// Mean of observed values (`NaN` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds `other` into `self`, as if every observation recorded in
    /// `other` had been recorded here. Lets per-thread histograms be
    /// aggregated into one without sharing the registry across threads.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket counts:
    /// the upper bound of the bucket containing the `q`-th observation,
    /// clamped to the observed `max` (`NaN` when empty). Coarse by
    /// construction — buckets are powers of two — but monotone in `q`
    /// and cheap enough to report per query class.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let bound = 2.0f64.powi(i as i32);
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// One timestamped snapshot of every metric in the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Simulated time of the snapshot, in microseconds.
    pub t_us: u64,
    /// Counter values, sorted by metric key.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by metric key.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states, sorted by metric key.
    pub histograms: Vec<(String, Histogram)>,
}

/// Named counters, gauges, and histograms with static label sets,
/// sampled into a time series of [`MetricsSnapshot`]s.
///
/// Metric identity is `name` plus a set of `(label, value)` pairs,
/// rendered as `name{k=v,...}` with labels sorted — so snapshot contents
/// are deterministic regardless of registration order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: Vec<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical metric key: `name{k=v,...}` with labels sorted by key.
    #[must_use]
    pub fn key(name: &str, labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return name.to_string();
        }
        let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
        sorted.sort();
        let body: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{name}{{{}}}", body.join(","))
    }

    /// Adds `delta` to a counter (created at zero on first touch).
    pub fn inc_counter(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self.counters.entry(Self::key(name, labels)).or_insert(0) += delta;
    }

    /// Sets a counter to an absolute cumulative value — for sampling
    /// sources that already maintain monotone totals.
    pub fn set_counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counters.insert(Self::key(name, labels), value);
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(Self::key(name, labels), value);
    }

    /// Records `value` into a histogram.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.histograms
            .entry(Self::key(name, labels))
            .or_default()
            .observe(value);
    }

    /// Replaces a histogram with an externally aggregated state — for
    /// sources (like the self-profiler) that maintain their own buckets
    /// and are sampled wholesale into the registry.
    pub fn set_histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: Histogram) {
        self.histograms.insert(Self::key(name, labels), hist);
    }

    /// Current value of a counter, if it exists.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&Self::key(name, labels)).copied()
    }

    /// Current value of a gauge, if it exists.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&Self::key(name, labels)).copied()
    }

    /// Current state of a histogram, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&Self::key(name, labels))
    }

    /// Captures the current state of every metric as a snapshot at sim
    /// time `now` and appends it to the series.
    pub fn snapshot(&mut self, now: SimTime) -> &MetricsSnapshot {
        let snap = MetricsSnapshot {
            t_us: now.as_micros(),
            counters: self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        };
        self.series.push(snap);
        self.series.last().expect("just pushed")
    }

    /// The snapshot series captured so far.
    #[must_use]
    pub fn series(&self) -> &[MetricsSnapshot] {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn counter_semantics() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("tx", &[]), None);
        m.inc_counter("tx", &[], 2);
        m.inc_counter("tx", &[], 3);
        assert_eq!(m.counter("tx", &[]), Some(5));
        // Different label sets are distinct series.
        m.inc_counter("tx", &[("node", "1")], 1);
        assert_eq!(m.counter("tx", &[]), Some(5));
        assert_eq!(m.counter("tx", &[("node", "1")]), Some(1));
    }

    #[test]
    fn gauge_overwrites() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("depth", &[("node", "3")], 4.0);
        m.set_gauge("depth", &[("node", "3")], 1.0);
        assert_eq!(m.gauge("depth", &[("node", "3")]), Some(1.0));
    }

    #[test]
    fn histogram_semantics() {
        let mut m = MetricsRegistry::new();
        for v in [0.5, 1.0, 3.0, 100.0] {
            m.observe("retries", &[], v);
        }
        let h = m.histogram("retries", &[]).unwrap();
        assert_eq!(h.count, 4);
        assert!((h.sum - 104.5).abs() < 1e-9);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.125).abs() < 1e-9);
        // 0.5 and 1.0 land in bucket 0 (≤1), 3.0 in bucket 2 (≤4),
        // 100.0 in bucket 7 (≤128).
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[7], 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let a = MetricsRegistry::key("m", &[("a", "1"), ("b", "2")]);
        let b = MetricsRegistry::key("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
        assert_eq!(a, "m{a=1,b=2}");
    }

    #[test]
    fn snapshots_are_deterministic_and_ordered() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.inc_counter("b_count", &[], 1);
            m.inc_counter("a_count", &[], 2);
            m.set_gauge("z_gauge", &[("node", "2")], 0.5);
            m.set_gauge("z_gauge", &[("node", "10")], 0.25);
            m.observe("h", &[], 3.0);
            m.snapshot(t(1_000_000)).clone()
        };
        let (s1, s2) = (build(), build());
        assert_eq!(s1, s2);
        assert_eq!(s1.t_us, 1_000_000);
        let names: Vec<&str> = s1.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a_count", "b_count"]);
        // Snapshot JSON is byte-stable too.
        assert_eq!(
            serde_json::to_string(&s1).unwrap(),
            serde_json::to_string(&s2).unwrap()
        );
    }

    #[test]
    fn series_accumulates() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("c", &[], 1);
        m.snapshot(t(1));
        m.inc_counter("c", &[], 1);
        m.snapshot(t(2));
        assert_eq!(m.series().len(), 2);
        assert_eq!(m.series()[0].counters[0].1, 1);
        assert_eq!(m.series()[1].counters[0].1, 2);
    }

    #[test]
    fn tracer_filters_and_emits_parseable_lines() {
        let tracer = JsonlTracer::new(Vec::new()).with_min_severity(Severity::Info);
        let now = t(42);
        tracer.on_tx(
            now,
            &TxEvent {
                src: 1,
                dst: Some(0),
                attempt: 1,
                bytes: 40,
                ok: true,
            },
        );
        tracer.on_parent_change(
            now,
            &ParentChangeEvent {
                node: 3,
                old_parent: None,
                new_parent: 0,
                etx: 1.5,
            },
        );
        assert_eq!(tracer.lines_written(), 1, "debug tx must be filtered");
        let buf = tracer.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let rec: TraceRecord = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(rec.t_us, 42);
        assert_eq!(rec.category, Category::Routing);
        match rec.event {
            Event::ParentChange(e) => assert_eq!(e.new_parent, 0),
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn trace_ids_encode_kind_and_identity() {
        let d = data_trace_id(7, 42);
        let b = beacon_trace_id(7, 42);
        let m = model_trace_id(42);
        assert_eq!(TraceKind::of(d), Some(TraceKind::Data));
        assert_eq!(TraceKind::of(b), Some(TraceKind::Beacon));
        assert_eq!(TraceKind::of(m), Some(TraceKind::Model));
        assert_eq!(TraceKind::of(0), None);
        // Distinct objects get distinct ids; same object gets the same id.
        assert_ne!(d, b);
        assert_ne!(d, data_trace_id(7, 43));
        assert_eq!(d, data_trace_id(7, 42));
    }

    #[test]
    fn span_records_round_trip_and_filter() {
        let tracer = JsonlTracer::new(Vec::new()).with_min_severity(Severity::Warn);
        let now = t(5);
        let ok_span = SpanEvent {
            trace_id: data_trace_id(3, 1),
            node: 3,
            phase: SpanPhase::Origin,
        };
        let drop_span = SpanEvent {
            trace_id: data_trace_id(3, 1),
            node: 2,
            phase: SpanPhase::Drop {
                reason: DropReason::LinkExhausted,
            },
        };
        tracer.on_span(now, &ok_span);
        tracer.on_span(now, &drop_span);
        assert_eq!(tracer.lines_written(), 1, "debug span must be filtered");
        let text = String::from_utf8(tracer.into_inner()).unwrap();
        let rec: TraceRecord = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(rec.category, Category::Lifecycle);
        assert_eq!(rec.severity, Severity::Warn);
        assert_eq!(rec.event, Event::Span(drop_span));
    }

    #[test]
    fn flight_recorder_dumps_tail_on_injected_panic() {
        let rec = FlightRecorder::new(4);
        let now = t(1);
        // More events than capacity: only the newest four must survive.
        for seq in 0..8u32 {
            rec.on_span(
                now,
                &SpanEvent {
                    trace_id: data_trace_id(1, seq),
                    node: 1,
                    phase: SpanPhase::Origin,
                },
            );
        }
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for seq in 8..10u32 {
                rec.on_span(
                    now,
                    &SpanEvent {
                        trace_id: data_trace_id(1, seq),
                        node: 1,
                        phase: SpanPhase::Origin,
                    },
                );
            }
            panic!("injected failure");
        }));
        assert!(panicked.is_err());

        let mut buf = Vec::new();
        let n = rec
            .write_postmortem(&mut buf, "unit-cell", "injected failure")
            .unwrap();
        assert_eq!(n, 4);
        assert_eq!(rec.total_recorded(), 10);

        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 events");
        let header: serde::Value = serde_json::from_str(lines[0]).unwrap();
        let pm = serde::find_field(header.as_object().unwrap(), "postmortem")
            .and_then(serde::Value::as_object)
            .unwrap();
        assert_eq!(
            serde::find_field(pm, "error").and_then(serde::Value::as_str),
            Some("injected failure")
        );
        assert_eq!(
            serde::find_field(pm, "events"),
            Some(&serde::Value::UInt(4))
        );
        // The tail is exactly the last four spans, in order, trace ids intact.
        for (i, line) in lines[1..].iter().enumerate() {
            let rec: TraceRecord = serde_json::from_str(line).unwrap();
            match rec.event {
                Event::Span(s) => assert_eq!(s.trace_id, data_trace_id(1, 6 + i as u32)),
                other => panic!("unexpected event in tail: {other:?}"),
            }
        }
    }

    #[test]
    fn counting_observer_ranks_links() {
        let c = CountingObserver::new();
        let now = t(0);
        for _ in 0..3 {
            c.on_tx(
                now,
                &TxEvent {
                    src: 1,
                    dst: Some(0),
                    attempt: 1,
                    bytes: 40,
                    ok: false,
                },
            );
        }
        c.on_rx(
            now,
            &RxEvent {
                src: 2,
                dst: 0,
                attempt: 1,
                bytes: 40,
                broadcast: false,
            },
        );
        let top = c.noisiest_links(5);
        assert_eq!(top[0], ((1, 0), 3));
        assert_eq!(top[1], ((2, 0), 1));
        assert_eq!(c.counts().tx, 3);
        assert_eq!(c.counts().rx, 1);
    }
}
