//! The discrete-event queue.
//!
//! Events fire in `(time, sequence)` order: the sequence number makes
//! simultaneous events fire in insertion order, which keeps runs
//! deterministic regardless of queue internals — every event has a unique
//! key, so the pop order is a property of the keys alone.
//!
//! The structure is a bucketed timing ring (a light-weight calendar
//! queue), chosen over a binary heap because queue traffic dominates the
//! engine's hot path at 1000-node scale: simulation events cluster in the
//! near future (MAC backoffs and airtime are milliseconds out, protocol
//! timers a second or two), so hashing events into fixed-width time
//! buckets makes push and pop O(1) amortized where a heap pays a
//! cache-hostile O(log n) sift each way. Events beyond the ring's window
//! (long Trickle intervals) wait in a small 4-ary overflow heap and
//! surface when their bucket comes into view; when the ring goes idle the
//! cursor jumps straight to the overflow minimum, so sparse phases don't
//! scan empty buckets.
//!
//! Two more hot-path choices: the queue stores 24-byte `(time, seq,
//! slot)` entries and keeps the [`EventKind`] payloads in a slot slab
//! recycled through a free list — moved entries are small copyable keys
//! instead of ~70-byte kinds (a delivered [`Frame`] rides inline in its
//! variant), which keeps bucket appends, sorted inserts, and the
//! open-bucket sort cheap — and buckets, slab, and free list all retain
//! capacity, so steady-state operation allocates nothing.

use crate::packet::{Frame, SendDone, TimerId};
use crate::time::SimTime;
use crate::topology::NodeId;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A protocol timer on `node` expires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Protocol-defined timer id.
        timer: TimerId,
    },
    /// A frame copy arrives at `frame.dst`.
    Deliver {
        /// The delivered frame.
        frame: Frame,
    },
    /// One broadcast's surviving copies arrive at `dsts`, in order, at the
    /// same instant. Equivalent to consecutive [`EventKind::Deliver`]
    /// events (the fan-out pushes its deliveries as one contiguous
    /// sequence block, so no foreign event can interleave), but costs one
    /// queue entry and one payload refcount for the whole fan-out.
    /// `frame.dst` is a placeholder; the dispatcher rewrites it per
    /// receiver. The `dsts` vector is pooled by the engine.
    DeliverBatch {
        /// Template frame (src, payload, timing); `dst` rewritten per hop.
        frame: Frame,
        /// Receivers whose loss draw succeeded, in delivery order.
        dsts: Vec<NodeId>,
    },
    /// A unicast ARQ exchange on `node` completed (or its frame was
    /// dropped); the MAC becomes free afterwards.
    SendDone {
        /// The transmitting node.
        node: NodeId,
        /// Outcome report.
        done: SendDone,
    },
}

/// Queue entry: the event's ordering key plus the slab slot of its kind.
/// Derived `Ord` compares `(at, seq)` first; `slot` is never reached
/// because sequence numbers are unique.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// log2 of the bucket width in microseconds: 1.024 ms buckets, sized so a
/// bucket holds a handful of events under engine workloads.
const BUCKET_SHIFT: u64 = 10;

/// Ring size in buckets; the window covers ≈ 4.2 s of simulated time,
/// comfortably beyond MAC timescales and short protocol timers.
const RING_BUCKETS: u64 = 4096;

/// Protocol timers (routing beacons, traffic periods, ARQ completions)
/// routinely land up to 2 s out. Events inside the ring window are O(1);
/// everything past it spills to the far heap, so shrinking the window
/// below this horizon would silently push the *common case* through the
/// heap and forfeit the calendar ring's whole advantage.
const PROTOCOL_TIMER_HORIZON_US: u64 = 2_000_000;

// Fail fast at compile time if a retuning of `RING_BUCKETS`/`BUCKET_SHIFT`
// shrinks the ≈4.2 s ring window below the 2 s protocol-timer horizon.
const _: () = assert!(
    (RING_BUCKETS << BUCKET_SHIFT) >= PROTOCOL_TIMER_HORIZON_US,
    "calendar-ring window (RING_BUCKETS << BUCKET_SHIFT microseconds) is below the \
     2 s protocol-timer horizon; near-term timers would spill to the far heap \
     on every push. Keep the window >= 2_000_000 us (the shipped tuning gives \
     ~4.2 s) or retune both constants together."
);

/// Overflow-heap fan-out. Four children per node: shallower than a binary
/// heap, and the children of `i` share a cache line.
const ARITY: usize = 4;

/// Virtual bucket index of a timestamp.
fn vbucket(at: SimTime) -> u64 {
    at.as_micros() >> BUCKET_SHIFT
}

/// Time-ordered event queue with FIFO tie-breaking. See the module docs
/// for the bucketed-ring design.
///
/// Generic over the event payload `K` (defaulting to the engine's
/// [`EventKind`]) — the sharded engine reuses the same ring with its own
/// event enum. The queue never inspects payloads; ordering lives entirely
/// in the `(time, sequence)` keys.
pub struct EventQueue<K = EventKind> {
    /// Ring bucket `vb % RING_BUCKETS` holds virtual bucket `vb` while
    /// `cursor <= vb < cursor + RING_BUCKETS`. Only the open bucket (at
    /// `cursor`) is sorted; the rest are unsorted append lists.
    ring: Vec<Vec<Entry>>,
    /// Entries currently in ring buckets and not yet popped.
    ring_len: usize,
    /// Virtual index of the open bucket.
    cursor: u64,
    /// Pop position within the open bucket.
    drain: usize,
    /// 4-ary min-heap of entries at or beyond the ring window; they join
    /// their ring bucket when it opens.
    far: Vec<Entry>,
    /// Event payloads addressed by `Entry::slot`.
    slots: Vec<Option<K>>,
    /// Vacated slots awaiting reuse.
    free: Vec<u32>,
    next_seq: u64,
}

impl<K> Default for EventQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> EventQueue<K> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            cursor: 0,
            drain: 0,
            far: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `at`, tie-broken by insertion order.
    pub fn push(&mut self, at: SimTime, kind: K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_entry(at, seq, kind);
    }

    /// Schedules `kind` to fire at `at` with a caller-supplied ordering
    /// key: simultaneous events fire in ascending `key` order instead of
    /// insertion order.
    ///
    /// Keys must be unique per `(at, key)` pair across the queue's
    /// lifetime — the sharded engine derives them from (origin node,
    /// per-origin sequence), which makes the pop order independent of
    /// *when* an event was pushed (locally during a window, or merged in
    /// at a shard barrier). Do not mix with [`push`](Self::push) on one
    /// queue: plain sequence numbers and external keys share the
    /// tie-break space.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, kind: K) {
        self.push_entry(at, key, kind);
    }

    fn push_entry(&mut self, at: SimTime, seq: u64, kind: K) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(kind);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event queue slot overflow");
                self.slots.push(Some(kind));
                s
            }
        };
        let entry = Entry { at, seq, slot };
        // The engine never schedules into the past (`step` asserts event
        // times are monotone), but the clamp keeps plain-`EventQueue`
        // users correct: a late event joins the open bucket and pops next.
        let vb = vbucket(at).max(self.cursor);
        if vb == self.cursor {
            // Open bucket: keep the undrained tail sorted. The search is
            // restricted past `drain` so an entry pushed with a time at or
            // before already-popped entries still lands in the future.
            let b = &mut self.ring[(vb % RING_BUCKETS) as usize];
            let pos = self.drain + b[self.drain..].partition_point(|e| *e < entry);
            b.insert(pos, entry);
        } else if vb < self.cursor + RING_BUCKETS {
            self.ring[(vb % RING_BUCKETS) as usize].push(entry);
        } else {
            far_push(&mut self.far, entry);
            return;
        }
        self.ring_len += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, K)> {
        self.pop_filtered(None)
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `deadline`. One positioning pass instead of the peek-then-pop two —
    /// this is the engine's per-event path.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, K)> {
        self.pop_filtered(Some(deadline))
    }

    #[inline]
    fn pop_filtered(&mut self, deadline: Option<SimTime>) -> Option<(SimTime, K)> {
        loop {
            let b = &self.ring[(self.cursor % RING_BUCKETS) as usize];
            if let Some(&e) = b.get(self.drain) {
                if deadline.is_some_and(|d| e.at > d) {
                    return None;
                }
                self.drain += 1;
                self.ring_len -= 1;
                let kind = self.slots[e.slot as usize].take().expect("slot occupied");
                self.free.push(e.slot);
                return Some((e.at, kind));
            }
            if self.ring_len == 0 && self.far.is_empty() {
                return None;
            }
            self.advance();
        }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.position() {
            return None;
        }
        Some(self.ring[(self.cursor % RING_BUCKETS) as usize][self.drain].at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advances the cursor until the open bucket holds an unpopped entry.
    /// Returns false when the queue is empty.
    fn position(&mut self) -> bool {
        loop {
            if self.drain < self.ring[(self.cursor % RING_BUCKETS) as usize].len() {
                return true;
            }
            if self.ring_len == 0 && self.far.is_empty() {
                return false;
            }
            self.advance();
        }
    }

    /// Closes the (exhausted) open bucket and opens the next occupied one:
    /// steps forward while the ring holds entries, jumps straight to the
    /// overflow minimum when it doesn't, then folds in overflow entries
    /// belonging to the newly opened bucket and sorts it.
    fn advance(&mut self) {
        self.ring[(self.cursor % RING_BUCKETS) as usize].clear();
        self.drain = 0;
        if self.ring_len > 0 {
            self.cursor += 1;
        } else {
            let min = self.far.first().expect("advance on empty queue");
            debug_assert!(vbucket(min.at) > self.cursor, "overflow entry missed");
            self.cursor = vbucket(min.at);
        }
        let b_idx = (self.cursor % RING_BUCKETS) as usize;
        while let Some(&top) = self.far.first() {
            if vbucket(top.at) != self.cursor {
                break;
            }
            far_pop(&mut self.far);
            self.ring[b_idx].push(top);
            self.ring_len += 1;
        }
        // Unique (at, seq) keys: unstable sort is deterministic here.
        self.ring[b_idx].sort_unstable();
    }
}

/// Pushes onto the 4-ary min-heap.
fn far_push(heap: &mut Vec<Entry>, entry: Entry) {
    heap.push(entry);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / ARITY;
        if heap[i] < heap[parent] {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Removes the 4-ary min-heap's root.
fn far_pop(heap: &mut Vec<Entry>) {
    let last = heap.pop().expect("pop on empty heap");
    if heap.is_empty() {
        return;
    }
    let len = heap.len();
    let mut i = 0;
    loop {
        let first = ARITY * i + 1;
        if first >= len {
            break;
        }
        let mut best = first;
        for c in first + 1..(first + ARITY).min(len) {
            if heap[c] < heap[best] {
                best = c;
            }
        }
        if heap[best] < last {
            heap[i] = heap[best];
            i = best;
        } else {
            break;
        }
    }
    heap[i] = last;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, id: u32) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            timer: TimerId(id),
        }
    }

    fn timer_id(kind: &EventKind) -> u32 {
        match kind {
            EventKind::Timer { timer, .. } => timer.0,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), timer(0, 3));
        q.push(SimTime::from_micros(10), timer(0, 1));
        q.push(SimTime::from_micros(20), timer(0, 2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| timer_id(&k))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for id in 0..50 {
            q.push(t, timer(0, id));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| timer_id(&k))
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), timer(1, 9));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn scattered_times_pop_fully_sorted() {
        // Hash-scattered times with duplicates: pops must come out sorted
        // by time and FIFO within a time, across slot recycling.
        let mut q = EventQueue::new();
        let mut popped: Vec<(u64, u32)> = Vec::new();
        for round in 0..4u32 {
            for i in 0..500u64 {
                let t = (i ^ 0x5DEECE66D).wrapping_mul(25214903917) % 97;
                q.push(SimTime::from_micros(t), timer(0, round * 500 + i as u32));
            }
            // Drain half between rounds so free-list reuse is exercised.
            for _ in 0..250 {
                let (t, k) = q.pop().unwrap();
                popped.push((t.as_micros(), timer_id(&k)));
            }
        }
        while let Some((t, k)) = q.pop() {
            popped.push((t.as_micros(), timer_id(&k)));
        }
        assert_eq!(popped.len(), 2000);
        // Within each drain, times are non-decreasing.
        for w in popped[1000..].windows(2) {
            assert!(w[0].0 <= w[1].0, "final drain out of order: {w:?}");
        }
        // FIFO per timestamp in the final drain: ids at equal times ascend
        // when they came from the same push round.
        let all: Vec<(u64, u32)> = popped[1000..].to_vec();
        for w in all.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 / 500 == w[1].1 / 500 {
                assert!(w[0].1 < w[1].1, "FIFO violated: {w:?}");
            }
        }
    }

    #[test]
    fn keyed_pushes_order_by_key_not_insertion() {
        // Same timestamp, keys pushed out of order: pop order follows the
        // keys — the property the sharded engine's barrier merge relies on.
        let mut q: EventQueue = EventQueue::new();
        let t = SimTime::from_micros(100);
        for (key, id) in [(30u64, 3u32), (10, 1), (20, 2)] {
            q.push_keyed(t, key, timer(0, id));
        }
        q.push_keyed(SimTime::from_micros(50), 99, timer(0, 0));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| timer_id(&k))
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), timer(0, 10));
        q.push(SimTime::from_micros(5), timer(0, 5));
        let (t, k) = q.pop().unwrap();
        assert_eq!(t.as_micros(), 5);
        assert_eq!(timer_id(&k), 5);
        q.push(SimTime::from_micros(7), timer(0, 7));
        q.push(SimTime::from_micros(20), timer(0, 20));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        assert_eq!(order, vec![7, 10, 20]);
    }
}
