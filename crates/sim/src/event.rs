//! The discrete-event queue.
//!
//! A binary heap ordered by `(time, sequence)`: the sequence number makes
//! simultaneous events fire in insertion order, which keeps runs
//! deterministic regardless of heap internals.

use crate::packet::{Frame, SendDone, TimerId};
use crate::time::SimTime;
use crate::topology::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A protocol timer on `node` expires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Protocol-defined timer id.
        timer: TimerId,
    },
    /// A frame copy arrives at `frame.dst`.
    Deliver {
        /// The delivered frame.
        frame: Frame,
    },
    /// A unicast ARQ exchange on `node` completed (or its frame was
    /// dropped); the MAC becomes free afterwards.
    SendDone {
        /// The transmitting node.
        node: NodeId,
        /// Outcome report.
        done: SendDone,
    },
}

struct Entry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Time-ordered event queue with FIFO tie-breaking.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u16, id: u32) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            timer: TimerId(id),
        }
    }

    fn timer_id(kind: &EventKind) -> u32 {
        match kind {
            EventKind::Timer { timer, .. } => timer.0,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), timer(0, 3));
        q.push(SimTime::from_micros(10), timer(0, 1));
        q.push(SimTime::from_micros(20), timer(0, 2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| timer_id(&k))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for id in 0..50 {
            q.push(t, timer(0, id));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| timer_id(&k))
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), timer(1, 9));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), timer(0, 10));
        q.push(SimTime::from_micros(5), timer(0, 5));
        let (t, k) = q.pop().unwrap();
        assert_eq!(t.as_micros(), 5);
        assert_eq!(timer_id(&k), 5);
        q.push(SimTime::from_micros(7), timer(0, 7));
        q.push(SimTime::from_micros(20), timer(0, 20));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        assert_eq!(order, vec![7, 10, 20]);
    }
}
