//! Radio propagation: distance → packet-reception-ratio curve.
//!
//! Physical-layer detail matters to loss tomography only through the PRR of
//! each link, so we model propagation with the empirically observed shape of
//! 802.15.4 links: a high-PRR *connected* region, a wide *transitional*
//! region with intermediate and highly variable PRR, and a disconnected
//! region. A logistic curve in distance plus per-link log-normal-shadowing
//! jitter reproduces this three-region structure (cf. Zuniga & Krishnamachari,
//! "Analyzing the transitional region in low power wireless links").

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the PRR-vs-distance model.
///
/// `Hash` is implemented over the IEEE-754 bit patterns of the float
/// fields so configs can serve as stable content-address keys (the bench
/// run cache); `-0.0`/NaN are never produced by config constructors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Distance (metres) at which the mean PRR crosses 0.5.
    pub d50: f64,
    /// Width parameter of the logistic transition (metres); larger = wider
    /// transitional region.
    pub transition_width: f64,
    /// Standard deviation of the per-link PRR jitter induced by shadowing.
    pub shadowing_sigma: f64,
    /// Links with generated PRR below this are not usable (pruned).
    pub min_prr: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        Self {
            d50: 30.0,
            transition_width: 6.0,
            shadowing_sigma: 0.1,
            min_prr: 0.05,
        }
    }
}

impl std::hash::Hash for RadioModel {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.d50.to_bits());
        state.write_u64(self.transition_width.to_bits());
        state.write_u64(self.shadowing_sigma.to_bits());
        state.write_u64(self.min_prr.to_bits());
    }
}

impl RadioModel {
    /// Mean PRR at distance `d` (no shadowing).
    pub fn mean_prr(&self, d: f64) -> f64 {
        1.0 / (1.0 + ((d - self.d50) / self.transition_width).exp())
    }

    /// Effective PRR jitter at a given base PRR. Shadowing acts on SNR (in
    /// dB); pushed through the steep SNR→PRR curve its effect on PRR is
    /// largest mid-transition and vanishes deep in the connected or
    /// disconnected regions. `4·base·(1-base)` reproduces that shape with
    /// peak sigma `shadowing_sigma`.
    pub fn jitter_sigma(&self, base: f64) -> f64 {
        self.shadowing_sigma * 4.0 * base * (1.0 - base)
    }

    /// Draws the static PRR of one directed link at distance `d`,
    /// including shadowing jitter. Returns `None` when the link falls below
    /// `min_prr` (unusable).
    ///
    /// Jitter is drawn per *direction*, so links come out naturally
    /// asymmetric — a well-documented property of real sensor links.
    pub fn link_prr(&self, d: f64, rng: &mut SmallRng) -> Option<f64> {
        let base = self.mean_prr(d);
        // Box–Muller draw for the shadowing term.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let prr = (base + z * self.jitter_sigma(base)).clamp(0.0, 0.99);
        (prr >= self.min_prr).then_some(prr)
    }

    /// Distance beyond which even a +4σ shadowing draw cannot produce a
    /// usable link; used to prune the candidate pair set cheaply.
    pub fn max_usable_distance(&self) -> f64 {
        // Usability needs base + 4σ·4·base(1-base) >= min_prr; bound the
        // left side by base(1 + 16σ) (valid since base(1-base) <= base) and
        // solve base(1 + 16σ) = min_prr on the logistic curve.
        let target = (self.min_prr / (1.0 + 16.0 * self.shadowing_sigma)).clamp(1e-9, 0.999);
        self.d50 + self.transition_width * ((1.0 - target) / target).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RngHub, StreamKind};

    #[test]
    fn curve_shape() {
        let m = RadioModel::default();
        assert!(m.mean_prr(0.0) > 0.98);
        assert!((m.mean_prr(m.d50) - 0.5).abs() < 1e-12);
        assert!(m.mean_prr(2.0 * m.d50) < 0.02);
        // Monotone decreasing.
        let mut last = 1.1;
        for d in 0..100 {
            let p = m.mean_prr(f64::from(d));
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn link_prr_respects_min() {
        let m = RadioModel::default();
        let mut rng = RngHub::new(5).stream(StreamKind::Topology, 0, 0);
        for _ in 0..1000 {
            if let Some(prr) = m.link_prr(45.0, &mut rng) {
                assert!(prr >= m.min_prr && prr <= 0.99);
            }
        }
    }

    #[test]
    fn close_links_almost_always_usable() {
        let m = RadioModel::default();
        let mut rng = RngHub::new(5).stream(StreamKind::Topology, 1, 1);
        let usable = (0..1000)
            .filter(|_| m.link_prr(5.0, &mut rng).is_some())
            .count();
        assert!(usable > 990, "usable {usable}/1000");
    }

    #[test]
    fn distant_links_almost_never_usable() {
        let m = RadioModel::default();
        let mut rng = RngHub::new(5).stream(StreamKind::Topology, 2, 2);
        let usable = (0..1000)
            .filter(|_| m.link_prr(3.0 * m.d50, &mut rng).is_some())
            .count();
        assert!(usable < 10, "usable {usable}/1000");
    }

    #[test]
    fn max_usable_distance_is_conservative() {
        let m = RadioModel::default();
        let dmax = m.max_usable_distance();
        assert!(dmax > m.d50);
        // Beyond dmax no draw out of many should be usable.
        let mut rng = RngHub::new(17).stream(StreamKind::Topology, 9, 9);
        let usable = (0..5000)
            .filter(|_| m.link_prr(dmax + 0.01, &mut rng).is_some())
            .count();
        assert_eq!(usable, 0, "links usable beyond dmax");
    }

    #[test]
    fn shadowing_makes_links_asymmetric() {
        let m = RadioModel::default();
        let mut rng = RngHub::new(5).stream(StreamKind::Topology, 3, 3);
        let a = m.link_prr(25.0, &mut rng);
        let b = m.link_prr(25.0, &mut rng);
        assert_ne!(a, b, "independent directional draws should differ");
    }
}
