//! The discrete-event simulation engine.
//!
//! The engine owns the topology, one loss process per directed link, a MAC
//! state machine per node, the ground-truth [`Trace`], and one protocol
//! instance per node. Protocols are generic (`Engine<P: Protocol>`): an
//! experiment instantiates every node with its protocol object (which may
//! capture `Arc` handles to shared experiment state, standing in for the
//! sink's control plane).
//!
//! ## ARQ modelling
//!
//! A unicast send runs the full stop-and-wait ARQ exchange *inline* at
//! dequeue time: each attempt's backoff, airtime, loss draw, and ACK draw
//! are sampled immediately and the resulting `Deliver`/`SendDone` events are
//! scheduled at their proper future times. This produces statistics
//! identical to per-attempt event dispatch at a fraction of the event-queue
//! traffic. Every *successful* attempt delivers a frame copy (tagged with
//! its attempt number), so ACK loss yields realistic duplicates that
//! receivers must suppress — the first copy's attempt number is the
//! geometric sample Dophy's estimator consumes.

use crate::event::{EventKind, EventQueue};
use crate::link::{LossModel, LossProcess};
use crate::mac::MacConfig;
use crate::obs::{
    AckEvent, DropEvent, DropReason, Observer, RxEvent, SpanEvent, SpanPhase, TimerEvent, TxEvent,
};
use crate::packet::{Frame, Payload, SendDone, SendToken, TimerId};
use crate::profile::{self, Profiler, Subsystem};
use crate::rng::{RngHub, StreamKind};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::trace::Trace;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Wire size of a link-layer ACK (802.15.4 imm-ack is 11 bytes with
/// preamble).
pub(crate) const ACK_BYTES: usize = 11;

/// Per-node protocol logic driven by engine callbacks.
///
/// All callbacks receive a [`Ctx`] through which the protocol reads its
/// environment and issues commands (sends, timers). Commands take effect
/// after the callback returns.
pub trait Protocol: 'static {
    /// Called once at simulation start (node id order).
    fn on_init(&mut self, ctx: &mut Ctx<'_>);
    /// A timer set via [`Ctx::set_timer`] expired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId);
    /// A frame copy was received.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame);
    /// A unicast send completed (or was dropped).
    fn on_send_done(&mut self, _ctx: &mut Ctx<'_>, _done: &SendDone) {}
}

/// Command buffer entry produced by protocol callbacks.
///
/// Crate-visible so the sharded engine (`crate::shard`) can drain the same
/// buffer with identical semantics.
pub(crate) enum Command {
    Unicast {
        dst: NodeId,
        token: SendToken,
        payload: Payload,
        bytes: usize,
        trace: Option<u64>,
    },
    Broadcast {
        payload: Payload,
        bytes: usize,
        trace: Option<u64>,
    },
    Timer {
        delay: SimDuration,
        timer: TimerId,
    },
    SetRadio {
        on: bool,
    },
}

/// Protocol-side view of the node and its environment.
///
/// Fields are crate-visible so the sharded engine can construct the same
/// callback context; protocols only ever see the public methods.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) topo: &'a Topology,
    pub(crate) mac: &'a MacConfig,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) commands: &'a mut Vec<Command>,
    pub(crate) next_token: &'a mut u64,
    pub(crate) observer: Option<&'a dyn Observer>,
    pub(crate) profiler: Option<&'a Profiler>,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The static topology (candidate neighbor sets).
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Out-neighbors of this node, best base PRR first.
    pub fn neighbors(&self) -> &[NodeId] {
        self.topo.neighbors(self.node)
    }

    /// MAC configuration (retry budget, timing).
    pub fn mac(&self) -> &MacConfig {
        self.mac
    }

    /// This node's protocol random stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The engine's observer, if one is installed — lets protocol layers
    /// emit their own structured events (parent changes, epoch switches,
    /// decode outcomes) alongside the engine's MAC-level events.
    pub fn observer(&self) -> Option<&dyn Observer> {
        self.observer
    }

    /// Queues a unicast frame to `dst`. `wire_bytes` must be the full
    /// on-air frame size (used for airtime and overhead accounting).
    /// Returns the token echoed in the matching `SendDone`.
    pub fn send_unicast(&mut self, dst: NodeId, payload: Payload, wire_bytes: usize) -> SendToken {
        self.unicast(dst, payload, wire_bytes, None)
    }

    /// Like [`Ctx::send_unicast`], but tags the frame with a causal
    /// lifecycle trace id: the engine emits [`SpanPhase::Tx`]/
    /// [`SpanPhase::Deliver`]/[`SpanPhase::Drop`] spans for it when an
    /// observer is installed. Trace ids must be deterministic (derived
    /// from protocol state, never RNG) so tracing cannot perturb a run.
    pub fn send_unicast_traced(
        &mut self,
        dst: NodeId,
        payload: Payload,
        wire_bytes: usize,
        trace_id: u64,
    ) -> SendToken {
        self.unicast(dst, payload, wire_bytes, Some(trace_id))
    }

    fn unicast(
        &mut self,
        dst: NodeId,
        payload: Payload,
        bytes: usize,
        trace: Option<u64>,
    ) -> SendToken {
        let token = SendToken(*self.next_token);
        *self.next_token += 1;
        self.commands.push(Command::Unicast {
            dst,
            token,
            payload,
            bytes,
            trace,
        });
        token
    }

    /// Queues a link-layer broadcast (single attempt, no ACK).
    pub fn send_broadcast(&mut self, payload: Payload, wire_bytes: usize) {
        self.commands.push(Command::Broadcast {
            payload,
            bytes: wire_bytes,
            trace: None,
        });
    }

    /// Like [`Ctx::send_broadcast`], but tags the frame with a causal
    /// lifecycle trace id (see [`Ctx::send_unicast_traced`]).
    pub fn send_broadcast_traced(&mut self, payload: Payload, wire_bytes: usize, trace_id: u64) {
        self.commands.push(Command::Broadcast {
            payload,
            bytes: wire_bytes,
            trace: Some(trace_id),
        });
    }

    /// Schedules `timer` to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: TimerId) {
        self.commands.push(Command::Timer { delay, timer });
    }

    /// Turns this node's radio on or off (takes effect after the callback,
    /// like all commands). While off, the node receives nothing — frames
    /// addressed to it go unanswered (no ACKs) — and anything it tries to
    /// send is dropped at the MAC. Models node failure/sleep.
    pub fn set_radio(&mut self, on: bool) {
        self.commands.push(Command::SetRadio { on });
    }
}

impl<'a> Ctx<'a> {
    /// The engine's self-profiler, if one is installed — lets protocol
    /// layers bracket their own hot regions (decode, estimator update)
    /// with [`crate::profile::start`]/[`crate::profile::stop`]. The
    /// returned borrow outlives the callback's `&mut Ctx` uses.
    pub fn profiler(&self) -> Option<&'a Profiler> {
        self.profiler
    }
}

pub(crate) struct QueuedTx {
    /// `None` = broadcast.
    pub(crate) dst: Option<NodeId>,
    pub(crate) token: SendToken,
    pub(crate) payload: Payload,
    pub(crate) bytes: usize,
    pub(crate) trace: Option<u64>,
}

pub(crate) struct MacState {
    pub(crate) busy: bool,
    pub(crate) queue: VecDeque<QueuedTx>,
}

/// The simulation engine. See the module docs for the execution model.
pub struct Engine<P: Protocol> {
    topo: Arc<Topology>,
    mac_cfg: MacConfig,
    time: SimTime,
    queue: EventQueue,
    protocols: Vec<Option<P>>,
    proto_rngs: Vec<SmallRng>,
    backoff_rngs: Vec<SmallRng>,
    /// RNG hub the engine was built from; per-link streams are derived
    /// from it lazily (see `link_rngs`).
    hub: RngHub,
    /// Data-direction loss process per topology link id.
    link_procs: Vec<LossProcess>,
    /// Per-link loss stream, created on first draw. Streams are seeded
    /// independently per `(kind, src, dst)`, so deferring creation cannot
    /// change any draw — it only skips seeding work for links that never
    /// carry traffic (at 1000 nodes eager init cost ~2 ms per engine,
    /// which dominated short sweep cells).
    link_rngs: Vec<Option<SmallRng>>,
    /// ACK-direction loss process per topology link id (independent state
    /// built from the reverse link's model; see DESIGN.md substitutions).
    ack_procs: Vec<Option<LossProcess>>,
    /// Per-link ACK stream, lazily created like `link_rngs`.
    ack_rngs: Vec<Option<SmallRng>>,
    macs: Vec<MacState>,
    /// Per-node radio power state (off = failed/sleeping node).
    radio_on: Vec<bool>,
    trace: Trace,
    next_token: u64,
    cmd_buf: Vec<Command>,
    /// Pool of receiver lists recycled through [`EventKind::DeliverBatch`]
    /// events, so steady-state broadcasting allocates nothing.
    dst_pool: Vec<Vec<NodeId>>,
    started: bool,
    /// Optional structured-event observer; `None` costs one untaken
    /// branch per hook site.
    observer: Option<Arc<dyn Observer>>,
    /// Optional hot-path self-profiler; `None` costs one untaken branch
    /// per instrumented scope (see [`crate::profile`]).
    profiler: Option<Arc<Profiler>>,
    /// Events executed by [`Engine::step`] since construction.
    events_processed: u64,
}

impl<P: Protocol> Engine<P> {
    /// Assembles an engine.
    ///
    /// `loss_models[i]` is the loss process for topology link `i` (use
    /// [`crate::config::LinkDynamics::build_models`] to derive them from the
    /// generated base PRRs). `protocols[n]` is node `n`'s protocol.
    ///
    /// # Panics
    /// Panics if the vector lengths do not match the topology.
    pub fn new(
        topo: Arc<Topology>,
        loss_models: &[LossModel],
        mac_cfg: MacConfig,
        hub: RngHub,
        protocols: Vec<P>,
    ) -> Self {
        let n = topo.node_count();
        assert_eq!(protocols.len(), n, "one protocol per node");
        assert_eq!(
            loss_models.len(),
            topo.links().len(),
            "one loss model per link"
        );
        let link_procs: Vec<LossProcess> = loss_models.iter().map(LossModel::build).collect();
        // Per-link RNG streams are created lazily at first draw (each
        // stream is seeded independently from `(kind, src, dst)`, so
        // deferral is draw-order neutral — see the replay-identity test).
        let link_rngs: Vec<Option<SmallRng>> = vec![None; topo.links().len()];
        // ACK process: reverse link's model with independent state.
        let ack_procs: Vec<Option<LossProcess>> = topo
            .links()
            .iter()
            .map(|l| {
                topo.link_id(l.dst, l.src)
                    .map(|rid| loss_models[rid].build())
            })
            .collect();
        let ack_rngs: Vec<Option<SmallRng>> = vec![None; topo.links().len()];
        let proto_rngs = (0..n)
            .map(|i| hub.stream(StreamKind::Protocol, i as u64, 0))
            .collect();
        let backoff_rngs = (0..n)
            .map(|i| hub.stream(StreamKind::Backoff, i as u64, 0))
            .collect();
        let trace = Trace::for_topology(&topo);
        Self {
            topo,
            mac_cfg,
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            protocols: protocols.into_iter().map(Some).collect(),
            proto_rngs,
            backoff_rngs,
            hub,
            link_procs,
            link_rngs,
            ack_procs,
            ack_rngs,
            macs: (0..n)
                .map(|_| MacState {
                    busy: false,
                    queue: VecDeque::new(),
                })
                .collect(),
            radio_on: vec![true; n],
            trace,
            next_token: 0,
            cmd_buf: Vec::new(),
            dst_pool: Vec::new(),
            started: false,
            observer: None,
            profiler: None,
            events_processed: 0,
        }
    }

    /// Forces creation of every per-link RNG stream up front, restoring
    /// the eager-init behavior. Lazy and prewarmed engines must produce
    /// byte-identical runs (streams are independently seeded); this
    /// exists so tests and benchmarks can prove/measure exactly that.
    pub fn prewarm_rng_streams(&mut self) {
        let hub = self.hub;
        for link_id in 0..self.link_procs.len() {
            let (src, dst) = {
                let l = &self.topo.links()[link_id];
                (l.src, l.dst)
            };
            self.link_rngs[link_id].get_or_insert_with(|| {
                hub.stream(StreamKind::LinkLoss, u64::from(src.0), u64::from(dst.0))
            });
            self.ack_rngs[link_id].get_or_insert_with(|| {
                hub.stream(StreamKind::AckLoss, u64::from(src.0), u64::from(dst.0))
            });
        }
    }

    /// Installs a structured-event observer. Observers only *read* event
    /// payloads — they cannot touch simulation state or RNG streams, so a
    /// run behaves bit-identically with or without one.
    pub fn set_observer(&mut self, observer: Arc<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// Installs a hot-path self-profiler. Profiling measures wall time
    /// only — it never touches simulation state or RNG streams, so a
    /// profiled run is bit-identical to a bare run of the same seed.
    pub fn set_profiler(&mut self, profiler: Arc<Profiler>) {
        self.profiler = Some(profiler);
    }

    /// The installed self-profiler, if any (for metric export).
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_deref()
    }

    /// Emits a lifecycle span when the frame being handled is traced.
    pub(crate) fn emit_span(
        obs: &dyn Observer,
        at: SimTime,
        trace: Option<u64>,
        node: u32,
        phase: SpanPhase,
    ) {
        if let Some(trace_id) = trace {
            obs.on_span(
                at,
                &SpanEvent {
                    trace_id,
                    node,
                    phase,
                },
            );
        }
    }

    /// Number of events executed by [`Engine::step`] so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current MAC transmit-queue depth of node `n`.
    pub fn queue_depth(&self, n: NodeId) -> usize {
        self.macs[n.index()].queue.len()
    }

    fn obs(&self) -> Option<&dyn Observer> {
        self.observer.as_deref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Ground-truth trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (experiments may reset windows).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Immutable access to node `n`'s protocol.
    ///
    /// # Panics
    /// Panics if called re-entrantly from inside a protocol callback.
    pub fn protocol(&self, n: NodeId) -> &P {
        self.protocols[n.index()]
            .as_ref()
            .expect("protocol checked out")
    }

    /// Mutable access to node `n`'s protocol (between steps).
    pub fn protocol_mut(&mut self, n: NodeId) -> &mut P {
        self.protocols[n.index()]
            .as_mut()
            .expect("protocol checked out")
    }

    /// Consumes the engine, returning all protocol instances.
    pub fn into_protocols(self) -> Vec<P> {
        self.protocols
            .into_iter()
            .map(|p| p.expect("protocol checked out"))
            .collect()
    }

    /// Instantaneous true PRR of topology link `link_id` (advances drift
    /// state deterministically off the link's dynamics stream — callers
    /// should treat this as a read at the current time).
    pub fn true_prr_now(&mut self, link_id: usize) -> f64 {
        let now = self.time;
        let hub = self.hub;
        let (src, dst) = {
            let l = &self.topo.links()[link_id];
            (l.src, l.dst)
        };
        let rng = self.link_rngs[link_id].get_or_insert_with(|| {
            hub.stream(StreamKind::LinkLoss, u64::from(src.0), u64::from(dst.0))
        });
        self.link_procs[link_id].prr_at(now, rng)
    }

    /// Stationary/mean PRR of link `link_id`'s loss model.
    pub fn stationary_prr(&self, link_id: usize) -> f64 {
        self.link_procs[link_id].model().stationary_prr()
    }

    /// Calls `on_init` for every node (id order). Must be called exactly
    /// once, before stepping.
    ///
    /// # Panics
    /// Panics on a second call.
    pub fn start(&mut self) {
        assert!(!self.started, "engine already started");
        self.started = true;
        for i in 0..self.topo.node_count() {
            self.with_protocol(NodeId::from_index(i), |p, ctx| p.on_init(ctx));
        }
    }

    /// Executes the next event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let t0 = profile::start(self.profiler.as_deref());
        let popped = self.queue.pop();
        profile::stop(self.profiler.as_deref(), Subsystem::QueuePop, t0);
        let Some((t, kind)) = popped else {
            return false;
        };
        self.dispatch(t, kind);
        true
    }

    /// Executes one already-popped event.
    fn dispatch(&mut self, t: SimTime, kind: EventKind) {
        debug_assert!(t >= self.time, "event from the past");
        self.time = t;
        self.events_processed += 1;
        match kind {
            EventKind::Timer { node, timer } => {
                if let Some(obs) = self.obs() {
                    obs.on_timer(
                        t,
                        &TimerEvent {
                            node: node.0,
                            timer: timer.0,
                        },
                    );
                }
                self.with_protocol(node, |p, ctx| p.on_timer(ctx, timer));
            }
            EventKind::Deliver { frame } => {
                let dst = frame.dst;
                // A copy already in flight when the radio went down is lost.
                if self.radio_on[dst.index()] {
                    if let Some(obs) = self.obs() {
                        obs.on_rx(
                            t,
                            &RxEvent {
                                src: frame.src.0,
                                dst: dst.0,
                                attempt: frame.attempt,
                                bytes: frame.wire_bytes as u32,
                                broadcast: frame.is_broadcast,
                            },
                        );
                        Self::emit_span(
                            obs,
                            t,
                            frame.trace_id,
                            dst.0,
                            SpanPhase::Deliver {
                                src: frame.src.0,
                                attempt: frame.attempt,
                            },
                        );
                    }
                    self.with_protocol(dst, |p, ctx| p.on_frame(ctx, &frame));
                } else if let Some(obs) = self.obs() {
                    obs.on_drop(
                        t,
                        &DropEvent {
                            node: dst.0,
                            dst: None,
                            reason: DropReason::ReceiverOff,
                        },
                    );
                    Self::emit_span(
                        obs,
                        t,
                        frame.trace_id,
                        dst.0,
                        SpanPhase::Drop {
                            reason: DropReason::ReceiverOff,
                        },
                    );
                }
            }
            EventKind::DeliverBatch {
                mut frame,
                mut dsts,
            } => {
                // Same per-receiver semantics as `Deliver`, replayed over
                // the batch in fan-out order. Throughput accounting stays
                // comparable with the unbatched engine: one unit per copy
                // delivered, not per queue event (the prologue counted 1).
                self.events_processed += dsts.len() as u64 - 1;
                for &dst in &dsts {
                    // A copy already in flight when the radio went down is
                    // lost.
                    if self.radio_on[dst.index()] {
                        if let Some(obs) = self.obs() {
                            obs.on_rx(
                                t,
                                &RxEvent {
                                    src: frame.src.0,
                                    dst: dst.0,
                                    attempt: frame.attempt,
                                    bytes: frame.wire_bytes as u32,
                                    broadcast: frame.is_broadcast,
                                },
                            );
                            Self::emit_span(
                                obs,
                                t,
                                frame.trace_id,
                                dst.0,
                                SpanPhase::Deliver {
                                    src: frame.src.0,
                                    attempt: frame.attempt,
                                },
                            );
                        }
                        frame.dst = dst;
                        self.with_protocol(dst, |p, ctx| p.on_frame(ctx, &frame));
                    } else if let Some(obs) = self.obs() {
                        obs.on_drop(
                            t,
                            &DropEvent {
                                node: dst.0,
                                dst: None,
                                reason: DropReason::ReceiverOff,
                            },
                        );
                        Self::emit_span(
                            obs,
                            t,
                            frame.trace_id,
                            dst.0,
                            SpanPhase::Drop {
                                reason: DropReason::ReceiverOff,
                            },
                        );
                    }
                }
                dsts.clear();
                self.dst_pool.push(dsts);
            }
            EventKind::SendDone { node, done } => {
                self.macs[node.index()].busy = false;
                self.with_protocol(node, |p, ctx| p.on_send_done(ctx, &done));
                self.try_dequeue(node);
            }
        }
    }

    /// Runs until simulated time `deadline` (events at exactly `deadline`
    /// are executed). Sets the clock to `deadline` on return.
    pub fn run_until(&mut self, deadline: SimTime) {
        assert!(self.started, "call start() first");
        loop {
            let t0 = profile::start(self.profiler.as_deref());
            let popped = self.queue.pop_at_or_before(deadline);
            profile::stop(self.profiler.as_deref(), Subsystem::QueuePop, t0);
            let Some((t, kind)) = popped else {
                break;
            };
            self.dispatch(t, kind);
        }
        self.time = deadline;
    }

    /// Runs for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.time + span;
        self.run_until(deadline);
    }

    /// Checks a protocol out, builds a `Ctx`, runs `f`, then drains the
    /// command buffer.
    fn with_protocol<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_>),
    {
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        {
            // Split borrow: the protocol slot and the Ctx fields are
            // disjoint, so the protocol is dispatched in place instead of
            // being moved out and back (protocol state can be large).
            let proto = self.protocols[node.index()]
                .as_mut()
                .expect("protocol checked out");
            let mut ctx = Ctx {
                now: self.time,
                node,
                topo: &self.topo,
                mac: &self.mac_cfg,
                rng: &mut self.proto_rngs[node.index()],
                commands: &mut cmds,
                next_token: &mut self.next_token,
                observer: self.observer.as_deref(),
                profiler: self.profiler.as_deref(),
            };
            f(proto, &mut ctx);
        }
        self.drain_commands(node, &mut cmds);
        cmds.clear();
        self.cmd_buf = cmds;
    }

    fn drain_commands(&mut self, node: NodeId, cmds: &mut Vec<Command>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Timer { delay, timer } => {
                    self.queue
                        .push(self.time + delay, EventKind::Timer { node, timer });
                }
                Command::Unicast {
                    dst,
                    token,
                    payload,
                    bytes,
                    trace,
                } => {
                    self.enqueue_tx(
                        node,
                        QueuedTx {
                            dst: Some(dst),
                            token,
                            payload,
                            bytes,
                            trace,
                        },
                    );
                }
                Command::Broadcast {
                    payload,
                    bytes,
                    trace,
                } => {
                    self.enqueue_tx(
                        node,
                        QueuedTx {
                            dst: None,
                            token: SendToken(u64::MAX),
                            payload,
                            bytes,
                            trace,
                        },
                    );
                }
                Command::SetRadio { on } => {
                    self.radio_on[node.index()] = on;
                }
            }
        }
    }

    /// Whether node `n`'s radio is currently on.
    pub fn radio_on(&self, n: NodeId) -> bool {
        self.radio_on[n.index()]
    }

    fn enqueue_tx(&mut self, node: NodeId, tx: QueuedTx) {
        if !self.radio_on[node.index()] {
            // Radio off: the frame silently dies in the driver.
            self.trace.queue_drops += 1;
            if let Some(obs) = self.obs() {
                obs.on_drop(
                    self.time,
                    &DropEvent {
                        node: node.0,
                        dst: tx.dst.map(|d| d.0),
                        reason: DropReason::RadioOff,
                    },
                );
                Self::emit_span(
                    obs,
                    self.time,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::RadioOff,
                    },
                );
            }
            if let Some(dst) = tx.dst {
                self.queue.push(
                    self.time,
                    EventKind::SendDone {
                        node,
                        done: SendDone {
                            token: tx.token,
                            dst,
                            acked: false,
                            attempts: 0,
                        },
                    },
                );
            }
            return;
        }
        if self.macs[node.index()].queue.len() >= self.mac_cfg.queue_capacity {
            self.trace.queue_drops += 1;
            if let Some(obs) = self.obs() {
                obs.on_drop(
                    self.time,
                    &DropEvent {
                        node: node.0,
                        dst: tx.dst.map(|d| d.0),
                        reason: DropReason::QueueFull,
                    },
                );
                Self::emit_span(
                    obs,
                    self.time,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::QueueFull,
                    },
                );
            }
            // Report the drop (unicast only; broadcasts are fire-and-forget).
            if let Some(dst) = tx.dst {
                self.queue.push(
                    self.time,
                    EventKind::SendDone {
                        node,
                        done: SendDone {
                            token: tx.token,
                            dst,
                            acked: false,
                            attempts: 0,
                        },
                    },
                );
            }
            return;
        }
        self.macs[node.index()].queue.push_back(tx);
        self.try_dequeue(node);
    }

    fn try_dequeue(&mut self, node: NodeId) {
        let mac = &mut self.macs[node.index()];
        if mac.busy {
            return;
        }
        let Some(tx) = mac.queue.pop_front() else {
            return;
        };
        mac.busy = true;
        match tx.dst {
            None => {
                let t0 = profile::start(self.profiler.as_deref());
                self.transmit_broadcast(node, tx);
                profile::stop(self.profiler.as_deref(), Subsystem::BroadcastFanout, t0);
            }
            Some(dst) => {
                let t0 = profile::start(self.profiler.as_deref());
                self.transmit_unicast(node, dst, tx);
                profile::stop(self.profiler.as_deref(), Subsystem::UnicastArq, t0);
            }
        }
    }

    fn backoff(&mut self, node: NodeId) -> SimDuration {
        let base = self.mac_cfg.backoff_us;
        let jitter = self.backoff_rngs[node.index()].gen_range(base / 2..base + base / 2 + 1);
        SimDuration::from_micros(jitter)
    }

    fn transmit_broadcast(&mut self, node: NodeId, tx: QueuedTx) {
        let t_done = self.time + self.backoff(node) + self.mac_cfg.tx_time(tx.bytes);
        self.trace.broadcast_tx += 1;
        self.trace.bytes_on_air += tx.bytes as u64;
        if let Some(obs) = self.obs() {
            obs.on_tx(
                t_done,
                &TxEvent {
                    src: node.0,
                    dst: None,
                    attempt: 1,
                    bytes: tx.bytes as u32,
                    ok: true,
                },
            );
            Self::emit_span(
                obs,
                t_done,
                tx.trace,
                node.0,
                SpanPhase::Tx {
                    dst: None,
                    attempt: 1,
                    ok: true,
                },
            );
        }
        // Cloning the Arc (a refcount bump) detaches the adjacency borrow
        // from `self`, so the fan-out iterates the topology's contiguous
        // (neighbor, link id) pairs directly — no per-beacon Vec clone.
        let topo = Arc::clone(&self.topo);
        let hub = self.hub;
        let mut dsts = self.dst_pool.pop().unwrap_or_default();
        for (i, (v, link_id)) in topo.neighbor_links(node).enumerate() {
            // Delivery order is part of the determinism contract: pairs
            // must mirror `neighbors()` (descending base PRR) and agree
            // with the dense dst→link index.
            debug_assert_eq!(topo.neighbors(node)[i], v);
            debug_assert_eq!(topo.link_id(node, v), Some(link_id));
            if !self.radio_on[v.index()] {
                continue; // receiver powered down: nothing samples the channel
            }
            let rng = self.link_rngs[link_id].get_or_insert_with(|| {
                hub.stream(StreamKind::LinkLoss, u64::from(node.0), u64::from(v.0))
            });
            let ok = self.link_procs[link_id].sample(t_done, rng);
            self.trace.record_broadcast_attempt(link_id, ok);
            if ok {
                self.trace.broadcast_rx += 1;
                dsts.push(v);
            }
        }
        // All surviving copies arrive at `t_done`: one batch event stands
        // in for the per-receiver `Deliver`s (same callback order — see
        // `EventKind::DeliverBatch`) at a fraction of the queue traffic.
        if dsts.is_empty() {
            self.dst_pool.push(dsts);
        } else {
            self.queue.push(
                t_done,
                EventKind::DeliverBatch {
                    frame: Frame {
                        src: node,
                        dst: node, // placeholder; rewritten per receiver
                        is_broadcast: true,
                        attempt: 1,
                        wire_bytes: tx.bytes,
                        rx_time: t_done,
                        trace_id: tx.trace,
                        payload: Arc::clone(&tx.payload),
                    },
                    dsts,
                },
            );
        }
        // Broadcast completion frees the MAC; protocols are not notified
        // per-broadcast (fire-and-forget), so reuse SendDone with the
        // sentinel token for the MAC bookkeeping only.
        self.queue.push(
            t_done,
            EventKind::SendDone {
                node,
                done: SendDone {
                    token: tx.token,
                    dst: node,
                    acked: true,
                    attempts: 1,
                },
            },
        );
    }

    fn transmit_unicast(&mut self, node: NodeId, dst: NodeId, tx: QueuedTx) {
        let Some(link_id) = self.topo.link_id(node, dst) else {
            // No usable link: the MAC burns one attempt cycle and gives up
            // (models sending into the void).
            let t_done = self.time + self.backoff(node) + self.mac_cfg.attempt_floor(tx.bytes);
            self.trace.unicast_started += 1;
            self.trace.unicast_failed += 1;
            if let Some(obs) = self.obs() {
                obs.on_drop(
                    t_done,
                    &DropEvent {
                        node: node.0,
                        dst: Some(dst.0),
                        reason: DropReason::NoLink,
                    },
                );
                Self::emit_span(
                    obs,
                    t_done,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::NoLink,
                    },
                );
            }
            self.queue.push(
                t_done,
                EventKind::SendDone {
                    node,
                    done: SendDone {
                        token: tx.token,
                        dst,
                        acked: false,
                        attempts: 1,
                    },
                },
            );
            return;
        };

        // A powered-down receiver answers nothing: the sender burns its
        // whole budget. The channel itself is not sampled (no PRR truth
        // pollution), but airtime is still spent.
        if !self.radio_on[dst.index()] {
            let mut t = self.time;
            for _ in 0..self.mac_cfg.max_attempts {
                t = t + self.backoff(node) + self.mac_cfg.attempt_floor(tx.bytes);
                self.trace.bytes_on_air += tx.bytes as u64;
            }
            self.trace.unicast_started += 1;
            self.trace.unicast_failed += 1;
            if let Some(obs) = self.obs() {
                obs.on_drop(
                    t,
                    &DropEvent {
                        node: node.0,
                        dst: Some(dst.0),
                        reason: DropReason::ReceiverOff,
                    },
                );
                Self::emit_span(
                    obs,
                    t,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::ReceiverOff,
                    },
                );
            }
            self.queue.push(
                t,
                EventKind::SendDone {
                    node,
                    done: SendDone {
                        token: tx.token,
                        dst,
                        acked: false,
                        attempts: self.mac_cfg.max_attempts,
                    },
                },
            );
            return;
        }

        self.trace.unicast_started += 1;
        let hub = self.hub;
        let mut t = self.time;
        let mut acked_at_attempt: Option<u16> = None;
        for attempt in 1..=self.mac_cfg.max_attempts {
            t = t + self.backoff(node) + self.mac_cfg.tx_time(tx.bytes);
            let rng = self.link_rngs[link_id].get_or_insert_with(|| {
                hub.stream(StreamKind::LinkLoss, u64::from(node.0), u64::from(dst.0))
            });
            let data_ok = self.link_procs[link_id].sample(t, rng);
            self.trace.record_data_attempt(link_id, data_ok, tx.bytes);
            if let Some(obs) = self.obs() {
                obs.on_tx(
                    t,
                    &TxEvent {
                        src: node.0,
                        dst: Some(dst.0),
                        attempt,
                        bytes: tx.bytes as u32,
                        ok: data_ok,
                    },
                );
                Self::emit_span(
                    obs,
                    t,
                    tx.trace,
                    node.0,
                    SpanPhase::Tx {
                        dst: Some(dst.0),
                        attempt,
                        ok: data_ok,
                    },
                );
            }
            if data_ok {
                // Deliver this copy (duplicates possible across attempts).
                self.queue.push(
                    t,
                    EventKind::Deliver {
                        frame: Frame {
                            src: node,
                            dst,
                            is_broadcast: false,
                            attempt,
                            wire_bytes: tx.bytes,
                            rx_time: t,
                            trace_id: tx.trace,
                            payload: Arc::clone(&tx.payload),
                        },
                    },
                );
                let t_ack = t + SimDuration::from_micros(self.mac_cfg.ack_us);
                let ack_ok = match self.ack_procs[link_id].as_mut() {
                    Some(proc_) => {
                        let ack_rng = self.ack_rngs[link_id].get_or_insert_with(|| {
                            hub.stream(StreamKind::AckLoss, u64::from(node.0), u64::from(dst.0))
                        });
                        proc_.sample(t_ack, ack_rng)
                    }
                    None => false, // asymmetric link: ACK direction unusable
                };
                self.trace.record_ack_attempt(link_id, ack_ok, ACK_BYTES);
                if let Some(obs) = self.obs() {
                    obs.on_ack(
                        t_ack,
                        &AckEvent {
                            src: node.0,
                            dst: dst.0,
                            attempt,
                            ok: ack_ok,
                        },
                    );
                }
                t = t_ack;
                if ack_ok {
                    acked_at_attempt = Some(attempt);
                    break;
                }
            } else {
                // Sender times out waiting for the ACK.
                t += SimDuration::from_micros(self.mac_cfg.ack_us);
            }
        }
        let done = match acked_at_attempt {
            Some(attempts) => {
                self.trace.unicast_acked += 1;
                self.trace.attempts_hist.record(usize::from(attempts));
                SendDone {
                    token: tx.token,
                    dst,
                    acked: true,
                    attempts,
                }
            }
            None => {
                self.trace.unicast_failed += 1;
                if let Some(obs) = self.obs() {
                    obs.on_drop(
                        t,
                        &DropEvent {
                            node: node.0,
                            dst: Some(dst.0),
                            reason: DropReason::LinkExhausted,
                        },
                    );
                    Self::emit_span(
                        obs,
                        t,
                        tx.trace,
                        node.0,
                        SpanPhase::Drop {
                            reason: DropReason::LinkExhausted,
                        },
                    );
                }
                SendDone {
                    token: tx.token,
                    dst,
                    acked: false,
                    attempts: self.mac_cfg.max_attempts,
                }
            }
        };
        self.queue.push(t, EventKind::SendDone { node, done });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LossModel;
    use crate::radio::RadioModel;
    use crate::topology::Placement;

    /// Minimal protocol: node 1 sends `count` frames to node 0; node 0
    /// counts first-copy receptions and attempt numbers.
    #[derive(Default)]
    struct Pinger {
        to_send: u32,
        period: SimDuration,
        received: Vec<u16>,  // attempt numbers of received copies
        dedup_received: u32, // unique frames (by seqno)
        seen: std::collections::HashSet<u32>,
        acked: u32,
        failed: u32,
        attempts_reported: Vec<u16>,
    }

    #[derive(Debug)]
    struct Ping {
        seq: u32,
    }

    impl Protocol for Pinger {
        fn on_init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node_id() == NodeId(1) && self.to_send > 0 {
                ctx.set_timer(self.period, TimerId(0));
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId) {
            if self.to_send == 0 {
                return;
            }
            self.to_send -= 1;
            let seq = self.to_send;
            ctx.send_unicast(NodeId(0), Arc::new(Ping { seq }), 40);
            if self.to_send > 0 {
                ctx.set_timer(self.period, TimerId(0));
            }
        }

        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, frame: &Frame) {
            let ping = frame.payload_as::<Ping>().expect("ping payload");
            self.received.push(frame.attempt);
            if self.seen.insert(ping.seq) {
                self.dedup_received += 1;
            }
        }

        fn on_send_done(&mut self, _ctx: &mut Ctx<'_>, done: &SendDone) {
            if done.acked {
                self.acked += 1;
                self.attempts_reported.push(done.attempts);
            } else {
                self.failed += 1;
            }
        }
    }

    fn two_node_engine(prr: f64, count: u32) -> Engine<Pinger> {
        let hub = RngHub::new(7);
        let topo = Arc::new(Topology::generate(
            Placement::Line { n: 2, spacing: 5.0 },
            &RadioModel::default(),
            &hub,
        ));
        assert!(topo.link_id(NodeId(1), NodeId(0)).is_some());
        let models: Vec<LossModel> = topo
            .links()
            .iter()
            .map(|_| LossModel::Bernoulli { prr })
            .collect();
        let protocols = (0..topo.node_count())
            .map(|_| Pinger {
                to_send: count,
                period: SimDuration::from_millis(200),
                ..Pinger::default()
            })
            .collect();
        Engine::new(topo, &models, MacConfig::default(), hub, protocols)
    }

    #[test]
    fn perfect_link_delivers_everything_once() {
        let mut e = two_node_engine(1.0, 50);
        e.start();
        e.run_for(SimDuration::from_secs(60));
        let sink = e.protocol(NodeId(0));
        assert_eq!(sink.dedup_received, 50);
        assert_eq!(sink.received.len(), 50, "no duplicates on a perfect link");
        assert!(sink.received.iter().all(|&a| a == 1));
        let sender = e.protocol(NodeId(1));
        assert_eq!(sender.acked, 50);
        assert_eq!(sender.failed, 0);
        assert!(sender.attempts_reported.iter().all(|&a| a == 1));
    }

    #[test]
    fn lossy_link_retransmits() {
        let mut e = two_node_engine(0.6, 400);
        e.start();
        e.run_for(SimDuration::from_secs(300));
        let sender = e.protocol(NodeId(1));
        assert!(sender.acked > 350, "acked {}", sender.acked);
        // An attempt is "settled" only when data AND ack get through:
        // p = 0.36 → mean ≈ 1/0.36 ≈ 2.8, truncated at R=7 → ≈ 2.45.
        let mean: f64 = sender
            .attempts_reported
            .iter()
            .map(|&a| f64::from(a))
            .sum::<f64>()
            / sender.attempts_reported.len() as f64;
        assert!(mean > 2.0 && mean < 3.0, "mean attempts {mean}");
        // Trace agrees with protocol-level counts.
        let t = e.trace();
        assert_eq!(t.unicast_started, 400);
        assert_eq!(t.unicast_acked, u64::from(sender.acked));
    }

    #[test]
    fn dead_link_fails_everything() {
        let mut e = two_node_engine(0.0, 20);
        e.start();
        e.run_for(SimDuration::from_secs(60));
        let sender = e.protocol(NodeId(1));
        assert_eq!(sender.acked, 0);
        assert_eq!(sender.failed, 20);
        let sink = e.protocol(NodeId(0));
        assert_eq!(sink.dedup_received, 0);
        // All attempts burned.
        assert_eq!(
            e.trace().links()[e.topology().link_id(NodeId(1), NodeId(0)).unwrap()].data_tx,
            20 * u64::from(MacConfig::default().max_attempts)
        );
    }

    #[test]
    fn first_copy_attempt_is_geometric_sample() {
        // With ACK losses, receivers may see duplicates; the FIRST copy's
        // attempt number must match the number of data transmissions until
        // first success. Verify via trace: total successes on the link
        // equals total copies delivered.
        let mut e = two_node_engine(0.5, 300);
        e.start();
        e.run_for(SimDuration::from_secs(300));
        let link = e.topology().link_id(NodeId(1), NodeId(0)).unwrap();
        let truth = e.trace().links()[link];
        let sink = e.protocol(NodeId(0));
        assert_eq!(truth.data_rx, sink.received.len() as u64);
        // Empirical PRR near 0.5.
        let prr = truth.empirical_prr().unwrap();
        assert!((prr - 0.5).abs() < 0.05, "prr {prr}");
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut e = two_node_engine(0.7, 100);
            e.start();
            e.run_for(SimDuration::from_secs(120));
            let s = e.protocol(NodeId(0));
            (s.dedup_received, s.received.clone(), e.trace().bytes_on_air)
        };
        assert_eq!(run(), run());
    }

    /// Exercises many links at once: every node periodically broadcasts
    /// and unicasts towards node 0, so broadcast fan-out, ARQ data, and
    /// ACK streams all get drawn on most links.
    struct Chatter {
        rounds: u32,
        received: Vec<(u32, u16)>, // (src, attempt) of every copy seen
    }

    impl Protocol for Chatter {
        fn on_init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(100), TimerId(0));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId) {
            if self.rounds == 0 {
                return;
            }
            self.rounds -= 1;
            ctx.send_broadcast(Arc::new(()), 20);
            if ctx.node_id() != NodeId(0) {
                let next = ctx.neighbors().first().copied().unwrap_or(NodeId(0));
                ctx.send_unicast(next, Arc::new(()), 40);
            }
            ctx.set_timer(SimDuration::from_millis(100), TimerId(0));
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, frame: &Frame) {
            self.received.push((frame.src.0, frame.attempt));
        }
    }

    #[test]
    fn lazy_rng_streams_match_prewarmed_run() {
        // Replay identity for the lazy per-link RNG init: materializing
        // every stream up front (the old eager behavior) and creating
        // them on first draw must produce byte-identical runs, because
        // each stream is seeded independently per (kind, src, dst).
        let run = |prewarm: bool| {
            let hub = RngHub::new(23);
            let topo = Arc::new(Topology::generate(
                Placement::Grid {
                    side: 4,
                    spacing: 8.0,
                },
                &RadioModel::default(),
                &hub,
            ));
            let models: Vec<LossModel> = topo
                .links()
                .iter()
                .map(|_| LossModel::Bernoulli { prr: 0.6 })
                .collect();
            let protocols = (0..topo.node_count())
                .map(|_| Chatter {
                    rounds: 50,
                    received: Vec::new(),
                })
                .collect();
            let mut e = Engine::new(topo, &models, MacConfig::default(), hub, protocols);
            if prewarm {
                e.prewarm_rng_streams();
            }
            e.start();
            e.run_for(SimDuration::from_secs(60));
            let prr: Vec<Option<f64>> = e
                .trace()
                .links()
                .iter()
                .map(|l| l.empirical_prr())
                .collect();
            let received: Vec<Vec<(u32, u16)>> = (0..e.topology().node_count())
                .map(|i| e.protocol(NodeId::from_index(i)).received.clone())
                .collect();
            (
                received,
                e.trace().bytes_on_air,
                e.trace().unicast_acked,
                e.trace().broadcast_rx,
                prr,
            )
        };
        let lazy = run(false);
        let prewarmed = run(true);
        assert_eq!(lazy, prewarmed);
        assert!(lazy.2 > 0, "no unicast traffic exercised");
        assert!(lazy.3 > 0, "no broadcast traffic exercised");
    }

    /// Protocol that turns its radio off at a scheduled time.
    struct Sleeper {
        off_at: Option<SimDuration>,
        to_send: u32,
        period: SimDuration,
        received: u32,
        acked: u32,
        failed: u32,
    }

    impl Protocol for Sleeper {
        fn on_init(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(d) = self.off_at {
                ctx.set_timer(d, TimerId(9));
            }
            if ctx.node_id() == NodeId(1) && self.to_send > 0 {
                ctx.set_timer(self.period, TimerId(0));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
            if timer == TimerId(9) {
                ctx.set_radio(false);
                return;
            }
            if self.to_send > 0 {
                self.to_send -= 1;
                ctx.send_unicast(NodeId(0), Arc::new(()), 40);
                ctx.set_timer(self.period, TimerId(0));
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _frame: &Frame) {
            self.received += 1;
        }
        fn on_send_done(&mut self, _ctx: &mut Ctx<'_>, done: &SendDone) {
            if done.acked {
                self.acked += 1;
            } else {
                self.failed += 1;
            }
        }
    }

    #[test]
    fn radio_off_receiver_answers_nothing() {
        let hub = RngHub::new(77);
        let topo = Arc::new(Topology::generate(
            Placement::Line { n: 2, spacing: 5.0 },
            &RadioModel::default(),
            &hub,
        ));
        let models: Vec<LossModel> = topo
            .links()
            .iter()
            .map(|_| LossModel::Bernoulli { prr: 1.0 })
            .collect();
        // Node 0 (receiver) powers down after 5 s; node 1 sends for 60 s.
        let protos = vec![
            Sleeper {
                off_at: Some(SimDuration::from_secs(5)),
                to_send: 0,
                period: SimDuration::from_millis(500),
                received: 0,
                acked: 0,
                failed: 0,
            },
            Sleeper {
                off_at: None,
                to_send: 60,
                period: SimDuration::from_millis(500),
                received: 0,
                acked: 0,
                failed: 0,
            },
        ];
        let mut e = Engine::new(topo, &models, MacConfig::default(), hub, protos);
        e.start();
        e.run_for(SimDuration::from_secs(60));
        assert!(!e.radio_on(NodeId(0)));
        let rx = e.protocol(NodeId(0));
        let tx = e.protocol(NodeId(1));
        // Early sends succeeded; after power-down everything fails.
        assert!(rx.received >= 5, "received {}", rx.received);
        assert!(tx.acked >= 5, "acked {}", tx.acked);
        assert!(tx.failed >= 40, "failed {}", tx.failed);
        assert_eq!(tx.acked + tx.failed, 60);
        // Channel truth not polluted by dead-receiver attempts: the link
        // PRR stays 1.0 on the samples actually drawn.
        let link = e.topology().link_id(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(e.trace().links()[link].empirical_prr(), Some(1.0));
    }

    #[test]
    fn radio_off_sender_drops_frames() {
        let hub = RngHub::new(78);
        let topo = Arc::new(Topology::generate(
            Placement::Line { n: 2, spacing: 5.0 },
            &RadioModel::default(),
            &hub,
        ));
        let models: Vec<LossModel> = topo
            .links()
            .iter()
            .map(|_| LossModel::Bernoulli { prr: 1.0 })
            .collect();
        // Sender powers down immediately, then tries to send.
        let protos = vec![
            Sleeper {
                off_at: None,
                to_send: 0,
                period: SimDuration::from_millis(500),
                received: 0,
                acked: 0,
                failed: 0,
            },
            Sleeper {
                off_at: Some(SimDuration::from_millis(1)),
                to_send: 10,
                period: SimDuration::from_millis(500),
                received: 0,
                acked: 0,
                failed: 0,
            },
        ];
        let mut e = Engine::new(topo, &models, MacConfig::default(), hub, protos);
        e.start();
        e.run_for(SimDuration::from_secs(30));
        let tx = e.protocol(NodeId(1));
        assert_eq!(tx.acked, 0);
        assert_eq!(tx.failed, 10, "all sends dropped in the driver");
        assert_eq!(e.protocol(NodeId(0)).received, 0);
        assert!(e.trace().queue_drops >= 10);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut e = two_node_engine(1.0, 1);
        e.start();
        e.run_until(SimTime::from_micros(10_000_000));
        assert_eq!(e.now(), SimTime::from_micros(10_000_000));
    }

    #[test]
    #[should_panic(expected = "already started")]
    fn double_start_panics() {
        let mut e = two_node_engine(1.0, 0);
        e.start();
        e.start();
    }

    /// Broadcast smoke test: one node beacons, neighbors receive.
    struct Beaconer {
        sent: bool,
        got: u32,
    }

    impl Protocol for Beaconer {
        fn on_init(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.node_id() == NodeId(0) {
                ctx.set_timer(SimDuration::from_millis(10), TimerId(1));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId) {
            ctx.send_broadcast(Arc::new(()), 20);
            self.sent = true;
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, frame: &Frame) {
            assert!(frame.is_broadcast);
            assert_eq!(frame.attempt, 1);
            self.got += 1;
        }
    }

    #[test]
    fn broadcast_reaches_neighbors() {
        let hub = RngHub::new(11);
        let topo = Arc::new(Topology::generate(
            Placement::Grid {
                side: 3,
                spacing: 8.0,
            },
            &RadioModel::default(),
            &hub,
        ));
        let models: Vec<LossModel> = topo
            .links()
            .iter()
            .map(|_| LossModel::Bernoulli { prr: 1.0 })
            .collect();
        let n_neighbors = topo.neighbors(NodeId(0)).len();
        let protos = (0..topo.node_count())
            .map(|_| Beaconer {
                sent: false,
                got: 0,
            })
            .collect();
        let mut e = Engine::new(topo, &models, MacConfig::default(), hub, protos);
        e.start();
        e.run_for(SimDuration::from_secs(1));
        let total: u32 = (0..e.topology().node_count())
            .map(|i| e.protocol(NodeId::from_index(i)).got)
            .sum();
        assert_eq!(total as usize, n_neighbors);
        assert_eq!(e.trace().broadcast_tx, 1);
        assert_eq!(e.trace().broadcast_rx, total as u64);
    }
}
