//! # dophy-sim
//!
//! A deterministic discrete-event wireless-sensor-network simulator — the
//! evaluation substrate for the Dophy loss-tomography reproduction
//! (*Fine-Grained Loss Tomography in Dynamic Sensor Networks*, ICPP 2015).
//!
//! The paper evaluates on TinyOS with large-scale simulation; this crate
//! replaces that stack with a self-contained simulator that preserves what
//! tomography observes:
//!
//! * **per-attempt link loss draws** from configurable processes
//!   ([`link`]): i.i.d., bursty (Gilbert–Elliott), and drifting PRR;
//! * **stop-and-wait ARQ** with a bounded retry budget and lossy ACKs
//!   ([`mac`], [`engine`]), including realistic duplicate deliveries —
//!   the attempt number of the first received copy is exactly the
//!   geometric loss sample Dophy encodes;
//! * **realistic topologies** ([`topology`], [`radio`]): logistic
//!   PRR-vs-distance with shadowing jitter, giving connected/transitional/
//!   disconnected link regimes and natural asymmetry;
//! * **ground truth** ([`trace`]): per-link empirical reception ratios and
//!   traffic statistics that estimates are scored against;
//! * **bit-reproducibility** ([`rng`]): every stochastic component draws
//!   from a named stream derived from one master seed;
//! * **deterministic fault injection** ([`fault`]): seeded frame
//!   corruption, node crash/reboot schedules, and dissemination faults
//!   that replay byte-identically and leave unfaulted runs untouched;
//! * **structured observability** ([`obs`]): an [`obs::Observer`] hook
//!   surface on the engine (tx/rx/ack/drop/timer plus protocol-level
//!   parent-change, epoch-switch, and decode events), a JSONL tracer, and
//!   a metrics registry — all guaranteed not to perturb simulation state.
//!
//! Protocols (routing, Dophy itself) implement [`engine::Protocol`] and are
//! driven by callbacks; see `dophy-routing` and `dophy` for the stacks built
//! on top.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod config;
pub mod driver;
pub mod energy;
pub mod engine;
pub mod event;
pub mod fault;
pub mod link;
pub mod mac;
pub mod obs;
pub mod packet;
pub mod profile;
pub mod radio;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;
pub mod traffic;

pub use chrome::ChromeTracer;
pub use config::{LinkDynamics, SimConfig};
pub use driver::SimDriver;
pub use energy::{EnergyModel, EnergyReport};
pub use engine::{Ctx, Engine, Protocol};
pub use fault::{
    CrashFaultConfig, DisseminationFaultConfig, FaultConfig, FaultInjection, FaultPlan,
    InjectedFault,
};
pub use link::{LossModel, LossProcess};
pub use mac::MacConfig;
pub use obs::{
    CountingObserver, Event, FlightRecorder, JsonlTracer, MetricsRegistry, MetricsSnapshot,
    Observer, Severity, SpanEvent, SpanPhase, TraceKind, TraceRecord,
};
pub use packet::{Frame, Payload, SendDone, SendToken, TimerId};
pub use profile::{ProfileReport, Profiler, Subsystem};
pub use radio::RadioModel;
pub use rng::{RngHub, StreamKind};
pub use shard::ShardedEngine;
pub use time::{SimDuration, SimTime};
pub use topology::{NodeId, Placement, Position, Topology, TopologyError};
pub use trace::{LinkTruth, Trace};
pub use traffic::TrafficPattern;
