//! Ground-truth tracing.
//!
//! The engine records every physical transmission outcome here. Experiments
//! read the trace to obtain the *true* per-link reception ratios that
//! tomography estimates are scored against, plus traffic-level statistics
//! (delivery ratio, attempt histograms).
//!
//! Two notions of truth coexist:
//!
//! * **Empirical PRR** — successes ÷ attempts actually drawn on the link.
//!   This is the fair reference for estimator error: it removes the sampling
//!   noise floor that even a perfect estimator could not beat.
//! * **Model PRR** — the loss process's analytic mean, available from the
//!   topology/config for links that were never used.
//!
//! Windowed snapshots ([`Trace::snapshot_links`] + [`LinkTruth::diff`])
//! support time-varying scenarios where truth must be computed per epoch.

use crate::stats::CountHistogram;
use crate::topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Physical-layer counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTruth {
    /// Data-frame transmissions attempted on the link.
    pub data_tx: u64,
    /// Of which physically received.
    pub data_rx: u64,
    /// ACK transmissions attempted on the reverse link (counted here,
    /// against the *data* link, for convenience).
    pub ack_tx: u64,
    /// Of which received by the data sender.
    pub ack_rx: u64,
    /// Broadcast (beacon) copies sampled on this link.
    pub bcast_tx: u64,
    /// Of which received.
    pub bcast_rx: u64,
}

impl LinkTruth {
    /// Empirical reception ratio; `None` until the link carried traffic.
    pub fn empirical_prr(&self) -> Option<f64> {
        (self.data_tx > 0).then(|| self.data_rx as f64 / self.data_tx as f64)
    }

    /// Empirical loss ratio (`1 - PRR`); `None` until the link carried
    /// traffic.
    pub fn empirical_loss(&self) -> Option<f64> {
        self.empirical_prr().map(|p| 1.0 - p)
    }

    /// Empirical PRR pooling data and beacon samples (more precise truth on
    /// links that carried little data traffic).
    pub fn pooled_prr(&self) -> Option<f64> {
        let tx = self.data_tx + self.bcast_tx;
        (tx > 0).then(|| (self.data_rx + self.bcast_rx) as f64 / tx as f64)
    }

    /// Adds another link's counters into this one (trace merging).
    fn accumulate(&mut self, src: &LinkTruth) {
        self.data_tx += src.data_tx;
        self.data_rx += src.data_rx;
        self.ack_tx += src.ack_tx;
        self.ack_rx += src.ack_rx;
        self.bcast_tx += src.bcast_tx;
        self.bcast_rx += src.bcast_rx;
    }

    /// Counter delta `self - earlier` (for windowed truth).
    pub fn diff(&self, earlier: &LinkTruth) -> LinkTruth {
        LinkTruth {
            data_tx: self.data_tx - earlier.data_tx,
            data_rx: self.data_rx - earlier.data_rx,
            ack_tx: self.ack_tx - earlier.ack_tx,
            ack_rx: self.ack_rx - earlier.ack_rx,
            bcast_tx: self.bcast_tx - earlier.bcast_tx,
            bcast_rx: self.bcast_rx - earlier.bcast_rx,
        }
    }
}

/// Whole-run ground truth collected by the engine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    links: Vec<LinkTruth>,
    /// Broadcast frames transmitted.
    pub broadcast_tx: u64,
    /// Broadcast copies received.
    pub broadcast_rx: u64,
    /// Unicast ARQ exchanges started.
    pub unicast_started: u64,
    /// Of which acknowledged.
    pub unicast_acked: u64,
    /// Of which exhausted their retry budget.
    pub unicast_failed: u64,
    /// Frames dropped at MAC queues.
    pub queue_drops: u64,
    /// Histogram of attempts-until-ACK for acknowledged exchanges.
    pub attempts_hist: CountHistogram,
    /// Total bytes put on air (data + ACK), for energy-style accounting.
    pub bytes_on_air: u64,
}

impl Trace {
    /// Creates a trace sized for `topology`.
    pub fn for_topology(topology: &Topology) -> Self {
        Self::with_link_count(topology.links().len())
    }

    /// Creates a trace with `links` counter slots. Used by shards that
    /// record only the links they own (indexed by a shard-local id) and
    /// fold into a full-topology trace via [`Trace::merge_mapped`]; a
    /// full-size per-shard trace would multiply the per-link footprint
    /// by the shard count.
    pub fn with_link_count(links: usize) -> Self {
        Self {
            links: vec![LinkTruth::default(); links],
            ..Self::default()
        }
    }

    /// Records one physical data transmission on link `link_id`.
    pub fn record_data_attempt(&mut self, link_id: usize, received: bool, bytes: usize) {
        let l = &mut self.links[link_id];
        l.data_tx += 1;
        if received {
            l.data_rx += 1;
        }
        self.bytes_on_air += bytes as u64;
    }

    /// Records one broadcast-copy sample on link `link_id` (airtime for the
    /// broadcast frame itself is charged once by the engine, not per copy).
    pub fn record_broadcast_attempt(&mut self, link_id: usize, received: bool) {
        let l = &mut self.links[link_id];
        l.bcast_tx += 1;
        if received {
            l.bcast_rx += 1;
        }
    }

    /// Records one ACK transmission for the data link `link_id`.
    pub fn record_ack_attempt(&mut self, link_id: usize, received: bool, ack_bytes: usize) {
        let l = &mut self.links[link_id];
        l.ack_tx += 1;
        if received {
            l.ack_rx += 1;
        }
        self.bytes_on_air += ack_bytes as u64;
    }

    /// Per-link counters, indexed by topology link id.
    pub fn links(&self) -> &[LinkTruth] {
        &self.links
    }

    /// Folds another trace for the *same topology* into this one: link
    /// counters add element-wise, scalar totals sum, attempt histograms
    /// merge. Used by the sharded engine, where each shard records only
    /// the traffic it simulated.
    ///
    /// # Panics
    /// Panics if the traces were sized for different topologies.
    pub fn merge(&mut self, other: &Trace) {
        assert_eq!(
            self.links.len(),
            other.links.len(),
            "merging traces from different topologies"
        );
        for (dst, src) in self.links.iter_mut().zip(&other.links) {
            dst.accumulate(src);
        }
        self.merge_scalars(other);
    }

    /// Folds a *compact* trace (one slot per owned link, see
    /// [`Trace::with_link_count`]) into this full-topology one:
    /// `other.links[i]` adds into `self.links[global_ids[i]]`, scalar
    /// totals sum as in [`Trace::merge`].
    ///
    /// # Panics
    /// Panics if `global_ids` is not parallel to `other`'s link slots or
    /// maps outside this trace.
    pub fn merge_mapped(&mut self, other: &Trace, global_ids: &[usize]) {
        assert_eq!(
            other.links.len(),
            global_ids.len(),
            "compact trace and its link map must be parallel"
        );
        for (src, &g) in other.links.iter().zip(global_ids) {
            self.links[g].accumulate(src);
        }
        self.merge_scalars(other);
    }

    fn merge_scalars(&mut self, other: &Trace) {
        self.broadcast_tx += other.broadcast_tx;
        self.broadcast_rx += other.broadcast_rx;
        self.unicast_started += other.unicast_started;
        self.unicast_acked += other.unicast_acked;
        self.unicast_failed += other.unicast_failed;
        self.queue_drops += other.queue_drops;
        self.attempts_hist.merge(&other.attempts_hist);
        self.bytes_on_air += other.bytes_on_air;
    }

    /// Copy of the per-link counters (epoch snapshot).
    pub fn snapshot_links(&self) -> Vec<LinkTruth> {
        self.links.clone()
    }

    /// Fraction of started unicast exchanges that were acknowledged.
    pub fn unicast_delivery_ratio(&self) -> Option<f64> {
        (self.unicast_started > 0).then(|| self.unicast_acked as f64 / self.unicast_started as f64)
    }

    /// Convenience: empirical PRR of `u → v`, if the link exists and
    /// carried traffic.
    pub fn link_prr(&self, topology: &Topology, u: NodeId, v: NodeId) -> Option<f64> {
        let id = topology.link_id(u, v)?;
        self.links[id].empirical_prr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::RadioModel;
    use crate::rng::RngHub;
    use crate::topology::Placement;

    fn topo() -> Topology {
        Topology::generate(
            Placement::Grid {
                side: 3,
                spacing: 10.0,
            },
            &RadioModel::default(),
            &RngHub::new(1),
        )
    }

    #[test]
    fn counters_accumulate() {
        let t = topo();
        let mut tr = Trace::for_topology(&t);
        tr.record_data_attempt(0, true, 40);
        tr.record_data_attempt(0, false, 40);
        tr.record_data_attempt(0, true, 40);
        tr.record_ack_attempt(0, true, 11);
        let l = tr.links()[0];
        assert_eq!(l.data_tx, 3);
        assert_eq!(l.data_rx, 2);
        assert_eq!(l.ack_tx, 1);
        assert_eq!(l.ack_rx, 1);
        assert_eq!(tr.bytes_on_air, 131);
        assert!((l.empirical_prr().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((l.empirical_loss().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unused_link_has_no_empirical_prr() {
        let l = LinkTruth::default();
        assert_eq!(l.empirical_prr(), None);
        assert_eq!(l.empirical_loss(), None);
    }

    #[test]
    fn diff_gives_window_counts() {
        let t = topo();
        let mut tr = Trace::for_topology(&t);
        tr.record_data_attempt(1, true, 40);
        let snap = tr.snapshot_links();
        tr.record_data_attempt(1, true, 40);
        tr.record_data_attempt(1, false, 40);
        let window = tr.links()[1].diff(&snap[1]);
        assert_eq!(window.data_tx, 2);
        assert_eq!(window.data_rx, 1);
    }

    #[test]
    fn delivery_ratio() {
        let t = topo();
        let mut tr = Trace::for_topology(&t);
        assert_eq!(tr.unicast_delivery_ratio(), None);
        tr.unicast_started = 10;
        tr.unicast_acked = 9;
        tr.unicast_failed = 1;
        assert!((tr.unicast_delivery_ratio().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn merge_mapped_folds_compact_shard_traces() {
        let t = topo();
        let mut full = Trace::for_topology(&t);
        full.record_data_attempt(5, true, 40);
        // A shard owning global links {2, 5} records under local ids.
        let mut shard = Trace::with_link_count(2);
        shard.record_data_attempt(0, true, 40); // global 2
        shard.record_data_attempt(1, false, 40); // global 5
        shard.record_ack_attempt(1, true, 11);
        shard.queue_drops = 3;
        full.merge_mapped(&shard, &[2, 5]);
        assert_eq!(full.links()[2].data_tx, 1);
        assert_eq!(full.links()[2].data_rx, 1);
        assert_eq!(full.links()[5].data_tx, 2);
        assert_eq!(full.links()[5].data_rx, 1);
        assert_eq!(full.links()[5].ack_rx, 1);
        assert_eq!(full.queue_drops, 3);
        assert_eq!(full.bytes_on_air, 40 + 40 + 40 + 11);
    }

    #[test]
    fn link_prr_lookup_via_topology() {
        let t = topo();
        let mut tr = Trace::for_topology(&t);
        let l = t.links()[3];
        tr.record_data_attempt(3, true, 40);
        assert_eq!(tr.link_prr(&t, l.src, l.dst), Some(1.0));
    }
}
