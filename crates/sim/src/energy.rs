//! Radio energy accounting.
//!
//! Measurement overhead in sensor networks matters because it costs
//! *energy*, the resource that bounds deployment lifetime. This module
//! converts the byte-level counters in [`crate::trace::Trace`] into Joules
//! using a CC2420-class energy model, so experiments can report the
//! energy price of each measurement scheme and translate byte savings into
//! lifetime.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Per-byte and per-event radio energy costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Transmit energy per byte (µJ). CC2420 at 0 dBm: ~17.4 mA × 1.8 V ×
    /// 32 µs ≈ 1.0 µJ/byte.
    pub tx_uj_per_byte: f64,
    /// Receive energy per byte (µJ). CC2420: ~19.7 mA × 1.8 V × 32 µs ≈
    /// 1.1 µJ/byte.
    pub rx_uj_per_byte: f64,
    /// Fixed per-transmission cost (startup, turnaround) in µJ.
    pub tx_fixed_uj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            tx_uj_per_byte: 1.0,
            rx_uj_per_byte: 1.1,
            tx_fixed_uj: 8.0,
        }
    }
}

/// Energy summary of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total transmit energy (J).
    pub tx_joules: f64,
    /// Receive energy of successfully received frames (J). (Idle listening
    /// is duty-cycle dependent and out of scope; relative scheme
    /// comparisons are unaffected.)
    pub rx_joules: f64,
}

impl EnergyReport {
    /// Total radio energy (J).
    pub fn total_joules(&self) -> f64 {
        self.tx_joules + self.rx_joules
    }
}

impl EnergyModel {
    /// Converts a run's trace into an energy report.
    ///
    /// Transmissions: every byte on air plus a fixed cost per data attempt,
    /// ACK, and broadcast. Receptions: bytes of successfully received
    /// copies (data + ACK + broadcast).
    pub fn report(&self, trace: &Trace, mean_frame_bytes: f64, ack_bytes: f64) -> EnergyReport {
        let mut tx_events = 0.0;
        let mut rx_bytes = 0.0;
        for l in trace.links() {
            tx_events += (l.data_tx + l.ack_tx) as f64;
            rx_bytes += l.data_rx as f64 * mean_frame_bytes + l.ack_rx as f64 * ack_bytes;
            rx_bytes += l.bcast_rx as f64 * mean_frame_bytes;
        }
        tx_events += trace.broadcast_tx as f64;
        let tx_joules =
            (trace.bytes_on_air as f64 * self.tx_uj_per_byte + tx_events * self.tx_fixed_uj) / 1e6;
        let rx_joules = rx_bytes * self.rx_uj_per_byte / 1e6;
        EnergyReport {
            tx_joules,
            rx_joules,
        }
    }

    /// Energy (J) of shipping `bytes` of extra payload once across one hop
    /// (tx + rx). Used to price measurement overhead analytically.
    pub fn per_hop_byte_joules(&self) -> f64 {
        (self.tx_uj_per_byte + self.rx_uj_per_byte) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::RadioModel;
    use crate::rng::RngHub;
    use crate::topology::{Placement, Topology};

    fn traced() -> (Topology, Trace) {
        let topo = Topology::generate(
            Placement::Grid {
                side: 3,
                spacing: 10.0,
            },
            &RadioModel::default(),
            &RngHub::new(2),
        );
        let mut t = Trace::for_topology(&topo);
        t.record_data_attempt(0, true, 50);
        t.record_data_attempt(0, false, 50);
        t.record_ack_attempt(0, true, 11);
        t.record_broadcast_attempt(1, true);
        t.broadcast_tx = 1;
        t.broadcast_rx = 1;
        t.bytes_on_air += 20; // the broadcast frame itself
        (topo, t)
    }

    #[test]
    fn report_accounts_tx_and_rx() {
        let (_, trace) = traced();
        let m = EnergyModel::default();
        let r = m.report(&trace, 50.0, 11.0);
        // TX: 131 bytes (2×50 + 11 + 20) × 1.0 µJ + 4 events × 8 µJ.
        let expect_tx = (131.0 + 4.0 * 8.0) / 1e6;
        assert!((r.tx_joules - expect_tx).abs() < 1e-12, "{}", r.tx_joules);
        // RX: (1×50 + 1×11 + 1×50 (bcast copy)) × 1.1 µJ.
        let expect_rx = 111.0 * 1.1 / 1e6;
        assert!((r.rx_joules - expect_rx).abs() < 1e-12, "{}", r.rx_joules);
        assert!((r.total_joules() - expect_tx - expect_rx).abs() < 1e-15);
    }

    #[test]
    fn more_bytes_more_energy() {
        let (topo, _) = traced();
        let m = EnergyModel::default();
        let mut small = Trace::for_topology(&topo);
        small.record_data_attempt(0, true, 40);
        let mut big = Trace::for_topology(&topo);
        big.record_data_attempt(0, true, 80);
        assert!(
            m.report(&big, 80.0, 11.0).total_joules() > m.report(&small, 40.0, 11.0).total_joules()
        );
    }

    #[test]
    fn per_hop_byte_price() {
        let m = EnergyModel::default();
        assert!((m.per_hop_byte_joules() - 2.1e-6).abs() < 1e-12);
    }
}
