//! Hot-path self-profiling: near-zero-cost scoped wall-time measurement
//! of the engine's subsystems.
//!
//! A [`Profiler`] holds one lock-free power-of-two-nanosecond histogram
//! per [`Subsystem`]. The engine (and, through [`crate::engine::Ctx`],
//! the protocol layer) brackets its hot regions with [`start`]/[`stop`]
//! pairs; each pair costs two `Instant::now()` calls *only when a
//! profiler is installed*. With no profiler the pair is a single untaken
//! branch, and with the `self-profile` cargo feature disabled both
//! helpers compile to nothing at all.
//!
//! Profiling measures **wall time only** — it never touches simulation
//! state, RNG streams, or event ordering, so a profiled run is
//! bit-identical to a bare run of the same seed (the integration tests
//! enforce this alongside the observer guarantee).

use crate::obs::Histogram;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Engine subsystems instrumented with profiling scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subsystem {
    /// Popping due events from the calendar-ring event queue.
    QueuePop,
    /// Broadcast fan-out: per-neighbor loss draws and delivery batching.
    BroadcastFanout,
    /// The inline stop-and-wait ARQ loop for one unicast exchange.
    UnicastArq,
    /// Sink-side packet decode (range decoder + path checks).
    Decode,
    /// Estimator ingestion of decoded per-link observations.
    EstimatorUpdate,
}

impl Subsystem {
    /// Every instrumented subsystem, in export order.
    pub const ALL: [Subsystem; 5] = [
        Subsystem::QueuePop,
        Subsystem::BroadcastFanout,
        Subsystem::UnicastArq,
        Subsystem::Decode,
        Subsystem::EstimatorUpdate,
    ];

    /// Stable snake_case name used as the metrics label value.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::QueuePop => "queue_pop",
            Subsystem::BroadcastFanout => "broadcast_fanout",
            Subsystem::UnicastArq => "unicast_arq",
            Subsystem::Decode => "decode",
            Subsystem::EstimatorUpdate => "estimator_update",
        }
    }
}

/// Bucket count mirroring [`Histogram`]'s layout: bucket `i` holds
/// durations ≤ 2^i ns (last bucket unbounded, ≈ everything over 131 µs).
const BUCKETS: usize = 18;

/// Lock-free per-subsystem duration statistics.
struct SubStats {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl SubStats {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Wall-time profiler shared (via `Arc`) between the engine and any
/// exporter. All recording is relaxed-atomic: the simulation is
/// single-threaded per engine, and exports happen between events.
pub struct Profiler {
    stats: [SubStats; 5],
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Profiler with all histograms empty.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stats: std::array::from_fn(|_| SubStats::new()),
        }
    }

    /// Records one measured duration for `sub`.
    pub fn record_ns(&self, sub: Subsystem, ns: u64) {
        let s = &self.stats[sub as usize];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum_ns.fetch_add(ns, Ordering::Relaxed);
        s.min_ns.fetch_min(ns, Ordering::Relaxed);
        s.max_ns.fetch_max(ns, Ordering::Relaxed);
        // Same bucketing rule as `Histogram::observe`: bucket 0 is ≤ 1,
        // bucket i is (2^(i-1), 2^i], final bucket catches the rest.
        let idx = if ns <= 1 {
            0
        } else {
            (64 - (ns - 1).leading_zeros() as usize).min(BUCKETS - 1)
        };
        s.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded scopes for `sub`.
    pub fn count(&self, sub: Subsystem) -> u64 {
        self.stats[sub as usize].count.load(Ordering::Relaxed)
    }

    /// Current state of one subsystem's histogram, in the metrics
    /// registry's [`Histogram`] shape (values in nanoseconds).
    pub fn histogram(&self, sub: Subsystem) -> Histogram {
        let s = &self.stats[sub as usize];
        let count = s.count.load(Ordering::Relaxed);
        let min = s.min_ns.load(Ordering::Relaxed);
        let mut h = Histogram {
            count,
            sum: s.sum_ns.load(Ordering::Relaxed) as f64,
            min: if count == 0 { f64::NAN } else { min as f64 },
            max: if count == 0 {
                f64::NAN
            } else {
                s.max_ns.load(Ordering::Relaxed) as f64
            },
            ..Histogram::default()
        };
        for (i, b) in s.buckets.iter().enumerate() {
            h.buckets[i] = b.load(Ordering::Relaxed);
        }
        h
    }

    /// Drains every recorded sample into `target`, leaving this profiler
    /// empty. Used by the sharded engine: each worker thread records into
    /// its own shard-local profiler (no cross-thread cache contention on
    /// the hot atomics) and the coordinator drains them all into the
    /// run-level profiler at window boundaries, when workers are
    /// quiescent behind the exchange barrier.
    pub fn drain_into(&self, target: &Profiler) {
        for sub in Subsystem::ALL {
            let s = &self.stats[sub as usize];
            let t = &target.stats[sub as usize];
            let count = s.count.swap(0, Ordering::Relaxed);
            if count == 0 {
                // Still reset min/max so a stale extreme from an earlier
                // window cannot leak into a later drain.
                s.min_ns.store(u64::MAX, Ordering::Relaxed);
                s.max_ns.store(0, Ordering::Relaxed);
                continue;
            }
            t.count.fetch_add(count, Ordering::Relaxed);
            t.sum_ns
                .fetch_add(s.sum_ns.swap(0, Ordering::Relaxed), Ordering::Relaxed);
            t.min_ns.fetch_min(
                s.min_ns.swap(u64::MAX, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            t.max_ns
                .fetch_max(s.max_ns.swap(0, Ordering::Relaxed), Ordering::Relaxed);
            for (src, dst) in s.buckets.iter().zip(&t.buckets) {
                dst.fetch_add(src.swap(0, Ordering::Relaxed), Ordering::Relaxed);
            }
        }
    }

    /// Full per-subsystem report (every subsystem listed, even if its
    /// count is zero — exporters and CI checks rely on completeness).
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            subsystems: Subsystem::ALL
                .iter()
                .map(|&sub| {
                    let s = &self.stats[sub as usize];
                    let count = s.count.load(Ordering::Relaxed);
                    let total_ns = s.sum_ns.load(Ordering::Relaxed);
                    SubsystemProfile {
                        subsystem: sub.name().to_string(),
                        count,
                        total_ns,
                        mean_ns: if count == 0 {
                            0.0
                        } else {
                            total_ns as f64 / count as f64
                        },
                        min_ns: match s.min_ns.load(Ordering::Relaxed) {
                            u64::MAX => 0,
                            v => v,
                        },
                        max_ns: s.max_ns.load(Ordering::Relaxed),
                        histogram: self.histogram(sub),
                    }
                })
                .collect(),
        }
    }
}

/// Aggregated wall-time statistics for one subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemProfile {
    /// Subsystem name (see [`Subsystem::name`]).
    pub subsystem: String,
    /// Number of recorded scopes.
    pub count: u64,
    /// Total wall time spent, nanoseconds.
    pub total_ns: u64,
    /// Mean scope duration, nanoseconds (0 when empty).
    pub mean_ns: f64,
    /// Shortest scope, nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Longest scope, nanoseconds (0 when empty).
    pub max_ns: u64,
    /// Power-of-two duration histogram, nanoseconds.
    pub histogram: Histogram,
}

/// Per-run profile export: one entry per instrumented subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Per-subsystem statistics, in [`Subsystem::ALL`] order.
    pub subsystems: Vec<SubsystemProfile>,
}

/// Opens a profiling scope: returns the start instant when a profiler is
/// installed (and the `self-profile` feature is compiled in), `None`
/// otherwise. Pair with [`stop`].
#[inline]
#[must_use]
pub fn start(profiler: Option<&Profiler>) -> Option<Instant> {
    if cfg!(feature = "self-profile") && profiler.is_some() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Closes a profiling scope opened by [`start`], attributing the elapsed
/// wall time to `sub`. A `None` start (profiling off) costs one branch.
#[inline]
pub fn stop(profiler: Option<&Profiler>, sub: Subsystem, started: Option<Instant>) {
    if cfg!(feature = "self-profile") {
        if let (Some(p), Some(t0)) = (profiler, started) {
            p.record_ns(
                sub,
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets_durations() {
        let p = Profiler::new();
        p.record_ns(Subsystem::Decode, 1);
        p.record_ns(Subsystem::Decode, 3);
        p.record_ns(Subsystem::Decode, 1_000_000); // > 2^17: last bucket
        let h = p.histogram(Subsystem::Decode);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1_000_004.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1_000_000.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(*h.buckets.last().unwrap(), 1);
        assert_eq!(p.count(Subsystem::QueuePop), 0);
    }

    #[test]
    fn report_lists_every_subsystem() {
        let p = Profiler::new();
        p.record_ns(Subsystem::UnicastArq, 500);
        let report = p.report();
        let names: Vec<&str> = report
            .subsystems
            .iter()
            .map(|s| s.subsystem.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "queue_pop",
                "broadcast_fanout",
                "unicast_arq",
                "decode",
                "estimator_update"
            ]
        );
        let arq = &report.subsystems[2];
        assert_eq!(arq.count, 1);
        assert_eq!(arq.total_ns, 500);
        assert_eq!(arq.min_ns, 500);
        assert_eq!(arq.max_ns, 500);
        // Report round-trips through JSON for the per-run export. Compare
        // re-serialized text: empty histograms carry NaN min/max (the
        // registry convention), and NaN breaks a direct `PartialEq`.
        let json = serde_json::to_string(&report).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn drain_into_moves_everything_and_resets() {
        let src = Profiler::new();
        let dst = Profiler::new();
        src.record_ns(Subsystem::Decode, 10);
        src.record_ns(Subsystem::Decode, 1_000);
        src.record_ns(Subsystem::QueuePop, 7);
        dst.record_ns(Subsystem::Decode, 500);
        src.drain_into(&dst);
        assert_eq!(src.count(Subsystem::Decode), 0);
        assert_eq!(src.count(Subsystem::QueuePop), 0);
        let h = dst.histogram(Subsystem::Decode);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1_510.0);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 1_000.0);
        assert_eq!(dst.count(Subsystem::QueuePop), 1);
        // A second drain from the now-empty source is a no-op, and the
        // reset min/max cannot pollute the target.
        src.drain_into(&dst);
        let h2 = dst.histogram(Subsystem::Decode);
        assert_eq!(h2.count, 3);
        assert_eq!(h2.min, 10.0);
        assert_eq!(h2.max, 1_000.0);
    }

    #[test]
    fn scope_helpers_respect_installation() {
        assert!(start(None).is_none());
        stop(None, Subsystem::Decode, None); // must not panic
        let p = Profiler::new();
        let t0 = start(Some(&p));
        stop(Some(&p), Subsystem::Decode, t0);
        if cfg!(feature = "self-profile") {
            assert_eq!(p.count(Subsystem::Decode), 1);
        } else {
            assert_eq!(p.count(Subsystem::Decode), 0);
        }
    }
}
