//! Per-link packet-loss processes.
//!
//! Every directed link owns a [`LossProcess`] that is sampled once per
//! physical transmission attempt. Three families cover the regimes the
//! tomography literature cares about:
//!
//! * [`LossModel::Bernoulli`] — i.i.d. loss, the assumption both Dophy's
//!   estimator and classical tomography are derived under;
//! * [`LossModel::GilbertElliott`] — two-state bursty loss, used to stress
//!   the i.i.d. assumption (ablation `ablation-burstiness`);
//! * [`LossModel::Sinusoidal`] / [`LossModel::RandomWalk`] — slow PRR drift,
//!   the non-stationarity that motivates Dophy's periodic model updates.
//!
//! Processes evolve in continuous simulated time: each sample advances the
//! hidden state by the elapsed interval, so results do not depend on how
//! often a link happens to be used.

use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Declarative description of a loss process (serializable configuration).
/// `prr` parameters are packet-reception ratios in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent loss with fixed reception probability.
    Bernoulli {
        /// Packet reception ratio.
        prr: f64,
    },
    /// Two-state continuous-time Gilbert–Elliott channel.
    GilbertElliott {
        /// Reception ratio while in the Good state.
        prr_good: f64,
        /// Reception ratio while in the Bad state.
        prr_bad: f64,
        /// Good→Bad transition rate (events per second).
        rate_gb: f64,
        /// Bad→Good transition rate (events per second).
        rate_bg: f64,
    },
    /// PRR oscillates sinusoidally around `base`.
    Sinusoidal {
        /// Centre reception ratio.
        base: f64,
        /// Oscillation amplitude.
        amp: f64,
        /// Oscillation period in seconds.
        period_s: f64,
        /// Phase offset in radians.
        phase: f64,
    },
    /// PRR performs a reflected Gaussian random walk.
    RandomWalk {
        /// Starting reception ratio.
        start: f64,
        /// Standard deviation of the PRR change per √second.
        sigma_per_sqrt_s: f64,
        /// Lower reflection bound.
        lo: f64,
        /// Upper reflection bound.
        hi: f64,
    },
}

impl LossModel {
    /// Long-run mean reception ratio (stationary mean for GE; centre for
    /// drift models).
    pub fn stationary_prr(&self) -> f64 {
        match *self {
            LossModel::Bernoulli { prr } => prr,
            LossModel::GilbertElliott {
                prr_good,
                prr_bad,
                rate_gb,
                rate_bg,
            } => {
                let pi_good = rate_bg / (rate_gb + rate_bg);
                pi_good * prr_good + (1.0 - pi_good) * prr_bad
            }
            LossModel::Sinusoidal { base, .. } => base,
            LossModel::RandomWalk { lo, hi, .. } => (lo + hi) / 2.0,
        }
    }

    /// Instantiates the runtime process.
    pub fn build(&self) -> LossProcess {
        let state = match *self {
            LossModel::Bernoulli { .. } => ProcessState::Stateless,
            LossModel::GilbertElliott {
                rate_gb, rate_bg, ..
            } => {
                // Start in the stationary distribution's more likely state;
                // the first sample re-randomises via the transition kernel
                // anyway, so this choice decays immediately.
                let pi_good = rate_bg / (rate_gb + rate_bg);
                ProcessState::Ge {
                    good: pi_good >= 0.5,
                    last: SimTime::ZERO,
                }
            }
            LossModel::Sinusoidal { .. } => ProcessState::Stateless,
            LossModel::RandomWalk { start, .. } => ProcessState::Walk {
                prr: start,
                last: SimTime::ZERO,
            },
        };
        LossProcess {
            model: *self,
            state,
            bern_threshold: match *self {
                LossModel::Bernoulli { prr } => Some(bernoulli_threshold(prr)),
                _ => None,
            },
        }
    }
}

/// Integer threshold equivalent to `rng.gen::<f64>() < prr`.
///
/// The vendored `gen::<f64>()` is `(next_u64() >> 11) as f64 / 2^53`, so for
/// the 53-bit integer `x` the comparison `x/2^53 < prr` is exactly
/// `x < ceil(prr * 2^53)` (`prr * 2^53` is computed exactly up to rounding of
/// `prr` itself; for integer `x`, `x < t ⟺ x < ceil(t)`). `prr >= 1` maps to
/// `2^53`, above every possible draw; `prr <= 0` maps to `0`, below none.
fn bernoulli_threshold(prr: f64) -> u64 {
    const SCALE: f64 = (1u64 << 53) as f64;
    let t = (prr * SCALE).ceil();
    if t <= 0.0 {
        0
    } else if t >= SCALE {
        1 << 53
    } else {
        t as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ProcessState {
    Stateless,
    Ge { good: bool, last: SimTime },
    Walk { prr: f64, last: SimTime },
}

/// Runtime loss process: holds the evolving hidden state for one directed
/// link.
#[derive(Debug, Clone, PartialEq)]
pub struct LossProcess {
    model: LossModel,
    state: ProcessState,
    /// Precomputed integer threshold for the Bernoulli fast path; `None`
    /// for every stateful/drifting model.
    bern_threshold: Option<u64>,
}

impl LossProcess {
    /// The declarative model this process realises.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Instantaneous reception probability at `now` (advances drift state).
    pub fn prr_at(&mut self, now: SimTime, rng: &mut SmallRng) -> f64 {
        match self.model {
            LossModel::Bernoulli { prr } => prr,
            LossModel::GilbertElliott {
                prr_good, prr_bad, ..
            } => {
                self.evolve_ge(now, rng);
                match self.state {
                    ProcessState::Ge { good: true, .. } => prr_good,
                    _ => prr_bad,
                }
            }
            LossModel::Sinusoidal {
                base,
                amp,
                period_s,
                phase,
            } => {
                let t = now.as_secs_f64();
                let v = base + amp * (2.0 * std::f64::consts::PI * t / period_s + phase).sin();
                v.clamp(0.01, 0.99)
            }
            LossModel::RandomWalk {
                sigma_per_sqrt_s,
                lo,
                hi,
                ..
            } => {
                if let ProcessState::Walk { prr, last } = self.state {
                    let dt = now.since(last).as_secs_f64();
                    let new = if dt > 0.0 {
                        let z = sample_standard_normal(rng);
                        reflect(prr + z * sigma_per_sqrt_s * dt.sqrt(), lo, hi)
                    } else {
                        prr
                    };
                    self.state = ProcessState::Walk {
                        prr: new,
                        last: now,
                    };
                    new
                } else {
                    unreachable!("walk model carries walk state")
                }
            }
        }
    }

    /// Draws one transmission outcome at `now` (true = frame received).
    pub fn sample(&mut self, now: SimTime, rng: &mut SmallRng) -> bool {
        // Bernoulli fast path: one integer compare against the 53 mantissa
        // bits `gen::<f64>()` would extract from the same `next_u64()` call,
        // so both the outcome and the stream position are bit-identical to
        // the general path. Broadcast fan-out hits this once per (link,
        // event), which is the bulk of all RNG traffic at scale.
        if let Some(threshold) = self.bern_threshold {
            return (rng.next_u64() >> 11) < threshold;
        }
        let prr = self.prr_at(now, rng);
        rng.gen::<f64>() < prr
    }

    fn evolve_ge(&mut self, now: SimTime, rng: &mut SmallRng) {
        let LossModel::GilbertElliott {
            rate_gb, rate_bg, ..
        } = self.model
        else {
            return;
        };
        let ProcessState::Ge { good, last } = self.state else {
            return;
        };
        let dt = now.since(last).as_secs_f64();
        if dt > 0.0 {
            // Exact 2-state CTMC transition kernel over the elapsed gap.
            let total = rate_gb + rate_bg;
            let pi_good = rate_bg / total;
            let decay = (-total * dt).exp();
            let p_good_now = if good {
                pi_good + (1.0 - pi_good) * decay
            } else {
                pi_good * (1.0 - decay)
            };
            let good_now = rng.gen::<f64>() < p_good_now;
            self.state = ProcessState::Ge {
                good: good_now,
                last: now,
            };
        }
    }
}

/// Reflects `x` into `[lo, hi]`.
fn reflect(mut x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo < hi);
    let span = hi - lo;
    // Fold into a 2*span sawtooth, then mirror.
    let mut rel = (x - lo) % (2.0 * span);
    if rel < 0.0 {
        rel += 2.0 * span;
    }
    x = if rel <= span { rel } else { 2.0 * span - rel };
    lo + x
}

/// Box–Muller standard normal (keeps us off extra distribution crates).
fn sample_standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RngHub, StreamKind};
    use crate::time::SimDuration;

    fn rng() -> SmallRng {
        RngHub::new(99).stream(StreamKind::LinkLoss, 1, 2)
    }

    /// Samples `n` draws spaced `gap_us` apart, returns empirical PRR.
    fn empirical_prr(model: LossModel, n: u32, gap_us: u64) -> f64 {
        let mut p = model.build();
        let mut r = rng();
        let mut t = SimTime::ZERO;
        let mut ok = 0u32;
        for _ in 0..n {
            if p.sample(t, &mut r) {
                ok += 1;
            }
            t += SimDuration::from_micros(gap_us);
        }
        f64::from(ok) / f64::from(n)
    }

    #[test]
    fn bernoulli_matches_prr() {
        let e = empirical_prr(LossModel::Bernoulli { prr: 0.8 }, 20_000, 1000);
        assert!((e - 0.8).abs() < 0.01, "empirical {e}");
    }

    #[test]
    fn bernoulli_extremes() {
        assert_eq!(
            empirical_prr(LossModel::Bernoulli { prr: 1.0 }, 1000, 1),
            1.0
        );
        assert_eq!(
            empirical_prr(LossModel::Bernoulli { prr: 0.0 }, 1000, 1),
            0.0
        );
    }

    #[test]
    fn bernoulli_fast_path_matches_f64_reference() {
        // The integer-threshold path must reproduce `gen::<f64>() < prr`
        // draw-for-draw from the same stream position, including edge PRRs.
        for &prr in &[0.0, 1e-12, 0.1, 0.25, 0.5, 0.7237, 0.9, 1.0 - 1e-12, 1.0] {
            let mut fast = LossModel::Bernoulli { prr }.build();
            let mut r_fast = rng();
            let mut r_ref = rng();
            for i in 0..10_000u64 {
                let t = SimTime::from_micros(i * 137);
                let got = fast.sample(t, &mut r_fast);
                let want = r_ref.gen::<f64>() < prr;
                assert_eq!(got, want, "prr={prr} draw={i}");
            }
            // Streams stayed in lock-step.
            assert_eq!(r_fast.next_u64(), r_ref.next_u64(), "prr={prr}");
        }
    }

    #[test]
    fn gilbert_elliott_stationary_mean() {
        let model = LossModel::GilbertElliott {
            prr_good: 0.95,
            prr_bad: 0.2,
            rate_gb: 0.5,
            rate_bg: 1.5,
        };
        // πG = 0.75 → mean = 0.75*0.95 + 0.25*0.2 = 0.7625.
        assert!((model.stationary_prr() - 0.7625).abs() < 1e-12);
        let e = empirical_prr(model, 60_000, 50_000);
        assert!(
            (e - 0.7625).abs() < 0.02,
            "empirical {e} vs stationary 0.7625"
        );
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // With slow transitions and closely spaced samples, consecutive
        // outcomes must be positively correlated (unlike Bernoulli).
        let model = LossModel::GilbertElliott {
            prr_good: 1.0,
            prr_bad: 0.0,
            rate_gb: 1.0,
            rate_bg: 1.0,
        };
        let mut p = model.build();
        let mut r = rng();
        let mut t = SimTime::ZERO;
        let mut prev = p.sample(t, &mut r);
        let (mut same, mut n) = (0u32, 0u32);
        for _ in 0..20_000 {
            t += SimDuration::from_micros(1_000); // 1ms ≪ 1s sojourn
            let cur = p.sample(t, &mut r);
            same += u32::from(cur == prev);
            n += 1;
            prev = cur;
        }
        let agreement = f64::from(same) / f64::from(n);
        assert!(agreement > 0.9, "agreement {agreement} should be near 1");
    }

    #[test]
    fn sinusoidal_oscillates() {
        let model = LossModel::Sinusoidal {
            base: 0.5,
            amp: 0.4,
            period_s: 100.0,
            phase: 0.0,
        };
        let mut p = model.build();
        let mut r = rng();
        // Quarter period: sin = 1 → prr 0.9; three quarters: prr 0.1.
        let hi = p.prr_at(SimTime::from_micros(25_000_000), &mut r);
        let lo = p.prr_at(SimTime::from_micros(75_000_000), &mut r);
        assert!((hi - 0.9).abs() < 1e-9, "hi {hi}");
        assert!((lo - 0.1).abs() < 1e-9, "lo {lo}");
    }

    #[test]
    fn sinusoidal_clamped() {
        let model = LossModel::Sinusoidal {
            base: 0.9,
            amp: 0.5,
            period_s: 10.0,
            phase: 0.0,
        };
        let mut p = model.build();
        let mut r = rng();
        for s in 0..100 {
            let prr = p.prr_at(SimTime::from_micros(s * 500_000), &mut r);
            assert!((0.01..=0.99).contains(&prr));
        }
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let model = LossModel::RandomWalk {
            start: 0.8,
            sigma_per_sqrt_s: 0.3,
            lo: 0.1,
            hi: 0.95,
        };
        let mut p = model.build();
        let mut r = rng();
        let mut t = SimTime::ZERO;
        for _ in 0..5_000 {
            t += SimDuration::from_millis(100);
            let prr = p.prr_at(t, &mut r);
            assert!((0.1..=0.95).contains(&prr), "prr {prr} escaped bounds");
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let model = LossModel::RandomWalk {
            start: 0.5,
            sigma_per_sqrt_s: 0.1,
            lo: 0.05,
            hi: 0.95,
        };
        let mut p = model.build();
        let mut r = rng();
        let first = p.prr_at(SimTime::from_micros(1), &mut r);
        let later = p.prr_at(SimTime::from_micros(100_000_000), &mut r);
        assert!((first - later).abs() > 1e-6, "walk froze");
    }

    #[test]
    fn reflect_folds_correctly() {
        assert!((reflect(0.5, 0.0, 1.0) - 0.5).abs() < 1e-12);
        assert!((reflect(1.2, 0.0, 1.0) - 0.8).abs() < 1e-12);
        assert!((reflect(-0.3, 0.0, 1.0) - 0.3).abs() < 1e-12);
        assert!((reflect(2.1, 0.0, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let model = LossModel::GilbertElliott {
            prr_good: 0.9,
            prr_bad: 0.3,
            rate_gb: 1.0,
            rate_bg: 2.0,
        };
        let run = || {
            let mut p = model.build();
            let mut r = rng();
            (0..500)
                .map(|i| p.sample(SimTime::from_micros(i * 10_000), &mut r))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}
