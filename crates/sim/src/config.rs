//! Serializable simulation configuration.
//!
//! A [`SimConfig`] fully determines a run (together with the protocol
//! stack): placement, radio curve, MAC parameters, the temporal dynamics
//! layered over each link's base PRR, and the master seed.

use crate::link::LossModel;
use crate::mac::MacConfig;
use crate::radio::RadioModel;
use crate::rng::{RngHub, StreamKind};
use crate::topology::{Placement, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Temporal behaviour layered on top of each link's generated base PRR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkDynamics {
    /// Links keep their base PRR forever (i.i.d. Bernoulli loss).
    Static,
    /// Bursty Gilbert–Elliott loss around the base PRR: the Good state has
    /// PRR `base + lift` and the Bad state `base * bad_factor`, with the
    /// state mix chosen so the stationary mean equals the base PRR.
    Bursty {
        /// PRR lift in the Good state (clamped to 0.99).
        lift: f64,
        /// Multiplier on the base PRR in the Bad state (`0.0..1.0`).
        bad_factor: f64,
        /// Mean sojourn time of the Good+Bad cycle, in seconds.
        cycle_s: f64,
    },
    /// Sinusoidal PRR drift: amplitude `amp`, period `period_s`; each link
    /// gets a random phase so the network does not oscillate in unison.
    Drift {
        /// Oscillation amplitude.
        amp: f64,
        /// Period in seconds.
        period_s: f64,
    },
    /// Reflected random-walk PRR with the given volatility.
    Volatile {
        /// PRR standard deviation per √second.
        sigma_per_sqrt_s: f64,
    },
}

impl std::hash::Hash for LinkDynamics {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match *self {
            LinkDynamics::Static => state.write_u8(0),
            LinkDynamics::Bursty {
                lift,
                bad_factor,
                cycle_s,
            } => {
                state.write_u8(1);
                state.write_u64(lift.to_bits());
                state.write_u64(bad_factor.to_bits());
                state.write_u64(cycle_s.to_bits());
            }
            LinkDynamics::Drift { amp, period_s } => {
                state.write_u8(2);
                state.write_u64(amp.to_bits());
                state.write_u64(period_s.to_bits());
            }
            LinkDynamics::Volatile { sigma_per_sqrt_s } => {
                state.write_u8(3);
                state.write_u64(sigma_per_sqrt_s.to_bits());
            }
        }
    }
}

impl LinkDynamics {
    /// Builds one loss model per topology link.
    pub fn build_models(&self, topo: &Topology, hub: &RngHub) -> Vec<LossModel> {
        topo.links()
            .iter()
            .enumerate()
            .map(|(i, l)| self.model_for(l.base_prr, i, hub))
            .collect()
    }

    fn model_for(&self, base: f64, link_id: usize, hub: &RngHub) -> LossModel {
        match *self {
            LinkDynamics::Static => LossModel::Bernoulli { prr: base },
            LinkDynamics::Bursty {
                lift,
                bad_factor,
                cycle_s,
            } => {
                let prr_good = (base + lift).min(0.99);
                let prr_bad = (base * bad_factor).max(0.0);
                // Solve πG·good + (1-πG)·bad = base for the state mix.
                let pi_good = if prr_good > prr_bad {
                    ((base - prr_bad) / (prr_good - prr_bad)).clamp(0.05, 0.95)
                } else {
                    0.5
                };
                // rate_bg / (rate_gb + rate_bg) = πG with total cycle rate
                // fixed by cycle_s.
                let total_rate = 2.0 / cycle_s.max(1e-6);
                LossModel::GilbertElliott {
                    prr_good,
                    prr_bad,
                    rate_gb: total_rate * (1.0 - pi_good),
                    rate_bg: total_rate * pi_good,
                }
            }
            LinkDynamics::Drift { amp, period_s } => {
                let mut rng = hub.stream(StreamKind::LinkDynamics, link_id as u64, 0);
                LossModel::Sinusoidal {
                    base,
                    amp,
                    period_s,
                    phase: rng.gen::<f64>() * 2.0 * std::f64::consts::PI,
                }
            }
            LinkDynamics::Volatile { sigma_per_sqrt_s } => LossModel::RandomWalk {
                start: base,
                sigma_per_sqrt_s,
                lo: 0.05,
                hi: 0.98,
            },
        }
    }
}

/// Complete description of one simulated network.
///
/// `Hash` (float fields hashed by IEEE-754 bits throughout the config
/// tree) gives every config a stable content address; the bench harness
/// keys its run cache on it.
#[derive(Debug, Clone, Copy, PartialEq, Hash, Serialize, Deserialize)]
pub struct SimConfig {
    /// Node placement.
    pub placement: Placement,
    /// Radio propagation model.
    pub radio: RadioModel,
    /// MAC parameters.
    pub mac: MacConfig,
    /// Temporal link dynamics.
    pub dynamics: LinkDynamics,
    /// Master seed for all random streams.
    pub seed: u64,
}

impl SimConfig {
    /// A 200-node uniform-disk network with defaults matching the canonical
    /// evaluation scenario.
    pub fn canonical(seed: u64) -> Self {
        Self {
            placement: Placement::UniformDisk {
                n: 200,
                radius: 120.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed,
        }
    }

    /// The RNG hub derived from this config's seed.
    pub fn hub(&self) -> RngHub {
        RngHub::new(self.seed)
    }

    /// Generates the topology.
    pub fn topology(&self) -> Topology {
        Topology::generate(self.placement, &self.radio, &self.hub())
    }

    /// Generates the per-link loss models for `topo`.
    pub fn loss_models(&self, topo: &Topology) -> Vec<LossModel> {
        self.dynamics.build_models(topo, &self.hub())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_dynamics_preserve_base_prr() {
        let cfg = SimConfig::canonical(3);
        let topo = cfg.topology();
        let models = cfg.loss_models(&topo);
        for (m, l) in models.iter().zip(topo.links()) {
            assert_eq!(
                *m,
                LossModel::Bernoulli { prr: l.base_prr },
                "static dynamics must be plain Bernoulli"
            );
        }
    }

    #[test]
    fn bursty_dynamics_keep_stationary_mean() {
        let dyn_ = LinkDynamics::Bursty {
            lift: 0.15,
            bad_factor: 0.3,
            cycle_s: 20.0,
        };
        let hub = RngHub::new(1);
        for base in [0.3, 0.5, 0.7, 0.9] {
            let m = dyn_.model_for(base, 0, &hub);
            let stat = m.stationary_prr();
            // The πG clamp can shift extremes slightly; mid-range must match.
            assert!((stat - base).abs() < 0.05, "base {base} stationary {stat}");
        }
    }

    #[test]
    fn drift_gets_distinct_phases() {
        let cfg = SimConfig {
            dynamics: LinkDynamics::Drift {
                amp: 0.2,
                period_s: 300.0,
            },
            ..SimConfig::canonical(5)
        };
        let topo = cfg.topology();
        let models = cfg.loss_models(&topo);
        let phases: Vec<f64> = models
            .iter()
            .filter_map(|m| match m {
                LossModel::Sinusoidal { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(phases.len(), topo.links().len());
        // Not all identical.
        assert!(phases.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = SimConfig::canonical(77);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn same_config_same_topology() {
        let cfg = SimConfig::canonical(9);
        let a = cfg.topology();
        let b = cfg.topology();
        assert_eq!(a.links().len(), b.links().len());
    }
}
