//! Deterministic fault injection.
//!
//! Real deployments misbehave in ways well-formed loss cannot express:
//! bits flip in transit, frames arrive truncated, nodes crash and reboot,
//! and control-plane floods (model dissemination) go missing. This module
//! provides a [`FaultPlan`] — a seeded, schedulable source of such faults
//! that protocol stacks consult at receive time — with two guarantees:
//!
//! * **Bit-reproducibility.** Every fault draw comes from a named
//!   [`StreamKind::Fault`] stream derived from the master seed, so a
//!   faulted run replays byte-identically, and an A/B pair (faulted vs
//!   fault-free) sees the identical channel realisation everywhere else.
//! * **Zero perturbation when absent.** A run without a plan performs no
//!   fault draws at all; the fault layer costs nothing and changes nothing
//!   unless explicitly configured.
//!
//! The plan is *mechanism*, not *policy*: it decides whether and how to
//! corrupt a serialized frame payload (bit flips biased toward header or
//! body, or truncation), which nodes are crash-prone and when their
//! up/down phases flip (consumers drive `Ctx::set_radio`), and whether a
//! model-dissemination flood misses or reaches a node late. What a
//! corrupted frame *means* is the consuming protocol's problem — the
//! whole point is exercising its structural checks and quarantine paths.

use crate::rng::{splitmix64, RngHub, StreamKind};
use crate::time::SimDuration;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Salt mixed into per-node crash-proneness draws.
const CRASH_PRONE_SALT: u64 = 0xC4A5_0001;
/// Salt mixed into per-node crash phase-length streams.
const CRASH_PHASE_SALT: u64 = 0xC4A5_0002;
/// Stream id family of the per-receiver frame-corruption streams (the
/// receiver node id is the stream index).
const FRAME_STREAM: u64 = 0xF7A3_E001;

/// Crash/reboot fault windows: a deterministic subset of nodes alternates
/// exponentially distributed up and down phases (radio off while down).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashFaultConfig {
    /// Fraction of non-sink nodes that are crash-prone (`0.0..=1.0`).
    pub node_fraction: f64,
    /// Mean uptime between crashes.
    pub mean_uptime: SimDuration,
    /// Mean outage duration per crash.
    pub mean_downtime: SimDuration,
}

/// Dissemination faults against the model-update control plane: each
/// epoch flood independently misses some nodes entirely and reaches
/// others late.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisseminationFaultConfig {
    /// Per-node probability of missing an epoch flood entirely (the node
    /// never activates that epoch).
    pub drop_prob: f64,
    /// Mean extra propagation delay (exponential) added on top of the
    /// modelled flood schedule.
    pub mean_extra_delay: SimDuration,
}

/// Complete fault-injection configuration (serializable; rides inside run
/// specs and JSON scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per delivered data-frame probability of corruption.
    pub frame_corrupt_prob: f64,
    /// Bit flips applied to each corrupted frame (when not truncated).
    pub flips_per_frame: u8,
    /// Given corruption, probability the frame is truncated instead of
    /// bit-flipped (cutting a random-length tail).
    pub truncate_prob: f64,
    /// Given a bit flip, probability it targets the fixed header region
    /// rather than the variable body.
    pub header_bias: f64,
    /// Optional node crash/reboot windows.
    pub crash: Option<CrashFaultConfig>,
    /// Optional model-dissemination faults.
    pub dissemination: Option<DisseminationFaultConfig>,
}

impl std::hash::Hash for CrashFaultConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.node_fraction.to_bits());
        state.write_u64(self.mean_uptime.as_micros());
        state.write_u64(self.mean_downtime.as_micros());
    }
}

impl std::hash::Hash for DisseminationFaultConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.drop_prob.to_bits());
        state.write_u64(self.mean_extra_delay.as_micros());
    }
}

impl std::hash::Hash for FaultConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.frame_corrupt_prob.to_bits());
        state.write_u8(self.flips_per_frame);
        state.write_u64(self.truncate_prob.to_bits());
        state.write_u64(self.header_bias.to_bits());
        hash_option(self.crash.as_ref(), state);
        hash_option(self.dissemination.as_ref(), state);
    }
}

/// Hashes an `Option` with an explicit presence tag (mirrors the derived
/// encoding, kept local so manual impls stay self-contained).
fn hash_option<T: std::hash::Hash, H: std::hash::Hasher>(v: Option<&T>, state: &mut H) {
    match v {
        None => state.write_u8(0),
        Some(inner) => {
            state.write_u8(1);
            inner.hash(state);
        }
    }
}

impl FaultConfig {
    /// A pure frame-corruption plan at the given per-frame probability:
    /// two bit flips per hit frame, 10% truncations, mild header bias.
    pub fn corruption(frame_corrupt_prob: f64) -> Self {
        Self {
            frame_corrupt_prob,
            flips_per_frame: 2,
            truncate_prob: 0.1,
            header_bias: 0.25,
            crash: None,
            dissemination: None,
        }
    }

    /// No faults at all — useful as a serde baseline.
    pub fn none() -> Self {
        Self {
            frame_corrupt_prob: 0.0,
            flips_per_frame: 0,
            truncate_prob: 0.0,
            header_bias: 0.0,
            crash: None,
            dissemination: None,
        }
    }
}

/// What [`FaultPlan::corrupt_frame`] did to a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Bits were flipped in place.
    BitFlips {
        /// Number of flips applied.
        flips: u8,
        /// Whether any flip landed in the fixed header region.
        header_hit: bool,
    },
    /// A tail of the frame was cut off.
    Truncated {
        /// Bytes removed.
        removed: usize,
    },
}

/// Cumulative injection counters (what the plan actually did).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInjection {
    /// Frames corrupted (flipped or truncated).
    pub frames_corrupted: u64,
    /// Total bits flipped across all frames.
    pub bit_flips: u64,
    /// Frames truncated.
    pub truncations: u64,
    /// Frames with at least one flip in the fixed header region.
    pub header_hits: u64,
}

/// A seeded, schedulable fault source (see module docs).
///
/// Shared via `Arc` across protocol instances. Frame corruption draws
/// from a *per-receiver-node* stream (lazily seeded from the hub with the
/// node id as the stream index): each node's frame-receive order is
/// deterministic and shard-invariant on the sharded engine — its Deliver
/// events pop in `(time, key)` order inside its owning shard — so keying
/// draws by receiver keeps faulted runs byte-identical at every shard and
/// thread count. A single delivery-order stream would not survive shards
/// interleaving their windows.
pub struct FaultPlan {
    cfg: FaultConfig,
    hub: RngHub,
    frame_rngs: Mutex<std::collections::HashMap<u32, SmallRng>>,
    frames_corrupted: AtomicU64,
    bit_flips: AtomicU64,
    truncations: AtomicU64,
    header_hits: AtomicU64,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("injection", &self.injection())
            .finish()
    }
}

/// Exponential draw with the given mean, from a uniform `f64` in `[0,1)`.
fn exponential(mean: SimDuration, rng: &mut SmallRng) -> SimDuration {
    let u: f64 = rng.gen();
    // Clamp away from 1.0 so ln never sees zero.
    let span = -(1.0 - u.min(1.0 - 1e-12)).ln();
    SimDuration::from_micros((mean.as_micros() as f64 * span) as u64)
}

impl FaultPlan {
    /// Builds a plan from its configuration and the run's RNG hub.
    pub fn new(cfg: FaultConfig, hub: &RngHub) -> Self {
        Self {
            cfg,
            hub: *hub,
            frame_rngs: Mutex::new(std::collections::HashMap::new()),
            frames_corrupted: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            truncations: AtomicU64::new(0),
            header_hits: AtomicU64::new(0),
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Snapshot of everything injected so far.
    pub fn injection(&self) -> FaultInjection {
        FaultInjection {
            frames_corrupted: self.frames_corrupted.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            header_hits: self.header_hits.load(Ordering::Relaxed),
        }
    }

    /// Decides whether to corrupt a serialized frame payload and applies
    /// the fault in place. `receiver` is the node receiving the frame and
    /// selects the RNG stream; `header_len` bounds the fixed header region
    /// the `header_bias` knob targets. Returns what was injected, or
    /// `None` when the frame passes untouched.
    ///
    /// Call this once per received frame, in the receiver's frame-arrival
    /// order — each receiver's draw sequence is part of the run's
    /// deterministic replay, and per-receiver ordering is exactly what the
    /// sharded engine guarantees.
    pub fn corrupt_frame(
        &self,
        receiver: u32,
        bytes: &mut Vec<u8>,
        header_len: usize,
    ) -> Option<InjectedFault> {
        if self.cfg.frame_corrupt_prob <= 0.0 || bytes.is_empty() {
            return None;
        }
        let mut streams = self.frame_rngs.lock();
        let rng = streams.entry(receiver).or_insert_with(|| {
            self.hub
                .stream(StreamKind::Fault, FRAME_STREAM, u64::from(receiver))
        });
        if rng.gen::<f64>() >= self.cfg.frame_corrupt_prob {
            return None;
        }
        self.frames_corrupted.fetch_add(1, Ordering::Relaxed);
        if rng.gen::<f64>() < self.cfg.truncate_prob {
            let removed = rng.gen_range(1..=bytes.len());
            bytes.truncate(bytes.len() - removed);
            self.truncations.fetch_add(1, Ordering::Relaxed);
            return Some(InjectedFault::Truncated { removed });
        }
        let flips = u8::try_from(usize::from(self.cfg.flips_per_frame.max(1)).min(bytes.len() * 8))
            .unwrap_or(u8::MAX);
        let header_len = header_len.min(bytes.len());
        let mut header_hit = false;
        // Distinct bit positions: two flips on the same bit cancel, and a
        // "corrupted" frame must genuinely differ so every injection has a
        // quarantinable effect downstream.
        let mut chosen: Vec<(usize, u8)> = Vec::with_capacity(usize::from(flips));
        for _ in 0..flips {
            let (idx, bit) = loop {
                let in_header = header_len > 0
                    && (header_len == bytes.len() || rng.gen::<f64>() < self.cfg.header_bias);
                let idx = if in_header {
                    rng.gen_range(0..header_len)
                } else {
                    rng.gen_range(header_len..bytes.len())
                };
                let bit = rng.gen_range(0..8u8);
                if !chosen.contains(&(idx, bit)) {
                    break (idx, bit);
                }
            };
            chosen.push((idx, bit));
            header_hit |= idx < header_len;
            bytes[idx] ^= 1u8 << bit;
        }
        self.bit_flips
            .fetch_add(u64::from(flips), Ordering::Relaxed);
        if header_hit {
            self.header_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(InjectedFault::BitFlips { flips, header_hit })
    }

    /// Whether node `node` is crash-prone under this plan. Deterministic
    /// in `(seed, node)`; the sink (node 0) is never crash-prone.
    pub fn crash_prone(&self, node: u32) -> bool {
        let Some(crash) = self.cfg.crash else {
            return false;
        };
        if node == 0 || crash.node_fraction <= 0.0 {
            return false;
        }
        let h = splitmix64(self.hub.derive_seed(
            StreamKind::Fault,
            CRASH_PRONE_SALT,
            u64::from(node),
        ));
        (h as f64 / u64::MAX as f64) < crash.node_fraction
    }

    /// The `k`-th (uptime, downtime) phase pair of node `node`'s crash
    /// schedule. Pure in `(seed, node, k)` — consumers walk `k` forward as
    /// phases elapse, so the schedule needs no stored state.
    ///
    /// Both durations are exponential around the configured means, with a
    /// one-tick floor so phases always advance simulated time.
    pub fn crash_phase(&self, node: u32, k: u32) -> (SimDuration, SimDuration) {
        let crash = self
            .cfg
            .crash
            .unwrap_or_else(|| panic!("crash_phase without crash config"));
        let seed = self.hub.derive_seed(
            StreamKind::Fault,
            CRASH_PHASE_SALT ^ u64::from(node),
            u64::from(k),
        );
        let mut rng = crate::rng::RngHub::new(seed).stream(StreamKind::Fault, 0, 0);
        let up = exponential(crash.mean_uptime, &mut rng).max(SimDuration::from_micros(1));
        let down = exponential(crash.mean_downtime, &mut rng).max(SimDuration::from_micros(1));
        (up, down)
    }

    /// Dissemination fate of `(node, epoch)`: `None` when the flood never
    /// reaches the node, `Some(extra)` with the extra delay to add
    /// otherwise (zero without dissemination faults). Pure in
    /// `(seed, node, epoch)`.
    pub fn dissemination_fault(&self, node: u32, epoch: u64) -> Option<SimDuration> {
        let Some(f) = self.cfg.dissemination else {
            return Some(SimDuration::ZERO);
        };
        let mut rng = self
            .hub
            .stream(StreamKind::Fault, 0xD15F_0000 ^ u64::from(node), epoch);
        if rng.gen::<f64>() < f.drop_prob {
            return None;
        }
        Some(exponential(f.mean_extra_delay, &mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cfg: FaultConfig) -> FaultPlan {
        FaultPlan::new(cfg, &RngHub::new(99))
    }

    #[test]
    fn zero_rate_never_corrupts() {
        let p = plan(FaultConfig::none());
        let mut bytes = vec![0u8; 32];
        for _ in 0..100 {
            assert_eq!(p.corrupt_frame(7, &mut bytes, 20), None);
        }
        assert_eq!(bytes, vec![0u8; 32]);
        assert_eq!(p.injection(), FaultInjection::default());
    }

    #[test]
    fn corruption_is_deterministic() {
        let run = || {
            let p = plan(FaultConfig::corruption(0.3));
            let mut mutations = Vec::new();
            for i in 0..200u8 {
                let mut bytes = vec![i; 24];
                let hit = p.corrupt_frame(7, &mut bytes, 20);
                mutations.push((hit.is_some(), bytes));
            }
            (mutations, p.injection())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corruption_rate_and_counters_match() {
        let p = plan(FaultConfig::corruption(0.25));
        let (mut hits, n) = (0u64, 4000);
        for _ in 0..n {
            let mut bytes = vec![0xAAu8; 30];
            if p.corrupt_frame(7, &mut bytes, 20).is_some() {
                hits += 1;
                assert_ne!(bytes, vec![0xAAu8; 30], "a corrupted frame must change");
            }
        }
        let inj = p.injection();
        assert_eq!(inj.frames_corrupted, hits);
        let rate = hits as f64 / f64::from(n);
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
        assert!(inj.truncations > 0, "some frames truncate at 10%");
        assert!(inj.bit_flips >= 2 * (hits - inj.truncations));
    }

    #[test]
    fn truncation_only_plan_always_shortens() {
        let cfg = FaultConfig {
            frame_corrupt_prob: 1.0,
            truncate_prob: 1.0,
            ..FaultConfig::corruption(1.0)
        };
        let p = plan(cfg);
        for _ in 0..50 {
            let mut bytes = vec![1u8; 25];
            match p.corrupt_frame(7, &mut bytes, 20) {
                Some(InjectedFault::Truncated { removed }) => {
                    assert_eq!(bytes.len(), 25 - removed);
                    assert!(removed >= 1);
                }
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn header_only_frames_flip_in_header() {
        let cfg = FaultConfig {
            truncate_prob: 0.0,
            header_bias: 0.0, // bias irrelevant: body is empty
            ..FaultConfig::corruption(1.0)
        };
        let p = plan(cfg);
        let mut bytes = vec![0u8; 20]; // fixed header only, no body
        let fault = p.corrupt_frame(7, &mut bytes, 20).expect("must corrupt");
        assert!(matches!(
            fault,
            InjectedFault::BitFlips {
                header_hit: true,
                ..
            }
        ));
        assert_ne!(bytes, vec![0u8; 20]);
    }

    #[test]
    fn crash_schedule_is_pure_and_plausible() {
        let cfg = FaultConfig {
            crash: Some(CrashFaultConfig {
                node_fraction: 0.5,
                mean_uptime: SimDuration::from_secs(300),
                mean_downtime: SimDuration::from_secs(60),
            }),
            ..FaultConfig::none()
        };
        let p = plan(cfg);
        let q = plan(cfg);
        assert!(!p.crash_prone(0), "sink never crashes");
        let prone: Vec<u32> = (1..200).filter(|&n| p.crash_prone(n)).collect();
        assert!(
            (60..140).contains(&prone.len()),
            "about half of 199 nodes: {}",
            prone.len()
        );
        let n = prone[0];
        assert_eq!(
            p.crash_phase(n, 0),
            q.crash_phase(n, 0),
            "pure in (seed,node,k)"
        );
        assert_ne!(p.crash_phase(n, 0), p.crash_phase(n, 1));
        // Mean sanity over many draws.
        let mean_up: f64 = (0..500)
            .map(|k| p.crash_phase(n, k).0.as_secs_f64())
            .sum::<f64>()
            / 500.0;
        assert!((150.0..450.0).contains(&mean_up), "mean uptime {mean_up}");
    }

    #[test]
    fn dissemination_faults_drop_and_delay() {
        let cfg = FaultConfig {
            dissemination: Some(DisseminationFaultConfig {
                drop_prob: 0.3,
                mean_extra_delay: SimDuration::from_secs(5),
            }),
            ..FaultConfig::none()
        };
        let p = plan(cfg);
        let fates: Vec<_> = (0..1000u32).map(|n| p.dissemination_fault(n, 1)).collect();
        let dropped = fates.iter().filter(|f| f.is_none()).count();
        assert!((200..400).contains(&dropped), "dropped {dropped}");
        assert!(fates.iter().flatten().any(|d| *d > SimDuration::ZERO));
        // Pure per (node, epoch); different epochs re-roll.
        assert_eq!(p.dissemination_fault(7, 3), p.dissemination_fault(7, 3));
        // Without dissemination config: always reached, zero extra.
        let bare = plan(FaultConfig::none());
        assert_eq!(bare.dissemination_fault(7, 3), Some(SimDuration::ZERO));
    }

    #[test]
    fn config_serde_round_trips() {
        let cfg = FaultConfig {
            crash: Some(CrashFaultConfig {
                node_fraction: 0.1,
                mean_uptime: SimDuration::from_secs(600),
                mean_downtime: SimDuration::from_secs(30),
            }),
            dissemination: Some(DisseminationFaultConfig {
                drop_prob: 0.05,
                mean_extra_delay: SimDuration::from_secs(2),
            }),
            ..FaultConfig::corruption(0.01)
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
