//! Engine-agnostic driving surface.
//!
//! The single-loop [`Engine`] and the multi-core [`ShardedEngine`] expose
//! the same lifecycle (start, advance time, observe, read totals), but as
//! distinct concrete types. [`SimDriver`] abstracts the part of that
//! surface that harnesses — the scenario runner, metrics sampling, figure
//! sweeps — actually need, so they can be written once and driven by
//! either engine.
//!
//! The trait deliberately exposes *reads as snapshots*: `trace_snapshot`
//! returns an owned [`Trace`] because the sharded engine has no single
//! trace to borrow (each shard owns the counters for its outgoing links;
//! the snapshot merges them). Harness-side sampling cadences are coarse,
//! so the copy is irrelevant next to the simulation itself.

use crate::engine::{Engine, Protocol};
use crate::obs::Observer;
use crate::profile::Profiler;
use crate::shard::ShardedEngine;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::trace::Trace;
use std::sync::Arc;

/// What a simulation harness needs from an engine, independent of whether
/// the engine is the single-loop or the sharded one.
pub trait SimDriver<P: Protocol> {
    /// Initialises every node (calls `on_init`). Must be called exactly
    /// once, before the first [`run_for`](Self::run_for).
    fn start(&mut self);
    /// Advances simulated time by `span`, processing all events inside it.
    fn run_for(&mut self, span: SimDuration);
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Total events dispatched so far.
    fn events_processed(&self) -> u64;
    /// The (shared, immutable) topology.
    fn topology(&self) -> &Topology;
    /// Read access to one node's protocol state.
    fn protocol(&self, node: NodeId) -> &P;
    /// Current MAC transmit-queue depth of `node`.
    fn queue_depth(&self, node: NodeId) -> usize;
    /// Owned snapshot of the ground-truth trace (merged across shards for
    /// the sharded engine).
    fn trace_snapshot(&self) -> Trace;
    /// Installs the structured-event observer. Must be called before
    /// [`start`](Self::start).
    fn set_observer(&mut self, observer: Arc<dyn Observer>);
    /// The hot-path profiler, when one is installed. On the sharded
    /// engine this is the run-level profiler the per-worker-thread
    /// instances drain into at run-call boundaries, so a subsystem's wall
    /// time aggregates across every worker thread.
    fn profiler(&self) -> Option<&Profiler>;
}

impl<P: Protocol> SimDriver<P> for Engine<P> {
    fn start(&mut self) {
        Engine::start(self);
    }
    fn run_for(&mut self, span: SimDuration) {
        Engine::run_for(self, span);
    }
    fn now(&self) -> SimTime {
        Engine::now(self)
    }
    fn events_processed(&self) -> u64 {
        Engine::events_processed(self)
    }
    fn topology(&self) -> &Topology {
        Engine::topology(self)
    }
    fn protocol(&self, node: NodeId) -> &P {
        Engine::protocol(self, node)
    }
    fn queue_depth(&self, node: NodeId) -> usize {
        Engine::queue_depth(self, node)
    }
    fn trace_snapshot(&self) -> Trace {
        Engine::trace(self).clone()
    }
    fn set_observer(&mut self, observer: Arc<dyn Observer>) {
        Engine::set_observer(self, observer);
    }
    fn profiler(&self) -> Option<&Profiler> {
        Engine::profiler(self)
    }
}

impl<P: Protocol + Send> SimDriver<P> for ShardedEngine<P> {
    fn start(&mut self) {
        ShardedEngine::start(self);
    }
    fn run_for(&mut self, span: SimDuration) {
        ShardedEngine::run_for(self, span);
    }
    fn now(&self) -> SimTime {
        ShardedEngine::now(self)
    }
    fn events_processed(&self) -> u64 {
        ShardedEngine::events_processed(self)
    }
    fn topology(&self) -> &Topology {
        ShardedEngine::topology(self)
    }
    fn protocol(&self, node: NodeId) -> &P {
        ShardedEngine::protocol(self, node)
    }
    fn queue_depth(&self, node: NodeId) -> usize {
        ShardedEngine::queue_depth(self, node)
    }
    fn trace_snapshot(&self) -> Trace {
        ShardedEngine::trace(self)
    }
    fn set_observer(&mut self, observer: Arc<dyn Observer>) {
        ShardedEngine::set_observer(self, observer);
    }
    fn profiler(&self) -> Option<&Profiler> {
        ShardedEngine::profiler(self)
    }
}
