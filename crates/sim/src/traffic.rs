//! Application traffic patterns.
//!
//! The data-collection workloads the paper targets report either on a
//! fixed schedule (periodic sensing, with jitter to avoid network-wide
//! synchronisation) or event-driven (well modelled as Poisson). A
//! [`TrafficPattern`] yields successive inter-arrival times from the
//! node's deterministic RNG stream.

use crate::time::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// When the next packet is generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Fixed mean period with uniform ±50% jitter (desynchronises nodes
    /// without changing the long-run rate).
    Periodic {
        /// Mean inter-packet period.
        period: SimDuration,
    },
    /// Poisson arrivals (exponential inter-arrival times).
    Poisson {
        /// Mean inter-packet period (1 / rate).
        mean_period: SimDuration,
    },
}

impl TrafficPattern {
    /// Long-run mean inter-arrival time.
    pub fn mean_period(&self) -> SimDuration {
        match *self {
            TrafficPattern::Periodic { period } => period,
            TrafficPattern::Poisson { mean_period } => mean_period,
        }
    }

    /// Draws the next inter-arrival interval.
    pub fn next_interval(&self, rng: &mut SmallRng) -> SimDuration {
        match *self {
            TrafficPattern::Periodic { period } => {
                let base = period.as_micros().max(2);
                SimDuration::from_micros(rng.gen_range(base / 2..base + base / 2))
            }
            TrafficPattern::Poisson { mean_period } => {
                let mean = mean_period.as_micros().max(1) as f64;
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                // Inverse-CDF exponential draw, clamped to keep pathological
                // tails from stalling a node for hours.
                let draw = -mean * u.ln();
                SimDuration::from_micros((draw as u64).clamp(1, (mean * 20.0) as u64))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RngHub, StreamKind};

    fn rng() -> SmallRng {
        RngHub::new(7).stream(StreamKind::Traffic, 3, 0)
    }

    fn mean_of(pattern: TrafficPattern, n: u32) -> f64 {
        let mut r = rng();
        let total: u64 = (0..n)
            .map(|_| pattern.next_interval(&mut r).as_micros())
            .sum();
        total as f64 / f64::from(n)
    }

    #[test]
    fn periodic_mean_matches() {
        let p = TrafficPattern::Periodic {
            period: SimDuration::from_secs(10),
        };
        let mean = mean_of(p, 20_000);
        assert!((mean / 1e6 - 10.0).abs() < 0.1, "mean {}s", mean / 1e6);
    }

    #[test]
    fn periodic_jitter_bounded() {
        let p = TrafficPattern::Periodic {
            period: SimDuration::from_millis(100),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let iv = p.next_interval(&mut r).as_micros();
            assert!((50_000..150_000).contains(&iv), "interval {iv}");
        }
    }

    #[test]
    fn poisson_mean_matches() {
        let p = TrafficPattern::Poisson {
            mean_period: SimDuration::from_secs(10),
        };
        let mean = mean_of(p, 50_000);
        assert!((mean / 1e6 - 10.0).abs() < 0.2, "mean {}s", mean / 1e6);
    }

    #[test]
    fn poisson_is_memoryless_shaped() {
        // CV of exponential ≈ 1; periodic jitter CV ≈ 0.29.
        let cv = |pattern: TrafficPattern| -> f64 {
            let mut r = rng();
            let xs: Vec<f64> = (0..20_000)
                .map(|_| pattern.next_interval(&mut r).as_micros() as f64)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / mean
        };
        let cv_poisson = cv(TrafficPattern::Poisson {
            mean_period: SimDuration::from_secs(5),
        });
        let cv_periodic = cv(TrafficPattern::Periodic {
            period: SimDuration::from_secs(5),
        });
        assert!(cv_poisson > 0.9, "poisson CV {cv_poisson}");
        assert!(cv_periodic < 0.35, "periodic CV {cv_periodic}");
    }

    #[test]
    fn intervals_always_positive() {
        for pattern in [
            TrafficPattern::Periodic {
                period: SimDuration::from_micros(3),
            },
            TrafficPattern::Poisson {
                mean_period: SimDuration::from_micros(3),
            },
        ] {
            let mut r = rng();
            for _ in 0..1000 {
                assert!(pattern.next_interval(&mut r).as_micros() >= 1);
            }
        }
    }
}
