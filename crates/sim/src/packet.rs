//! Frames and payloads exchanged through the simulated network.
//!
//! The simulator is deliberately agnostic about what protocols put inside
//! frames: a [`Payload`] is an `Arc<dyn Any>` that the receiving protocol
//! downcasts back to its concrete message type. Radio airtime and overhead
//! accounting use the explicit `wire_bytes` field, which protocols must set
//! to the frame's true serialized size (header + payload as it would appear
//! on air).

use crate::time::SimTime;
use crate::topology::NodeId;
use std::any::Any;
use std::sync::Arc;

/// Opaque protocol payload.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// Protocol-defined timer identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u32);

/// Handle identifying an asynchronous unicast send; echoed in [`SendDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SendToken(pub u64);

/// A frame as delivered to a receiving protocol.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Transmitter of this frame.
    pub src: NodeId,
    /// The node this copy was delivered to. For unicast this is the
    /// addressed destination; for broadcast it is one of the receivers.
    pub dst: NodeId,
    /// True for link-layer broadcast (no ACK, single attempt).
    pub is_broadcast: bool,
    /// Attempt number (1-based) of the transmission that produced this
    /// copy. When an ACK is lost the sender retries and the receiver sees
    /// *duplicate* copies with increasing attempt numbers — receivers must
    /// deduplicate and keep the first copy, whose attempt number is exactly
    /// the number of transmissions until first success (the geometric loss
    /// sample Dophy's estimator consumes).
    pub attempt: u16,
    /// Full frame size on air, in bytes (set by the sender).
    pub wire_bytes: usize,
    /// Simulated reception time.
    pub rx_time: SimTime,
    /// Causal lifecycle trace id carried by this frame, when the sender
    /// tagged its send (see [`crate::obs::SpanEvent`]). Deterministic —
    /// derived from protocol state, never from RNG — and ignored by the
    /// engine except for span emission, so tracing cannot perturb a run.
    pub trace_id: Option<u64>,
    /// Protocol payload.
    pub payload: Payload,
}

impl Frame {
    /// Downcasts the payload to a concrete message type.
    pub fn payload_as<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

/// Completion report for a unicast send (or queue drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendDone {
    /// Token returned by the send call.
    pub token: SendToken,
    /// Addressed destination.
    pub dst: NodeId,
    /// True if an ACK was received.
    pub acked: bool,
    /// Physical transmissions made. Zero means the frame was dropped from
    /// the MAC queue without any attempt (queue overflow or no such link).
    pub attempts: u16,
}

impl SendDone {
    /// True if the frame never went on air.
    pub fn was_dropped(&self) -> bool {
        self.attempts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Msg {
        x: u32,
    }

    #[test]
    fn payload_downcast() {
        let f = Frame {
            src: NodeId(1),
            dst: NodeId(2),
            is_broadcast: false,
            attempt: 1,
            wire_bytes: 40,
            rx_time: SimTime::ZERO,
            trace_id: None,
            payload: Arc::new(Msg { x: 7 }),
        };
        assert_eq!(f.payload_as::<Msg>(), Some(&Msg { x: 7 }));
        assert!(f.payload_as::<String>().is_none());
    }

    #[test]
    fn send_done_drop_flag() {
        let ok = SendDone {
            token: SendToken(1),
            dst: NodeId(2),
            acked: true,
            attempts: 3,
        };
        assert!(!ok.was_dropped());
        let dropped = SendDone {
            token: SendToken(2),
            dst: NodeId(2),
            acked: false,
            attempts: 0,
        };
        assert!(dropped.was_dropped());
    }
}
