//! Node placement and connectivity-graph generation.
//!
//! A [`Topology`] fixes node positions, the sink, and the set of usable
//! directed links with their base PRRs. The simulation engine later attaches
//! a stochastic [`crate::link::LossProcess`] to each link; routing discovers
//! links through beacons; the sink's decoder consults the same neighbor
//! tables (mirroring the control-plane topology reports a real deployment
//! would collect).

use crate::radio::RadioModel;
use crate::rng::{RngHub, StreamKind};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Node identifier. The sink is always [`NodeId::SINK`] (id 0).
///
/// Ids are `u32`: dense per-node arrays stay cheap while 10k–100k-node
/// topologies fit without aliasing. Construct from container indices with
/// [`NodeId::from_index`] / [`NodeId::try_from_index`] — never with a raw
/// `as` cast, which would silently wrap past the representable range.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The data sink / collection root.
    pub const SINK: NodeId = NodeId(0);

    /// Index into dense per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked construction from a container index; `None` past `u32`.
    pub fn try_from_index(i: usize) -> Option<NodeId> {
        u32::try_from(i).ok().map(NodeId)
    }

    /// Construction from a container index known to be in range (loops
    /// bounded by an existing topology's `node_count`).
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX` instead of wrapping.
    pub fn from_index(i: usize) -> NodeId {
        Self::try_from_index(i).unwrap_or_else(|| panic!("node index {i} exceeds NodeId range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Typed topology-construction failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// The placement asks for more nodes than [`NodeId`] can address.
    /// Detected before any per-node allocation happens.
    TooManyNodes {
        /// Nodes the placement would produce.
        requested: u64,
        /// Largest representable node count.
        max: u64,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::TooManyNodes { requested, max } => write!(
                f,
                "placement produces {requested} nodes but NodeId addresses at most {max}"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A usable directed link with its generated base reception ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Transmitter.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Base PRR generated from the radio model (before any temporal loss
    /// process is layered on top).
    pub base_prr: f64,
}

/// Node placement schemes.
///
/// `Hash` runs over the IEEE-754 bit patterns of the float fields so a
/// placement can participate in stable content-address keys (bench run
/// cache); config constructors never produce `-0.0`/NaN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// `side × side` grid with the given spacing (m); sink at a corner.
    Grid {
        /// Nodes per side.
        side: u32,
        /// Grid spacing in metres.
        spacing: f64,
    },
    /// `n` nodes uniform in a disk of the given radius; sink at the centre.
    UniformDisk {
        /// Total number of nodes (including the sink).
        n: u32,
        /// Disk radius in metres.
        radius: f64,
    },
    /// `n` nodes in a line with the given spacing; sink at one end.
    /// Produces maximal path lengths — used for encoding-overhead sweeps.
    Line {
        /// Total number of nodes (including the sink).
        n: u32,
        /// Inter-node spacing in metres.
        spacing: f64,
    },
    /// Clustered deployment: `clusters` groups of `per_cluster` nodes, each
    /// group uniform in a small disk around a uniformly placed centre; the
    /// sink sits at the origin. Models room/zone deployments with dense
    /// intra-cluster and sparse inter-cluster links.
    Clustered {
        /// Number of clusters.
        clusters: u32,
        /// Nodes per cluster.
        per_cluster: u32,
        /// Radius of the deployment area (cluster centres).
        area_radius: f64,
        /// Radius of each cluster.
        cluster_radius: f64,
    },
}

impl std::hash::Hash for Placement {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match *self {
            Placement::Grid { side, spacing } => {
                state.write_u8(0);
                state.write_u32(side);
                state.write_u64(spacing.to_bits());
            }
            Placement::UniformDisk { n, radius } => {
                state.write_u8(1);
                state.write_u32(n);
                state.write_u64(radius.to_bits());
            }
            Placement::Line { n, spacing } => {
                state.write_u8(2);
                state.write_u32(n);
                state.write_u64(spacing.to_bits());
            }
            Placement::Clustered {
                clusters,
                per_cluster,
                area_radius,
                cluster_radius,
            } => {
                state.write_u8(3);
                state.write_u32(clusters);
                state.write_u32(per_cluster);
                state.write_u64(area_radius.to_bits());
                state.write_u64(cluster_radius.to_bits());
            }
        }
    }
}

impl Placement {
    /// Number of nodes this placement produces (before any capacity
    /// check — see [`Topology::try_generate`]).
    pub fn node_count_u64(&self) -> u64 {
        match *self {
            Placement::Grid { side, .. } => u64::from(side) * u64::from(side),
            Placement::UniformDisk { n, .. } | Placement::Line { n, .. } => u64::from(n),
            Placement::Clustered {
                clusters,
                per_cluster,
                ..
            } => 1 + u64::from(clusters) * u64::from(per_cluster),
        }
    }

    /// Number of nodes this placement produces.
    pub fn node_count(&self) -> usize {
        usize::try_from(self.node_count_u64()).expect("node count fits usize")
    }

    /// Generates node positions; index 0 is the sink.
    pub fn positions(&self, hub: &RngHub) -> Vec<Position> {
        match *self {
            Placement::Grid { side, spacing } => {
                let mut pos = Vec::with_capacity(self.node_count());
                for r in 0..side {
                    for c in 0..side {
                        pos.push(Position {
                            x: f64::from(c) * spacing,
                            y: f64::from(r) * spacing,
                        });
                    }
                }
                pos
            }
            Placement::UniformDisk { n, radius } => {
                let mut rng = hub.stream(StreamKind::Topology, 0xD15C, 0);
                let mut pos = Vec::with_capacity(n as usize);
                pos.push(Position { x: 0.0, y: 0.0 }); // sink at centre
                for _ in 1..n {
                    // Uniform in the disk via sqrt radius transform.
                    let r = radius * rng.gen::<f64>().sqrt();
                    let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    pos.push(Position {
                        x: r * theta.cos(),
                        y: r * theta.sin(),
                    });
                }
                pos
            }
            Placement::Line { n, spacing } => (0..n)
                .map(|i| Position {
                    x: f64::from(i) * spacing,
                    y: 0.0,
                })
                .collect(),
            Placement::Clustered {
                clusters,
                per_cluster,
                area_radius,
                cluster_radius,
            } => {
                let mut rng = hub.stream(StreamKind::Topology, 0xC1A5, 0);
                let mut pos = Vec::with_capacity(self.node_count());
                pos.push(Position { x: 0.0, y: 0.0 }); // sink
                for _ in 0..clusters {
                    let r = area_radius * rng.gen::<f64>().sqrt();
                    let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    let (cx, cy) = (r * theta.cos(), r * theta.sin());
                    for _ in 0..per_cluster {
                        let rr = cluster_radius * rng.gen::<f64>().sqrt();
                        let tt = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                        pos.push(Position {
                            x: cx + rr * tt.cos(),
                            y: cy + rr * tt.sin(),
                        });
                    }
                }
                pos
            }
        }
    }
}

/// Immutable network structure: positions plus usable directed links.
///
/// Adjacency is stored CSR-style: one flat neighbor array (and a parallel
/// link-id array) with per-node offsets, kept in descending base-PRR order
/// for routing's candidate scans, plus a second dst-sorted pair of flat
/// arrays so [`link_id`](Self::link_id) is a binary search within one
/// node's out-degree. (A dense n² dst→link matrix bought O(1) lookup up to
/// the 1000-node scale target, but costs 400 MB at 10k nodes.) All of it
/// is derived from `positions` + `links`, so only those two travel on the
/// wire (the manual serde impls below rebuild the rest through
/// [`TopologyWire`]).
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    links: Vec<LinkSpec>,
    /// CSR offsets: node `u`'s out-edges occupy `adj_offsets[u] ..
    /// adj_offsets[u+1]` of the flat arrays below.
    adj_offsets: Vec<u32>,
    /// Flat out-neighbor array, per node sorted by descending base PRR
    /// (so the first entry of a node's range is its best candidate).
    adj_targets: Vec<NodeId>,
    /// Parallel to `adj_targets`: index into `links`.
    adj_links: Vec<u32>,
    /// Flat out-neighbor array, per node sorted by ascending dst id — the
    /// binary-search index behind [`link_id`](Self::link_id).
    adj_dst_sorted: Vec<NodeId>,
    /// Parallel to `adj_dst_sorted`: index into `links`.
    adj_dst_links: Vec<u32>,
}

/// Serialized form of [`Topology`]: the generated data only, with every
/// derived index rebuilt on deserialization.
#[derive(Serialize, Deserialize)]
struct TopologyWire {
    positions: Vec<Position>,
    links: Vec<LinkSpec>,
}

impl Serialize for Topology {
    fn to_value(&self) -> serde::Value {
        TopologyWire {
            positions: self.positions.clone(),
            links: self.links.clone(),
        }
        .to_value()
    }
}

impl Deserialize for Topology {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let w = TopologyWire::from_value(v)?;
        Ok(Topology::from_parts(w.positions, w.links))
    }
}

impl Topology {
    /// Generates a topology: place nodes, then draw per-directed-link PRRs
    /// from `radio`, pruning unusable pairs.
    ///
    /// Fails with [`TopologyError::TooManyNodes`] — before allocating
    /// anything per-node — if the placement exceeds the [`NodeId`] range.
    pub fn try_generate(
        placement: Placement,
        radio: &RadioModel,
        hub: &RngHub,
    ) -> Result<Self, TopologyError> {
        let requested = placement.node_count_u64();
        // One more than u32::MAX ids would alias; the practical per-node
        // allocations cap far lower, but this is the type-level bound.
        let max = u64::from(u32::MAX) + 1;
        if requested > max {
            return Err(TopologyError::TooManyNodes { requested, max });
        }
        let positions = placement.positions(hub);
        let n = positions.len();
        let dmax = radio.max_usable_distance();

        // Spatial binning: cells of side `dmax`, so every pair within
        // usable range shares a cell or sits in adjacent cells. Candidate
        // lists are visited in ascending node order, which makes the link
        // list byte-identical to the historical all-pairs scan (same
        // per-pair RNG streams, same order) at O(n · density) instead of
        // O(n²).
        let cell = |p: &Position| -> (i64, i64) {
            ((p.x / dmax).floor() as i64, (p.y / dmax).floor() as i64)
        };
        let mut bins: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            bins.entry(cell(p))
                .or_default()
                .push(u32::try_from(i).expect("checked above"));
        }

        let mut links = Vec::new();
        let mut candidates: Vec<u32> = Vec::new();
        for u in 0..n {
            candidates.clear();
            let (cx, cy) = cell(&positions[u]);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(ids) = bins.get(&(cx + dx, cy + dy)) {
                        candidates.extend_from_slice(ids);
                    }
                }
            }
            candidates.sort_unstable();
            for &v32 in &candidates {
                let v = v32 as usize;
                if u == v {
                    continue;
                }
                let d = positions[u].distance(&positions[v]);
                if d > dmax {
                    continue;
                }
                // Stream keyed by the directed pair: regenerating the same
                // topology yields identical links.
                let mut rng = hub.stream(StreamKind::Topology, u as u64 + 1, v as u64 + 1);
                if let Some(prr) = radio.link_prr(d, &mut rng) {
                    links.push(LinkSpec {
                        src: NodeId::from_index(u),
                        dst: NodeId::from_index(v),
                        base_prr: prr,
                    });
                }
            }
        }
        Ok(Self::from_parts(positions, links))
    }

    /// Generates a topology, panicking on an over-capacity placement.
    /// Prefer [`try_generate`](Self::try_generate) when the placement is
    /// not statically known to fit.
    pub fn generate(placement: Placement, radio: &RadioModel, hub: &RngHub) -> Self {
        Self::try_generate(placement, radio, hub).expect("placement within NodeId range")
    }

    /// Builds the derived adjacency structures from generated (or
    /// deserialized) positions and links.
    ///
    /// `links` must arrive grouped by `src` in ascending node order with
    /// ascending `dst` within a group — the order [`generate`](Self::generate)
    /// produces — so that the stable descending-PRR sort breaks PRR ties
    /// by ascending destination exactly as the historical per-node sort
    /// did (neighbor order is part of the determinism contract).
    fn from_parts(positions: Vec<Position>, links: Vec<LinkSpec>) -> Self {
        let n = positions.len();
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            per_node[l.src.index()].push(u32::try_from(i).expect("< 2^32 links"));
        }
        // Insertion order within a node is ascending dst (the documented
        // input contract) — capture it for the binary-search index before
        // the PRR sort rearranges `per_node`.
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut adj_dst_sorted = Vec::with_capacity(links.len());
        let mut adj_dst_links = Vec::with_capacity(links.len());
        adj_offsets.push(0);
        for ids in &per_node {
            for &i in ids {
                adj_dst_sorted.push(links[i as usize].dst);
                adj_dst_links.push(i);
            }
            adj_offsets.push(u32::try_from(adj_dst_sorted.len()).expect("< 2^32 links"));
            debug_assert!(
                adj_dst_sorted[adj_offsets[adj_offsets.len() - 2] as usize..]
                    .windows(2)
                    .all(|w| w[0] < w[1]),
                "links must arrive with ascending dst per src"
            );
        }
        for ids in &mut per_node {
            // Stable: equal PRRs keep insertion (ascending dst) order.
            ids.sort_by(|&a, &b| {
                links[b as usize]
                    .base_prr
                    .partial_cmp(&links[a as usize].base_prr)
                    .expect("PRRs are finite")
            });
        }
        let mut adj_targets = Vec::with_capacity(links.len());
        let mut adj_links = Vec::with_capacity(links.len());
        for ids in &per_node {
            for &i in ids {
                adj_targets.push(links[i as usize].dst);
                adj_links.push(i);
            }
        }
        Self {
            positions,
            links,
            adj_offsets,
            adj_targets,
            adj_links,
            adj_dst_sorted,
            adj_dst_links,
        }
    }

    /// Node `u`'s range in the flat adjacency arrays.
    fn adj_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.adj_offsets[u.index()] as usize..self.adj_offsets[u.index() + 1] as usize
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Node positions (index = node id).
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// All usable directed links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Out-neighbors of `u`, best base PRR first.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj_targets[self.adj_range(u)]
    }

    /// Out-edges of `u` as contiguous `(neighbor, link id)` pairs, best
    /// base PRR first — the engine's broadcast fan-out iterates this
    /// without any lookup or allocation.
    pub fn neighbor_links(&self, u: NodeId) -> impl ExactSizeIterator<Item = (NodeId, usize)> + '_ {
        let r = self.adj_range(u);
        self.adj_targets[r.clone()]
            .iter()
            .copied()
            .zip(self.adj_links[r].iter().copied())
            .map(|(v, l)| (v, l as usize))
    }

    /// Link index (into [`links`](Self::links)) for `u → v`, if usable.
    /// Binary search within `u`'s out-degree — called per delivered frame
    /// by the engine, O(log degree) at constant density.
    pub fn link_id(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let r = self.adj_range(u);
        let row = &self.adj_dst_sorted[r.clone()];
        let i = row.partition_point(|&d| d < v);
        (i < row.len() && row[i] == v).then(|| self.adj_dst_links[r.start + i] as usize)
    }

    /// Base PRR of `u → v`, if usable.
    pub fn base_prr(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.link_id(u, v).map(|i| self.links[i].base_prr)
    }

    /// True if every node can reach the sink through usable links
    /// (direction of data flow: node → sink).
    pub fn is_collectable(&self) -> bool {
        // BFS on reversed edges from the sink.
        let n = self.node_count();
        let mut reach = vec![false; n];
        reach[NodeId::SINK.index()] = true;
        let mut frontier = vec![NodeId::SINK];
        // Reverse adjacency built on the fly.
        let mut in_neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for l in &self.links {
            in_neighbors[l.dst.index()].push(l.src);
        }
        while let Some(v) = frontier.pop() {
            for &u in &in_neighbors[v.index()] {
                if !reach[u.index()] {
                    reach[u.index()] = true;
                    frontier.push(u);
                }
            }
        }
        reach.iter().all(|&r| r)
    }

    /// Minimum hop distance from each node to the sink (usize::MAX if
    /// disconnected). Used for ground-truth path-length statistics.
    pub fn hops_to_sink(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut dist = vec![usize::MAX; n];
        dist[NodeId::SINK.index()] = 0;
        let mut in_neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for l in &self.links {
            in_neighbors[l.dst.index()].push(l.src);
        }
        let mut frontier = std::collections::VecDeque::from([NodeId::SINK]);
        while let Some(v) = frontier.pop_front() {
            for &u in &in_neighbors[v.index()] {
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    frontier.push_back(u);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> RngHub {
        RngHub::new(1234)
    }

    #[test]
    fn grid_positions() {
        let pos = Placement::Grid {
            side: 3,
            spacing: 10.0,
        }
        .positions(&hub());
        assert_eq!(pos.len(), 9);
        assert_eq!(pos[0].x, 0.0);
        assert_eq!(pos[4].x, 10.0);
        assert_eq!(pos[4].y, 10.0);
        assert_eq!(pos[8].x, 20.0);
    }

    #[test]
    fn disk_positions_inside_radius() {
        let pos = Placement::UniformDisk {
            n: 200,
            radius: 80.0,
        }
        .positions(&hub());
        assert_eq!(pos.len(), 200);
        let origin = Position { x: 0.0, y: 0.0 };
        assert_eq!(pos[0].distance(&origin), 0.0, "sink at centre");
        for p in &pos {
            assert!(p.distance(&origin) <= 80.0 + 1e-9);
        }
    }

    #[test]
    fn line_positions() {
        let pos = Placement::Line {
            n: 5,
            spacing: 20.0,
        }
        .positions(&hub());
        assert_eq!(pos.len(), 5);
        assert_eq!(pos[4].x, 80.0);
        assert!(pos.iter().all(|p| p.y == 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let radio = RadioModel::default();
        let place = Placement::UniformDisk {
            n: 60,
            radius: 100.0,
        };
        let a = Topology::generate(place, &radio, &hub());
        let b = Topology::generate(place, &radio, &hub());
        assert_eq!(a.links().len(), b.links().len());
        for (x, y) in a.links().iter().zip(b.links()) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
            assert_eq!(x.base_prr, y.base_prr);
        }
    }

    /// The spatial-binned generator must reproduce the all-pairs reference
    /// scan byte for byte: same links, same order, same PRR draws.
    #[test]
    fn binned_generation_matches_all_pairs_reference() {
        let radio = RadioModel::default();
        let hub = hub();
        for place in [
            Placement::UniformDisk {
                n: 120,
                radius: 150.0,
            },
            Placement::Grid {
                side: 9,
                spacing: 18.0,
            },
            Placement::Clustered {
                clusters: 6,
                per_cluster: 12,
                area_radius: 120.0,
                cluster_radius: 15.0,
            },
        ] {
            let topo = Topology::generate(place, &radio, &hub);
            // Reference: the historical O(n²) scan.
            let positions = place.positions(&hub);
            let dmax = radio.max_usable_distance();
            let mut reference = Vec::new();
            for u in 0..positions.len() {
                for v in 0..positions.len() {
                    if u == v || positions[u].distance(&positions[v]) > dmax {
                        continue;
                    }
                    let mut rng = hub.stream(StreamKind::Topology, u as u64 + 1, v as u64 + 1);
                    if let Some(prr) =
                        radio.link_prr(positions[u].distance(&positions[v]), &mut rng)
                    {
                        reference.push((u as u32, v as u32, prr));
                    }
                }
            }
            assert_eq!(topo.links().len(), reference.len());
            for (l, &(src, dst, prr)) in topo.links().iter().zip(&reference) {
                assert_eq!((l.src.0, l.dst.0), (src, dst));
                assert_eq!(l.base_prr, prr);
            }
        }
    }

    #[test]
    fn over_capacity_placement_is_a_typed_error() {
        // 4.29e9 × 2 + 1 nodes: far past the NodeId range. Must return the
        // typed error without trying to allocate positions first.
        let place = Placement::Clustered {
            clusters: u32::MAX,
            per_cluster: 2,
            area_radius: 1000.0,
            cluster_radius: 10.0,
        };
        let err = Topology::try_generate(place, &RadioModel::default(), &hub())
            .expect_err("over-capacity build must fail");
        match err {
            TopologyError::TooManyNodes { requested, max } => {
                assert_eq!(requested, 1 + u64::from(u32::MAX) * 2);
                assert_eq!(max, u64::from(u32::MAX) + 1);
            }
        }
        assert!(err.to_string().contains("NodeId"));
    }

    #[test]
    fn node_id_checked_construction() {
        assert_eq!(NodeId::try_from_index(7), Some(NodeId(7)));
        assert_eq!(
            NodeId::try_from_index(u32::MAX as usize),
            Some(NodeId(u32::MAX))
        );
        assert_eq!(NodeId::try_from_index(u32::MAX as usize + 1), None);
        assert_eq!(NodeId::from_index(9).0, 9);
    }

    #[test]
    #[should_panic(expected = "exceeds NodeId range")]
    fn node_id_from_index_panics_past_range() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn neighbors_sorted_by_prr() {
        let radio = RadioModel::default();
        let topo = Topology::generate(
            Placement::UniformDisk {
                n: 80,
                radius: 90.0,
            },
            &radio,
            &hub(),
        );
        for u in 0..topo.node_count() {
            let u = NodeId::from_index(u);
            let prrs: Vec<f64> = topo
                .neighbors(u)
                .iter()
                .map(|&v| topo.base_prr(u, v).unwrap())
                .collect();
            for w in prrs.windows(2) {
                assert!(w[0] >= w[1], "neighbors of {u} not sorted: {prrs:?}");
            }
        }
    }

    #[test]
    fn dense_grid_is_collectable() {
        let radio = RadioModel::default();
        let topo = Topology::generate(
            Placement::Grid {
                side: 5,
                spacing: 15.0,
            },
            &radio,
            &hub(),
        );
        assert!(topo.is_collectable());
        let hops = topo.hops_to_sink();
        assert_eq!(hops[0], 0);
        assert!(hops.iter().all(|&h| h != usize::MAX));
    }

    #[test]
    fn sparse_line_multi_hop() {
        let radio = RadioModel::default();
        // 25 m spacing with d50=30: only adjacent nodes connect reliably.
        let topo = Topology::generate(
            Placement::Line {
                n: 8,
                spacing: 25.0,
            },
            &radio,
            &hub(),
        );
        let hops = topo.hops_to_sink();
        // Far end must be several hops out.
        assert!(hops[7] >= 3, "hops {hops:?}");
    }

    #[test]
    fn link_id_lookup() {
        let radio = RadioModel::default();
        let topo = Topology::generate(
            Placement::Grid {
                side: 3,
                spacing: 10.0,
            },
            &radio,
            &hub(),
        );
        for l in topo.links() {
            let id = topo.link_id(l.src, l.dst).unwrap();
            assert_eq!(topo.links()[id].src, l.src);
            assert_eq!(topo.links()[id].dst, l.dst);
        }
        assert_eq!(topo.link_id(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn node_count_matches_placement() {
        for place in [
            Placement::Grid {
                side: 4,
                spacing: 10.0,
            },
            Placement::UniformDisk {
                n: 33,
                radius: 50.0,
            },
            Placement::Line {
                n: 12,
                spacing: 10.0,
            },
            Placement::Clustered {
                clusters: 5,
                per_cluster: 8,
                area_radius: 100.0,
                cluster_radius: 12.0,
            },
        ] {
            assert_eq!(place.positions(&hub()).len(), place.node_count());
        }
    }

    #[test]
    fn clustered_nodes_stay_near_centres() {
        let place = Placement::Clustered {
            clusters: 4,
            per_cluster: 10,
            area_radius: 90.0,
            cluster_radius: 10.0,
        };
        let pos = place.positions(&hub());
        assert_eq!(pos.len(), 41);
        let origin = Position { x: 0.0, y: 0.0 };
        assert_eq!(pos[0].distance(&origin), 0.0, "sink at origin");
        // Each cluster of 10 consecutive nodes spans at most its diameter.
        for c in 0..4 {
            let group = &pos[1 + c * 10..1 + (c + 1) * 10];
            for a in group {
                for b in group {
                    assert!(a.distance(b) <= 20.0 + 1e-9, "cluster too spread");
                }
            }
        }
        // All inside the deployment area (+ cluster radius).
        for p in &pos {
            assert!(p.distance(&origin) <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn clustered_intra_links_denser_than_inter() {
        let place = Placement::Clustered {
            clusters: 4,
            per_cluster: 10,
            area_radius: 80.0,
            cluster_radius: 8.0,
        };
        let topo = Topology::generate(place, &RadioModel::default(), &hub());
        let cluster_of =
            |id: NodeId| -> Option<usize> { (id.0 > 0).then(|| (id.index() - 1) / 10) };
        let (mut intra, mut inter) = (0usize, 0usize);
        for l in topo.links() {
            match (cluster_of(l.src), cluster_of(l.dst)) {
                (Some(a), Some(b)) if a == b => intra += 1,
                (Some(_), Some(_)) => inter += 1,
                _ => {}
            }
        }
        assert!(
            intra > inter,
            "clusters should be internally dense: intra {intra} vs inter {inter}"
        );
    }
}
