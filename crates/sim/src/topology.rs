//! Node placement and connectivity-graph generation.
//!
//! A [`Topology`] fixes node positions, the sink, and the set of usable
//! directed links with their base PRRs. The simulation engine later attaches
//! a stochastic [`crate::link::LossProcess`] to each link; routing discovers
//! links through beacons; the sink's decoder consults the same neighbor
//! tables (mirroring the control-plane topology reports a real deployment
//! would collect).

use crate::radio::RadioModel;
use crate::rng::{RngHub, StreamKind};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Node identifier. The sink is always [`NodeId::SINK`] (id 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The data sink / collection root.
    pub const SINK: NodeId = NodeId(0);

    /// Index into dense per-node arrays.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A usable directed link with its generated base reception ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Transmitter.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Base PRR generated from the radio model (before any temporal loss
    /// process is layered on top).
    pub base_prr: f64,
}

/// Node placement schemes.
///
/// `Hash` runs over the IEEE-754 bit patterns of the float fields so a
/// placement can participate in stable content-address keys (bench run
/// cache); config constructors never produce `-0.0`/NaN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// `side × side` grid with the given spacing (m); sink at a corner.
    Grid {
        /// Nodes per side.
        side: u16,
        /// Grid spacing in metres.
        spacing: f64,
    },
    /// `n` nodes uniform in a disk of the given radius; sink at the centre.
    UniformDisk {
        /// Total number of nodes (including the sink).
        n: u16,
        /// Disk radius in metres.
        radius: f64,
    },
    /// `n` nodes in a line with the given spacing; sink at one end.
    /// Produces maximal path lengths — used for encoding-overhead sweeps.
    Line {
        /// Total number of nodes (including the sink).
        n: u16,
        /// Inter-node spacing in metres.
        spacing: f64,
    },
    /// Clustered deployment: `clusters` groups of `per_cluster` nodes, each
    /// group uniform in a small disk around a uniformly placed centre; the
    /// sink sits at the origin. Models room/zone deployments with dense
    /// intra-cluster and sparse inter-cluster links.
    Clustered {
        /// Number of clusters.
        clusters: u16,
        /// Nodes per cluster.
        per_cluster: u16,
        /// Radius of the deployment area (cluster centres).
        area_radius: f64,
        /// Radius of each cluster.
        cluster_radius: f64,
    },
}

impl std::hash::Hash for Placement {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match *self {
            Placement::Grid { side, spacing } => {
                state.write_u8(0);
                state.write_u16(side);
                state.write_u64(spacing.to_bits());
            }
            Placement::UniformDisk { n, radius } => {
                state.write_u8(1);
                state.write_u16(n);
                state.write_u64(radius.to_bits());
            }
            Placement::Line { n, spacing } => {
                state.write_u8(2);
                state.write_u16(n);
                state.write_u64(spacing.to_bits());
            }
            Placement::Clustered {
                clusters,
                per_cluster,
                area_radius,
                cluster_radius,
            } => {
                state.write_u8(3);
                state.write_u16(clusters);
                state.write_u16(per_cluster);
                state.write_u64(area_radius.to_bits());
                state.write_u64(cluster_radius.to_bits());
            }
        }
    }
}

impl Placement {
    /// Number of nodes this placement produces.
    pub fn node_count(&self) -> usize {
        match *self {
            Placement::Grid { side, .. } => usize::from(side) * usize::from(side),
            Placement::UniformDisk { n, .. } | Placement::Line { n, .. } => usize::from(n),
            Placement::Clustered {
                clusters,
                per_cluster,
                ..
            } => 1 + usize::from(clusters) * usize::from(per_cluster),
        }
    }

    /// Generates node positions; index 0 is the sink.
    pub fn positions(&self, hub: &RngHub) -> Vec<Position> {
        match *self {
            Placement::Grid { side, spacing } => {
                let mut pos = Vec::with_capacity(usize::from(side) * usize::from(side));
                for r in 0..side {
                    for c in 0..side {
                        pos.push(Position {
                            x: f64::from(c) * spacing,
                            y: f64::from(r) * spacing,
                        });
                    }
                }
                pos
            }
            Placement::UniformDisk { n, radius } => {
                let mut rng = hub.stream(StreamKind::Topology, 0xD15C, 0);
                let mut pos = Vec::with_capacity(usize::from(n));
                pos.push(Position { x: 0.0, y: 0.0 }); // sink at centre
                for _ in 1..n {
                    // Uniform in the disk via sqrt radius transform.
                    let r = radius * rng.gen::<f64>().sqrt();
                    let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    pos.push(Position {
                        x: r * theta.cos(),
                        y: r * theta.sin(),
                    });
                }
                pos
            }
            Placement::Line { n, spacing } => (0..n)
                .map(|i| Position {
                    x: f64::from(i) * spacing,
                    y: 0.0,
                })
                .collect(),
            Placement::Clustered {
                clusters,
                per_cluster,
                area_radius,
                cluster_radius,
            } => {
                let mut rng = hub.stream(StreamKind::Topology, 0xC1A5, 0);
                let mut pos = Vec::with_capacity(self.node_count());
                pos.push(Position { x: 0.0, y: 0.0 }); // sink
                for _ in 0..clusters {
                    let r = area_radius * rng.gen::<f64>().sqrt();
                    let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    let (cx, cy) = (r * theta.cos(), r * theta.sin());
                    for _ in 0..per_cluster {
                        let rr = cluster_radius * rng.gen::<f64>().sqrt();
                        let tt = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                        pos.push(Position {
                            x: cx + rr * tt.cos(),
                            y: cy + rr * tt.sin(),
                        });
                    }
                }
                pos
            }
        }
    }
}

/// Sentinel in the dense dst→link index: no usable link.
const NO_LINK: u32 = u32::MAX;

/// Immutable network structure: positions plus usable directed links.
///
/// Adjacency is stored CSR-style: one flat neighbor array (and a parallel
/// link-id array) with per-node offsets, plus a dense per-node dst→link
/// row so [`link_id`](Self::link_id) is a single indexed load — it sits on
/// the engine's per-frame path. All of it is derived from `positions` +
/// `links`, so only those two travel on the wire (the manual serde impls
/// below rebuild the rest through [`TopologyWire`]).
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    links: Vec<LinkSpec>,
    /// CSR offsets: node `u`'s out-edges occupy `adj_offsets[u] ..
    /// adj_offsets[u+1]` of the two flat arrays below.
    adj_offsets: Vec<u32>,
    /// Flat out-neighbor array, per node sorted by descending base PRR
    /// (so the first entry of a node's range is its best candidate).
    adj_targets: Vec<NodeId>,
    /// Parallel to `adj_targets`: index into `links`.
    adj_links: Vec<u32>,
    /// Dense dst→link index: `link_of[u * n + v]` is the link id of
    /// `u → v`, or [`NO_LINK`]. O(n²) u32s buys O(1) lookup; at the
    /// 1000-node scale target that is 4 MB per topology.
    link_of: Vec<u32>,
}

/// Serialized form of [`Topology`]: the generated data only, with every
/// derived index rebuilt on deserialization.
#[derive(Serialize, Deserialize)]
struct TopologyWire {
    positions: Vec<Position>,
    links: Vec<LinkSpec>,
}

impl Serialize for Topology {
    fn to_value(&self) -> serde::Value {
        TopologyWire {
            positions: self.positions.clone(),
            links: self.links.clone(),
        }
        .to_value()
    }
}

impl Deserialize for Topology {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let w = TopologyWire::from_value(v)?;
        Ok(Topology::from_parts(w.positions, w.links))
    }
}

impl Topology {
    /// Generates a topology: place nodes, then draw per-directed-link PRRs
    /// from `radio`, pruning unusable pairs.
    pub fn generate(placement: Placement, radio: &RadioModel, hub: &RngHub) -> Self {
        let positions = placement.positions(hub);
        let n = positions.len();
        let dmax = radio.max_usable_distance();
        let mut links = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let d = positions[u].distance(&positions[v]);
                if d > dmax {
                    continue;
                }
                // Stream keyed by the directed pair: regenerating the same
                // topology yields identical links.
                let mut rng = hub.stream(StreamKind::Topology, u as u64 + 1, v as u64 + 1);
                if let Some(prr) = radio.link_prr(d, &mut rng) {
                    links.push(LinkSpec {
                        src: NodeId(u as u16),
                        dst: NodeId(v as u16),
                        base_prr: prr,
                    });
                }
            }
        }
        Self::from_parts(positions, links)
    }

    /// Builds the derived adjacency structures from generated (or
    /// deserialized) positions and links.
    ///
    /// `links` must arrive grouped by `src` in ascending node order with
    /// ascending `dst` within a group — the order [`generate`](Self::generate)
    /// produces — so that the stable descending-PRR sort breaks PRR ties
    /// by ascending destination exactly as the historical per-node sort
    /// did (neighbor order is part of the determinism contract).
    fn from_parts(positions: Vec<Position>, links: Vec<LinkSpec>) -> Self {
        let n = positions.len();
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            per_node[l.src.index()].push(u32::try_from(i).expect("< 2^32 links"));
        }
        for ids in &mut per_node {
            // Stable: equal PRRs keep insertion (ascending dst) order.
            ids.sort_by(|&a, &b| {
                links[b as usize]
                    .base_prr
                    .partial_cmp(&links[a as usize].base_prr)
                    .expect("PRRs are finite")
            });
        }
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut adj_targets = Vec::with_capacity(links.len());
        let mut adj_links = Vec::with_capacity(links.len());
        let mut link_of = vec![NO_LINK; n * n];
        adj_offsets.push(0);
        for (u, ids) in per_node.iter().enumerate() {
            for &i in ids {
                let l = &links[i as usize];
                adj_targets.push(l.dst);
                adj_links.push(i);
                link_of[u * n + l.dst.index()] = i;
            }
            adj_offsets.push(u32::try_from(adj_targets.len()).expect("< 2^32 links"));
        }
        Self {
            positions,
            links,
            adj_offsets,
            adj_targets,
            adj_links,
            link_of,
        }
    }

    /// Node `u`'s range in the flat adjacency arrays.
    fn adj_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.adj_offsets[u.index()] as usize..self.adj_offsets[u.index() + 1] as usize
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Node positions (index = node id).
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// All usable directed links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Out-neighbors of `u`, best base PRR first.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj_targets[self.adj_range(u)]
    }

    /// Out-edges of `u` as contiguous `(neighbor, link id)` pairs, best
    /// base PRR first — the engine's broadcast fan-out iterates this
    /// without any lookup or allocation.
    pub fn neighbor_links(&self, u: NodeId) -> impl ExactSizeIterator<Item = (NodeId, usize)> + '_ {
        let r = self.adj_range(u);
        self.adj_targets[r.clone()]
            .iter()
            .copied()
            .zip(self.adj_links[r].iter().copied())
            .map(|(v, l)| (v, l as usize))
    }

    /// Link index (into [`links`](Self::links)) for `u → v`, if usable.
    /// One dense-array load — called per delivered frame by the engine.
    pub fn link_id(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let id = self.link_of[u.index() * self.positions.len() + v.index()];
        (id != NO_LINK).then_some(id as usize)
    }

    /// Base PRR of `u → v`, if usable.
    pub fn base_prr(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.link_id(u, v).map(|i| self.links[i].base_prr)
    }

    /// True if every node can reach the sink through usable links
    /// (direction of data flow: node → sink).
    pub fn is_collectable(&self) -> bool {
        // BFS on reversed edges from the sink.
        let n = self.node_count();
        let mut reach = vec![false; n];
        reach[NodeId::SINK.index()] = true;
        let mut frontier = vec![NodeId::SINK];
        // Reverse adjacency built on the fly.
        let mut in_neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for l in &self.links {
            in_neighbors[l.dst.index()].push(l.src);
        }
        while let Some(v) = frontier.pop() {
            for &u in &in_neighbors[v.index()] {
                if !reach[u.index()] {
                    reach[u.index()] = true;
                    frontier.push(u);
                }
            }
        }
        reach.iter().all(|&r| r)
    }

    /// Minimum hop distance from each node to the sink (usize::MAX if
    /// disconnected). Used for ground-truth path-length statistics.
    pub fn hops_to_sink(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut dist = vec![usize::MAX; n];
        dist[NodeId::SINK.index()] = 0;
        let mut in_neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for l in &self.links {
            in_neighbors[l.dst.index()].push(l.src);
        }
        let mut frontier = std::collections::VecDeque::from([NodeId::SINK]);
        while let Some(v) = frontier.pop_front() {
            for &u in &in_neighbors[v.index()] {
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    frontier.push_back(u);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> RngHub {
        RngHub::new(1234)
    }

    #[test]
    fn grid_positions() {
        let pos = Placement::Grid {
            side: 3,
            spacing: 10.0,
        }
        .positions(&hub());
        assert_eq!(pos.len(), 9);
        assert_eq!(pos[0].x, 0.0);
        assert_eq!(pos[4].x, 10.0);
        assert_eq!(pos[4].y, 10.0);
        assert_eq!(pos[8].x, 20.0);
    }

    #[test]
    fn disk_positions_inside_radius() {
        let pos = Placement::UniformDisk {
            n: 200,
            radius: 80.0,
        }
        .positions(&hub());
        assert_eq!(pos.len(), 200);
        let origin = Position { x: 0.0, y: 0.0 };
        assert_eq!(pos[0].distance(&origin), 0.0, "sink at centre");
        for p in &pos {
            assert!(p.distance(&origin) <= 80.0 + 1e-9);
        }
    }

    #[test]
    fn line_positions() {
        let pos = Placement::Line {
            n: 5,
            spacing: 20.0,
        }
        .positions(&hub());
        assert_eq!(pos.len(), 5);
        assert_eq!(pos[4].x, 80.0);
        assert!(pos.iter().all(|p| p.y == 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let radio = RadioModel::default();
        let place = Placement::UniformDisk {
            n: 60,
            radius: 100.0,
        };
        let a = Topology::generate(place, &radio, &hub());
        let b = Topology::generate(place, &radio, &hub());
        assert_eq!(a.links().len(), b.links().len());
        for (x, y) in a.links().iter().zip(b.links()) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
            assert_eq!(x.base_prr, y.base_prr);
        }
    }

    #[test]
    fn neighbors_sorted_by_prr() {
        let radio = RadioModel::default();
        let topo = Topology::generate(
            Placement::UniformDisk {
                n: 80,
                radius: 90.0,
            },
            &radio,
            &hub(),
        );
        for u in 0..topo.node_count() {
            let u = NodeId(u as u16);
            let prrs: Vec<f64> = topo
                .neighbors(u)
                .iter()
                .map(|&v| topo.base_prr(u, v).unwrap())
                .collect();
            for w in prrs.windows(2) {
                assert!(w[0] >= w[1], "neighbors of {u} not sorted: {prrs:?}");
            }
        }
    }

    #[test]
    fn dense_grid_is_collectable() {
        let radio = RadioModel::default();
        let topo = Topology::generate(
            Placement::Grid {
                side: 5,
                spacing: 15.0,
            },
            &radio,
            &hub(),
        );
        assert!(topo.is_collectable());
        let hops = topo.hops_to_sink();
        assert_eq!(hops[0], 0);
        assert!(hops.iter().all(|&h| h != usize::MAX));
    }

    #[test]
    fn sparse_line_multi_hop() {
        let radio = RadioModel::default();
        // 25 m spacing with d50=30: only adjacent nodes connect reliably.
        let topo = Topology::generate(
            Placement::Line {
                n: 8,
                spacing: 25.0,
            },
            &radio,
            &hub(),
        );
        let hops = topo.hops_to_sink();
        // Far end must be several hops out.
        assert!(hops[7] >= 3, "hops {hops:?}");
    }

    #[test]
    fn link_id_lookup() {
        let radio = RadioModel::default();
        let topo = Topology::generate(
            Placement::Grid {
                side: 3,
                spacing: 10.0,
            },
            &radio,
            &hub(),
        );
        for l in topo.links() {
            let id = topo.link_id(l.src, l.dst).unwrap();
            assert_eq!(topo.links()[id].src, l.src);
            assert_eq!(topo.links()[id].dst, l.dst);
        }
        assert_eq!(topo.link_id(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn node_count_matches_placement() {
        for place in [
            Placement::Grid {
                side: 4,
                spacing: 10.0,
            },
            Placement::UniformDisk {
                n: 33,
                radius: 50.0,
            },
            Placement::Line {
                n: 12,
                spacing: 10.0,
            },
            Placement::Clustered {
                clusters: 5,
                per_cluster: 8,
                area_radius: 100.0,
                cluster_radius: 12.0,
            },
        ] {
            assert_eq!(place.positions(&hub()).len(), place.node_count());
        }
    }

    #[test]
    fn clustered_nodes_stay_near_centres() {
        let place = Placement::Clustered {
            clusters: 4,
            per_cluster: 10,
            area_radius: 90.0,
            cluster_radius: 10.0,
        };
        let pos = place.positions(&hub());
        assert_eq!(pos.len(), 41);
        let origin = Position { x: 0.0, y: 0.0 };
        assert_eq!(pos[0].distance(&origin), 0.0, "sink at origin");
        // Each cluster of 10 consecutive nodes spans at most its diameter.
        for c in 0..4 {
            let group = &pos[1 + c * 10..1 + (c + 1) * 10];
            for a in group {
                for b in group {
                    assert!(a.distance(b) <= 20.0 + 1e-9, "cluster too spread");
                }
            }
        }
        // All inside the deployment area (+ cluster radius).
        for p in &pos {
            assert!(p.distance(&origin) <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn clustered_intra_links_denser_than_inter() {
        let place = Placement::Clustered {
            clusters: 4,
            per_cluster: 10,
            area_radius: 80.0,
            cluster_radius: 8.0,
        };
        let topo = Topology::generate(place, &RadioModel::default(), &hub());
        let cluster_of =
            |id: NodeId| -> Option<usize> { (id.0 > 0).then(|| (usize::from(id.0) - 1) / 10) };
        let (mut intra, mut inter) = (0usize, 0usize);
        for l in topo.links() {
            match (cluster_of(l.src), cluster_of(l.dst)) {
                (Some(a), Some(b)) if a == b => intra += 1,
                (Some(_), Some(_)) => inter += 1,
                _ => {}
            }
        }
        assert!(
            intra > inter,
            "clusters should be internally dense: intra {intra} vs inter {inter}"
        );
    }
}
