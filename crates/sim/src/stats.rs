//! Streaming statistics used throughout the simulator and the experiment
//! harness: Welford mean/variance, EWMA filters, counter histograms, and
//! percentile summaries.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
///
/// ```
/// use dophy_sim::stats::Streaming;
///
/// let mut s = Streaming::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Streaming) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average, the filter CTP-style link
/// estimators use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a filter with smoothing factor `alpha` in `(0, 1]`; larger
    /// alpha weights new samples more.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feeds one sample, returning the updated estimate.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current estimate, if any sample has arrived.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate or `default` when unseeded.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// Dense histogram over small non-negative integer outcomes (attempt counts,
/// hop counts, queue depths).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl CountHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Occurrences of `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Counts as normalised weights (for entropy computations).
    pub fn weights(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Folds another histogram into this one (element-wise count sum).
    pub fn merge(&mut self, other: &CountHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Iterates `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

/// Percentile summary of a batch of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Minimum.
    pub p0: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub p100: f64,
}

/// Computes a percentile summary; returns `None` for empty input.
/// Uses nearest-rank interpolation on a sorted copy.
pub fn percentiles(samples: &[f64]) -> Option<Percentiles> {
    if samples.is_empty() {
        return None;
    }
    let mut s: Vec<f64> = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let at = |q: f64| -> f64 {
        let idx = (q * (s.len() - 1) as f64).round() as usize;
        s[idx]
    };
    Some(Percentiles {
        p0: s[0],
        p50: at(0.50),
        p90: at(0.90),
        p99: at(0.99),
        p100: *s.last().expect("non-empty"),
    })
}

/// Empirical CDF points `(value, cumulative_fraction)` for plotting.
pub fn ecdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut s: Vec<f64> = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in ecdf input"));
    let n = s.len() as f64;
    s.iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_mean_variance() {
        let mut s = Streaming::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4 → sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Streaming::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn streaming_empty_is_sane() {
        let s = Streaming::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        for _ in 0..200 {
            e.update(2.0);
        }
        assert!((e.value().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_first_sample_seeds() {
        let mut e = Ewma::new(0.01);
        assert_eq!(e.update(5.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = CountHistogram::new();
        for v in [1, 1, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(5), 0);
        assert_eq!(h.total(), 5);
        assert!((h.mean() - 1.6).abs() < 1e-12);
        assert_eq!(h.max_value(), Some(3));
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 3), (2, 1), (3, 1)]);
    }

    #[test]
    fn percentile_summary() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = percentiles(&samples).unwrap();
        assert_eq!(p.p0, 1.0);
        assert_eq!(p.p100, 100.0);
        assert!((p.p50 - 50.0).abs() <= 1.0);
        assert!((p.p90 - 90.0).abs() <= 1.0);
        assert!(percentiles(&[]).is_none());
    }

    #[test]
    fn ecdf_is_monotone() {
        let points = ecdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].0, 1.0);
        assert_eq!(points[3], (3.0, 1.0));
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
