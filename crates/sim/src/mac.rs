//! MAC-layer configuration and timing.
//!
//! The MAC implements the behaviour Dophy relies on: **stop-and-wait ARQ**
//! with a bounded retransmission budget, as in the TinyOS packet link layer.
//! Each unicast frame is transmitted up to `max_attempts` times; every
//! physical attempt draws independently from the link's loss process, the
//! corresponding ACK draws from the reverse link, and the exchange ends at
//! the first received ACK or when the budget is exhausted.
//!
//! Timing follows 802.15.4 at 250 kbit/s (32 µs per byte) with a contention
//! backoff before each attempt. Full CSMA contention/collision modelling is
//! deliberately omitted: interference-induced loss is already absorbed by
//! the configurable link loss processes, and the quantities tomography
//! observes (per-attempt outcomes) are unaffected by queueing detail. This
//! substitution is recorded in DESIGN.md.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// MAC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacConfig {
    /// Maximum physical transmissions per unicast frame (the ARQ budget
    /// `R`). Attempt numbers observed by receivers lie in `1..=R`.
    pub max_attempts: u16,
    /// Radio throughput in microseconds per byte (32 for 802.15.4).
    pub us_per_byte: u64,
    /// Fixed per-frame radio overhead (preamble, SFD, turnaround) in µs.
    pub frame_overhead_us: u64,
    /// Mean contention backoff before each attempt, in µs. The realised
    /// backoff is uniform in `[backoff/2, 3*backoff/2)`.
    pub backoff_us: u64,
    /// ACK duration + turnaround in µs.
    pub ack_us: u64,
    /// MAC transmit-queue capacity; frames arriving at a full queue are
    /// dropped (reported via `SendDone::was_dropped`).
    pub queue_capacity: usize,
}

impl Default for MacConfig {
    fn default() -> Self {
        Self {
            max_attempts: 7,
            us_per_byte: 32,
            frame_overhead_us: 352,
            backoff_us: 1_000,
            ack_us: 544,
            queue_capacity: 16,
        }
    }
}

impl MacConfig {
    /// Airtime of a data frame of `bytes` bytes.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(self.frame_overhead_us + self.us_per_byte * bytes as u64)
    }

    /// Duration of one full failed or ACK-pending attempt cycle, excluding
    /// the random part of the backoff.
    pub fn attempt_floor(&self, bytes: usize) -> SimDuration {
        self.tx_time(bytes) + SimDuration::from_micros(self.ack_us)
    }

    /// Worst-case duration of a full ARQ exchange (for sanity checks).
    pub fn worst_case_exchange(&self, bytes: usize) -> SimDuration {
        (self.attempt_floor(bytes) + SimDuration::from_micros(self.backoff_us * 2))
            * u64::from(self.max_attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = MacConfig::default();
        assert!(c.max_attempts >= 1);
        assert!(c.queue_capacity > 0);
    }

    #[test]
    fn tx_time_scales_with_bytes() {
        let c = MacConfig::default();
        let t40 = c.tx_time(40);
        let t80 = c.tx_time(80);
        assert_eq!(
            (t80 - t40).as_micros(),
            40 * c.us_per_byte,
            "airtime must scale linearly"
        );
        assert_eq!(t40.as_micros(), 352 + 40 * 32);
    }

    #[test]
    fn worst_case_bounds_single_attempt() {
        let c = MacConfig::default();
        assert!(c.worst_case_exchange(40) > c.attempt_floor(40));
        assert!(
            c.worst_case_exchange(40).as_micros()
                >= u64::from(c.max_attempts) * c.attempt_floor(40).as_micros()
        );
    }
}
