//! Chrome-trace / Perfetto exporter for causal lifecycle spans.
//!
//! [`ChromeTracer`] is an [`Observer`] that renders [`SpanEvent`]s into
//! the Chrome trace-event JSON array format, so a simulation run can be
//! scrubbed visually in `chrome://tracing` or [Perfetto]. Each span
//! becomes a complete (`"ph":"X"`) event on the track of the node it
//! happened at (`tid` = node id), and consecutive spans of the same
//! trace id are stitched together with flow events (`"ph":"s"`/`"t"`) so
//! the UI draws arrows along a packet's path through the network.
//!
//! Timestamps are **simulated** microseconds — the exporter visualises
//! causality in sim time, not wall time.
//!
//! Large runs emit millions of spans; [`ChromeTracer::with_sampling`]
//! keeps 1-in-N *trace ids* (whole lifecycles, never partial ones) by
//! hashing the id, so sampled traces stay causally complete.
//!
//! Events are rendered by hand rather than through the serde stand-in:
//! every field is a fixed-name string, an integer, or a hex id, so no
//! escaping is needed and the output is byte-deterministic.
//!
//! [Perfetto]: https://ui.perfetto.dev
use crate::obs::{Observer, SpanEvent, SpanPhase, TraceKind};
use crate::rng::splitmix64;
use crate::time::SimTime;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashSet;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

struct State<W: Write + Send> {
    out: W,
    wrote_any: bool,
    finished: bool,
    /// Trace ids already seen, to pick flow-start vs flow-step.
    seen: HashSet<u64>,
}

/// Observer exporting lifecycle spans as Chrome-trace JSON.
///
/// The output is a single JSON array, written incrementally; call
/// [`ChromeTracer::finish`] after the run to close the array (dropping
/// the tracer without finishing leaves a truncated file). Write errors
/// are counted, never propagated — tracing must not abort a simulation.
pub struct ChromeTracer<W: Write + Send> {
    state: Mutex<State<W>>,
    /// Keep trace ids where `splitmix64(id) % sample == 0`; 1 keeps all.
    sample: u64,
    events: AtomicU64,
    io_errors: AtomicU64,
}

impl<W: Write + Send> ChromeTracer<W> {
    /// Tracer exporting every span to `out`.
    pub fn new(out: W) -> Self {
        Self::with_sampling(out, 1)
    }

    /// Tracer keeping roughly 1-in-`sample` trace ids (0 acts as 1).
    /// Sampling is by trace id, so a kept lifecycle is always complete.
    pub fn with_sampling(out: W, sample: u64) -> Self {
        Self {
            state: Mutex::new(State {
                out,
                wrote_any: false,
                finished: false,
                seen: HashSet::new(),
            }),
            sample: sample.max(1),
            events: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Trace events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Write/serialization errors swallowed so far (healthy run: 0).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Whether a span with this trace id would be exported.
    #[must_use]
    pub fn keeps(&self, trace_id: u64) -> bool {
        self.sample <= 1 || splitmix64(trace_id).is_multiple_of(self.sample)
    }

    /// Closes the JSON array and flushes. Idempotent; returns `false`
    /// if the closing write failed (also counted in [`Self::io_errors`]).
    pub fn finish(&self) -> bool {
        let mut st = self.state.lock();
        if st.finished {
            return true;
        }
        st.finished = true;
        let ok = if st.wrote_any {
            st.out.write_all(b"\n]\n").and_then(|()| st.out.flush())
        } else {
            st.out.write_all(b"[]\n").and_then(|()| st.out.flush())
        };
        if ok.is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Consumes the tracer, returning the writer (array closed, flushed).
    pub fn into_inner(self) -> W {
        self.finish();
        self.state.into_inner().out
    }

    fn phase_name(phase: &SpanPhase) -> &'static str {
        match phase {
            SpanPhase::Origin => "origin",
            SpanPhase::Tx { .. } => "tx",
            SpanPhase::Deliver { .. } => "deliver",
            SpanPhase::Forward { .. } => "forward",
            SpanPhase::Corrupt => "corrupt",
            SpanPhase::Drop { .. } => "drop",
            SpanPhase::Decode { .. } => "decode",
            SpanPhase::Ingest { .. } => "ingest",
        }
    }

    fn write_event(&self, st: &mut State<W>, json: &str) {
        let lead: &[u8] = if st.wrote_any { b",\n" } else { b"[\n" };
        let res = st
            .out
            .write_all(lead)
            .and_then(|()| st.out.write_all(json.as_bytes()));
        if res.is_ok() {
            st.wrote_any = true;
            self.events.fetch_add(1, Ordering::Relaxed);
        } else {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<W: Write + Send> Observer for ChromeTracer<W> {
    fn on_span(&self, now: SimTime, ev: &SpanEvent) {
        if !self.keeps(ev.trace_id) {
            return;
        }
        let kind = TraceKind::of(ev.trace_id).map_or("unknown", TraceKind::name);
        let ts = now.as_micros();
        // Full phase detail rides in args; serialization of the plain-data
        // enum cannot fail, but degrade to "null" rather than panic in an
        // observer if it ever does.
        let phase_json =
            serde_json::to_string(&ev.phase.to_value()).unwrap_or_else(|_| "null".to_string());
        let complete = format!(
            "{{\"name\":\"{name}\",\"cat\":\"{kind}\",\"ph\":\"X\",\"ts\":{ts},\
             \"dur\":1,\"pid\":1,\"tid\":{tid},\"args\":{{\"trace\":\"{id:#018x}\",\
             \"phase\":{phase_json}}}}}",
            name = Self::phase_name(&ev.phase),
            tid = ev.node,
            id = ev.trace_id,
        );

        let mut st = self.state.lock();
        if st.finished {
            return;
        }
        self.write_event(&mut st, &complete);
        // Stitch this span to the previous one of the same lifecycle.
        let first_sighting = st.seen.insert(ev.trace_id);
        let flow = format!(
            "{{\"name\":\"lifecycle\",\"cat\":\"{kind}\",\"ph\":\"{ph}\",\"ts\":{ts},\
             \"pid\":1,\"tid\":{tid},\"id\":\"{id:#x}\",\"bp\":\"e\"}}",
            ph = if first_sighting { "s" } else { "t" },
            tid = ev.node,
            id = ev.trace_id,
        );
        self.write_event(&mut st, &flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{data_trace_id, DropReason};
    use crate::time::SimDuration;
    use serde::{find_field, Value};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn span(id: u64, node: u32, phase: SpanPhase) -> SpanEvent {
        SpanEvent {
            trace_id: id,
            node,
            phase,
        }
    }

    fn field<'a>(ev: &'a Value, key: &str) -> &'a Value {
        find_field(ev.as_object().expect("trace event is an object"), key)
            .unwrap_or_else(|| panic!("missing {key}: {ev:?}"))
    }

    #[test]
    fn emits_well_formed_chrome_json() {
        let tracer = ChromeTracer::new(Vec::new());
        let id = data_trace_id(5, 9);
        tracer.on_span(t(10), &span(id, 5, SpanPhase::Origin));
        tracer.on_span(
            t(20),
            &span(
                id,
                5,
                SpanPhase::Tx {
                    dst: Some(2),
                    attempt: 1,
                    ok: true,
                },
            ),
        );
        tracer.on_span(
            t(30),
            &span(
                id,
                2,
                SpanPhase::Drop {
                    reason: DropReason::TtlExpired,
                },
            ),
        );
        assert!(tracer.finish());
        assert_eq!(tracer.io_errors(), 0);
        let buf = tracer.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let events = parsed.as_array().unwrap();
        // 3 spans × (complete event + flow event).
        assert_eq!(events.len(), 6);
        for ev in events {
            for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
                field(ev, key);
            }
        }
        assert_eq!(field(&events[0], "ph").as_str(), Some("X"));
        assert_eq!(field(&events[0], "name").as_str(), Some("origin"));
        assert_eq!(field(&events[0], "cat").as_str(), Some("data"));
        assert_eq!(field(&events[0], "tid"), &Value::UInt(5));
        // First flow event starts the arrow chain; later ones continue it.
        assert_eq!(field(&events[1], "ph").as_str(), Some("s"));
        assert_eq!(field(&events[3], "ph").as_str(), Some("t"));
        assert_eq!(field(&events[1], "id"), field(&events[3], "id"));
        // The drop span lands on the receiving node's track.
        assert_eq!(field(&events[4], "tid"), &Value::UInt(2));
    }

    #[test]
    fn sampling_keeps_whole_lifecycles() {
        let tracer = ChromeTracer::with_sampling(Vec::new(), 7);
        let mut kept = 0u32;
        for seq in 0..200u32 {
            let id = data_trace_id(1, seq);
            let keep = tracer.keeps(id);
            tracer.on_span(t(u64::from(seq)), &span(id, 1, SpanPhase::Origin));
            tracer.on_span(
                t(u64::from(seq) + 1),
                &span(id, 0, SpanPhase::Deliver { src: 1, attempt: 1 }),
            );
            if keep {
                kept += 1;
            }
        }
        tracer.finish();
        // A kept id contributes both spans × 2 events each; dropped ids none.
        assert_eq!(tracer.events_written(), u64::from(kept) * 4);
        assert!(kept > 0, "sampler kept nothing out of 200 lifecycles");
        assert!(kept < 200, "sampler kept everything despite 1-in-7");
        let text = String::from_utf8(tracer.into_inner()).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), kept as usize * 4);
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let tracer = ChromeTracer::new(Vec::new());
        tracer.finish();
        let text = String::from_utf8(tracer.into_inner()).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, Value::Array(Vec::new()));
    }
}
