//! Simulated time.
//!
//! The simulator counts microseconds in a `u64` ([`SimTime`]), giving more
//! than half a million simulated years of headroom — plenty for multi-hour
//! sensor-network runs. [`SimDuration`] is the matching span type. Both are
//! thin newtypes so ordinary integer arithmetic cannot silently mix instants
//! and durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Span of `s` fractional seconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this span (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// Shared pretty-printer: picks s/ms/µs units.
fn fmt_micros(us: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if us >= 1_000_000 {
        write!(f, "{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        write!(f, "{:.3}ms", us as f64 / 1e3)
    } else {
        write!(f, "{us}µs")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_micros(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_micros(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let t = SimTime::from_micros(500);
        let d = SimDuration::from_millis(2);
        assert_eq!((t + d).as_micros(), 2_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_micros(), 30_000);
        assert_eq!((d / 2).as_micros(), 5_000);
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_micros(), 1_250_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_micros(17).to_string(), "17µs");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        SimDuration::from_secs_f64(-1.0);
    }
}
