//! Deterministic, named random-number streams.
//!
//! Every stochastic component of the simulator (each link's loss process,
//! each node's backoff jitter, each traffic generator) draws from its own
//! stream, derived from a single master seed and a stable *purpose* label.
//! This gives two properties experiments depend on:
//!
//! * **Bit-reproducibility** — the same master seed replays the exact same
//!   simulation, regardless of iteration order elsewhere in the program.
//! * **Variance isolation** — changing one component (say, adding a protocol
//!   timer) does not perturb the random draws of unrelated components, so
//!   A/B comparisons between schemes see identical channel realisations.
//!
//! Streams are `SmallRng` instances seeded via SplitMix64 over a hash of
//! `(master_seed, purpose, a, b)`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — a fast, well-mixed 64-bit finalizer used to derive
/// stream seeds.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stable purpose labels for derived streams.
///
/// Using an enum (not strings) keeps derivation cheap and typo-proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Per-directed-link data-frame loss draws.
    LinkLoss,
    /// Per-directed-link acknowledgement loss draws.
    AckLoss,
    /// Link-process state evolution (Gilbert–Elliott transitions, drift).
    LinkDynamics,
    /// Node MAC backoff jitter.
    Backoff,
    /// Application traffic generation.
    Traffic,
    /// Topology/placement generation.
    Topology,
    /// Protocol-internal randomness (e.g. Trickle intervals).
    Protocol,
    /// Fault injection (frame corruption, crash schedules, dissemination
    /// faults). A dedicated stream keeps faulted runs bit-reproducible
    /// while leaving every other component's draws untouched, so a
    /// faulted run sees the identical channel realisation as its
    /// fault-free twin.
    Fault,
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::LinkLoss => 0x01,
            StreamKind::AckLoss => 0x02,
            StreamKind::LinkDynamics => 0x03,
            StreamKind::Backoff => 0x04,
            StreamKind::Traffic => 0x05,
            StreamKind::Topology => 0x06,
            StreamKind::Protocol => 0x07,
            StreamKind::Fault => 0x08,
        }
    }
}

/// Factory for named random streams derived from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngHub {
    master: u64,
}

impl RngHub {
    /// Creates a hub for `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master: master_seed,
        }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derives the 64-bit seed for stream `(kind, a, b)`.
    pub fn derive_seed(&self, kind: StreamKind, a: u64, b: u64) -> u64 {
        // Chain SplitMix64 over the identifying tuple; each stage fully
        // mixes, so (a, b) collisions across kinds are astronomically rare.
        let mut s = splitmix64(self.master ^ 0xD0F4_11D0_F411_D0F4);
        s = splitmix64(s ^ kind.tag());
        s = splitmix64(s ^ a);
        s = splitmix64(s ^ b);
        s
    }

    /// A fresh `SmallRng` for stream `(kind, a, b)`.
    ///
    /// `a`/`b` identify the component: e.g. `(LinkLoss, src, dst)` for a
    /// directed link, `(Backoff, node, 0)` for a node's MAC.
    pub fn stream(&self, kind: StreamKind, a: u64, b: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.derive_seed(kind, a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_identity_same_stream() {
        let hub = RngHub::new(42);
        let mut a = hub.stream(StreamKind::LinkLoss, 3, 7);
        let mut b = hub.stream(StreamKind::LinkLoss, 3, 7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_identities_different_streams() {
        let hub = RngHub::new(42);
        let seeds = [
            hub.derive_seed(StreamKind::LinkLoss, 3, 7),
            hub.derive_seed(StreamKind::LinkLoss, 7, 3),
            hub.derive_seed(StreamKind::AckLoss, 3, 7),
            hub.derive_seed(StreamKind::LinkLoss, 3, 8),
            hub.derive_seed(StreamKind::Backoff, 3, 7),
        ];
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn different_master_seeds_diverge() {
        let a = RngHub::new(1).derive_seed(StreamKind::Traffic, 0, 0);
        let b = RngHub::new(2).derive_seed(StreamKind::Traffic, 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the canonical SplitMix64 implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn stream_draws_are_uniformish() {
        // Smoke test that the derived stream is not obviously broken.
        let hub = RngHub::new(7);
        let mut rng = hub.stream(StreamKind::Traffic, 1, 2);
        let n = 10_000;
        let mut ones = 0u32;
        for _ in 0..n {
            if rng.gen::<bool>() {
                ones += 1;
            }
        }
        let frac = f64::from(ones) / f64::from(n);
        assert!((0.45..0.55).contains(&frac), "bool frac {frac}");
    }
}
