//! Spatially sharded multi-core engine.
//!
//! [`ShardedEngine`] partitions the node set into contiguous spatial
//! stripes (sorted by x coordinate) and gives every shard its own calendar
//! ring, MAC states, protocol instances, RNG streams, ground-truth trace,
//! and payload arena. Shards advance in lock-step through **conservative
//! time windows** of width `W = backoff_us/2 + frame_overhead_us`: the
//! minimum latency of any cross-node event. Every frame delivery is
//! scheduled at least one backoff-plus-airtime after its send, so an event
//! executed inside the window `[T, T+W)` can only schedule cross-shard
//! work at `≥ T+W` — past the window's end. Within a window each shard
//! therefore runs completely independently (and in parallel); at each
//! window boundary shards exchange cross-shard deliveries through mailbox
//! queues and republish their radio states.
//!
//! ## Determinism contract
//!
//! A run is **byte-identical for every shard count and thread count** at
//! the same seed:
//!
//! * Every event carries a key `(origin_node << 32) | per-origin-seq`,
//!   and queues pop in global `(time, key)` order, so the interleaving of
//!   same-instant events never depends on which shard produced them.
//! * All RNG streams are owned by exactly one shard: protocol and backoff
//!   streams by the node's shard, data/ACK link streams by the shard of
//!   the link's *source* (all transmit-side draws happen there).
//! * Transmit-side radio checks read a window-boundary snapshot of every
//!   node's radio state (not the live value), so a sender observes remote
//!   receivers exactly as it would observe local ones.
//! * Observer hooks are buffered per shard with their dispatch `(time,
//!   key, emission-index)` and replayed to the real observer in merged
//!   order after each run call.
//!
//! The trade against the single-loop [`Engine`](crate::engine::Engine) is
//! intentional: the sharded engine is *self*-consistent across shard and
//! thread counts, but not bit-identical to the single-loop engine (token
//! values and same-instant cross-node orderings differ). Experiments pick
//! one engine per run spec.
//!
//! ## Payload arenas
//!
//! Broadcast fan-out and unicast ARQ deliver multiple copies of one
//! payload. The single-loop engine clones the payload `Arc` per copy;
//! here, copies delivered *within* the owning shard park the payload in a
//! per-shard [`PayloadArena`] slot with a copy count, and each delivery
//! takes one copy out — the last one moves the `Arc` instead of cloning
//! it, so local delivery is refcount-churn-free. Only genuinely
//! cross-shard copies clone the `Arc`.

use crate::engine::{Command, Ctx, MacState, Protocol, QueuedTx, ACK_BYTES};
use crate::event::EventQueue;
use crate::link::{LossModel, LossProcess};
use crate::mac::MacConfig;
use crate::obs::{
    AckEvent, DropEvent, DropReason, Event, Observer, RxEvent, SpanEvent, SpanPhase, TimerEvent,
    TxEvent,
};
use crate::packet::{Frame, Payload, SendDone, SendToken, TimerId};
use crate::profile::{self, Profiler, Subsystem};
use crate::rng::{RngHub, StreamKind};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::trace::Trace;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One event in a shard's calendar, tagged with its global ordering key.
enum ShardEvent {
    /// A protocol timer fires at `node` (always shard-local).
    Timer { node: NodeId, timer: TimerId },
    /// A frame copy from another shard arrives (payload travels by `Arc`).
    Deliver { frame: Frame },
    /// A frame copy whose payload is parked in this shard's arena.
    DeliverLocal {
        slot: u32,
        src: NodeId,
        dst: NodeId,
        is_broadcast: bool,
        attempt: u16,
        wire_bytes: usize,
        trace_id: Option<u64>,
    },
    /// A MAC send completes at `node` (always shard-local).
    SendDone { node: NodeId, done: SendDone },
}

/// Cross-shard mailbox entry: `(time, ordering key, event)`.
type RemoteEvent = (SimTime, u64, ShardEvent);

/// Slab of pending payloads shared by multiple in-flight local copies.
///
/// Replaces per-copy `Arc` clones for deliveries that stay inside one
/// shard: `insert` parks the payload once with a copy count, `take`
/// hands out one copy per call and moves (rather than clones) the `Arc`
/// to the last taker.
pub(crate) struct PayloadArena {
    slots: Vec<Option<(Payload, u32)>>,
    free: Vec<u32>,
}

impl PayloadArena {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Parks `payload` for `copies ≥ 1` future [`PayloadArena::take`]s.
    fn insert(&mut self, payload: Payload, copies: u32) -> u32 {
        debug_assert!(copies >= 1, "arena entries need at least one copy");
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some((payload, copies));
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena slot count fits u32");
                self.slots.push(Some((payload, copies)));
                slot
            }
        }
    }

    /// Takes one copy out of `slot`; the last take frees the slot and
    /// moves the payload out without touching the refcount.
    fn take(&mut self, slot: u32) -> Payload {
        let cell = &mut self.slots[slot as usize];
        let (payload, remaining) = cell.as_mut().expect("arena slot already freed");
        *remaining -= 1;
        if *remaining == 0 {
            let (payload, _) = cell.take().expect("checked above");
            self.free.push(slot);
            payload
        } else {
            Arc::clone(payload)
        }
    }

    #[cfg(test)]
    fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// One buffered observer emission, with enough context to merge streams
/// from all shards into the order a single-loop run would produce.
struct ObsRecord {
    /// Dispatch time of the event whose handler emitted this.
    at: SimTime,
    /// Ordering key of that event.
    key: u64,
    /// Emission index within the handler (hooks can fire many times).
    idx: u32,
    /// The hook's own timestamp argument.
    now: SimTime,
    ev: Event,
}

#[derive(Default)]
struct ObsBuf {
    records: Vec<ObsRecord>,
    at: SimTime,
    key: u64,
    idx: u32,
}

/// Per-shard buffering observer: records every hook with the dispatch
/// context `(time, key, emission index)` so [`ShardedEngine`] can replay
/// the merged stream deterministically.
struct ShardObserver {
    state: Mutex<ObsBuf>,
}

impl ShardObserver {
    fn new() -> Self {
        Self {
            state: Mutex::new(ObsBuf::default()),
        }
    }

    /// Arms the dispatch context before a handler runs.
    fn set_ctx(&self, at: SimTime, key: u64) {
        let mut s = self.state.lock();
        s.at = at;
        s.key = key;
        s.idx = 0;
    }

    fn push(&self, now: SimTime, ev: Event) {
        let mut s = self.state.lock();
        let (at, key, idx) = (s.at, s.key, s.idx);
        s.idx += 1;
        s.records.push(ObsRecord {
            at,
            key,
            idx,
            now,
            ev,
        });
    }

    fn drain(&self) -> Vec<ObsRecord> {
        std::mem::take(&mut self.state.lock().records)
    }
}

impl Observer for ShardObserver {
    fn on_tx(&self, now: SimTime, ev: &TxEvent) {
        self.push(now, Event::Tx(*ev));
    }
    fn on_rx(&self, now: SimTime, ev: &RxEvent) {
        self.push(now, Event::Rx(*ev));
    }
    fn on_ack(&self, now: SimTime, ev: &AckEvent) {
        self.push(now, Event::Ack(*ev));
    }
    fn on_drop(&self, now: SimTime, ev: &DropEvent) {
        self.push(now, Event::Drop(*ev));
    }
    fn on_timer(&self, now: SimTime, ev: &TimerEvent) {
        self.push(now, Event::Timer(*ev));
    }
    fn on_parent_change(&self, now: SimTime, ev: &crate::obs::ParentChangeEvent) {
        self.push(now, Event::ParentChange(*ev));
    }
    fn on_epoch_switch(&self, now: SimTime, ev: &crate::obs::EpochSwitchEvent) {
        self.push(now, Event::EpochSwitch(*ev));
    }
    fn on_decode(&self, now: SimTime, ev: &crate::obs::DecodeEvent) {
        self.push(now, Event::Decode(*ev));
    }
    fn on_span(&self, now: SimTime, ev: &SpanEvent) {
        self.push(now, Event::Span(*ev));
    }
}

/// Emits a lifecycle span when the frame being handled is traced.
fn emit_span(obs: &dyn Observer, at: SimTime, trace: Option<u64>, node: u32, phase: SpanPhase) {
    if let Some(trace_id) = trace {
        obs.on_span(
            at,
            &SpanEvent {
                trace_id,
                node,
                phase,
            },
        );
    }
}

/// Immutable per-run context shared by every shard (and every worker
/// thread): the topology, global index maps, the mailboxes, and the
/// window-boundary radio snapshot.
struct SharedCtx<'a> {
    topo: &'a Topology,
    mac: &'a MacConfig,
    hub: RngHub,
    /// Node id → owning shard.
    shard_of: &'a [u32],
    /// Node id → index within its shard.
    local_of: &'a [u32],
    /// Global link id → index within the owning (source) shard.
    link_local: &'a [u32],
    inboxes: &'a [Mutex<Vec<RemoteEvent>>],
    /// Window-boundary radio states, indexed by node id. All
    /// transmit-side receiver checks read this (never the live value) so
    /// the outcome cannot depend on where the receiver lives.
    radio_snapshot: &'a [AtomicBool],
}

/// One shard: a self-contained slice of the simulation.
struct Shard<P> {
    id: usize,
    /// Global ids of the nodes owned by this shard, ascending.
    nodes: Vec<NodeId>,
    queue: EventQueue<(u64, ShardEvent)>,
    time: SimTime,
    // Node-indexed state (by local index).
    protocols: Vec<Option<P>>,
    proto_rngs: Vec<SmallRng>,
    backoff_rngs: Vec<SmallRng>,
    macs: Vec<MacState>,
    /// Live radio state of owned nodes (authoritative; snapshotted at
    /// window boundaries).
    radio_live: Vec<bool>,
    /// Per-node send-token counters, prefixed with the node id so tokens
    /// are unique network-wide without global coordination.
    token_ctrs: Vec<u64>,
    /// Per-node event-key counters, same prefixing scheme.
    key_ctrs: Vec<u64>,
    // Link-indexed state (by owner-local link index; this shard owns the
    // links whose source node it owns).
    link_procs: Vec<LossProcess>,
    link_rngs: Vec<Option<SmallRng>>,
    ack_procs: Vec<Option<LossProcess>>,
    ack_rngs: Vec<Option<SmallRng>>,
    /// Global link id of each owned link (parallel to `link_procs`); maps
    /// the compact per-shard trace back to topology link ids at merge.
    link_global: Vec<usize>,
    /// Ground truth for *owned links only* (indexed by owner-local link
    /// id, like `link_procs`). A full-topology trace per shard would cost
    /// `shards × links` counter slots; see [`ShardedEngine::trace`].
    trace: Trace,
    arena: PayloadArena,
    obs: Option<ShardObserver>,
    /// Shard-local self-profiler: each worker thread records wall time
    /// into its own instance (no cross-thread contention on the hot
    /// atomics); the coordinator drains them into the run-level profiler
    /// at window boundaries. `None` when profiling is off.
    profiler: Option<Arc<Profiler>>,
    cmd_buf: Vec<Command>,
    bcast_scratch: Vec<NodeId>,
    delivered_scratch: Vec<(SimTime, u16)>,
    inbound_scratch: Vec<RemoteEvent>,
    events_processed: u64,
}

impl<P: Protocol> Shard<P> {
    /// Next globally-unique ordering key for an event originated by
    /// `node` (which must be owned by this shard).
    fn next_key(&mut self, sx: &SharedCtx<'_>, node: NodeId) -> u64 {
        let l = sx.local_of[node.index()] as usize;
        let key = self.key_ctrs[l];
        self.key_ctrs[l] += 1;
        key
    }

    fn push_local(&mut self, at: SimTime, key: u64, ev: ShardEvent) {
        self.queue.push_keyed(at, key, (key, ev));
    }

    fn push_remote(&self, sx: &SharedCtx<'_>, shard: usize, at: SimTime, key: u64, ev: ShardEvent) {
        debug_assert_ne!(shard, self.id);
        sx.inboxes[shard].lock().push((at, key, ev));
    }

    /// Window-boundary phase A: drain this shard's mailbox into the
    /// calendar and republish the owned nodes' radio states.
    fn exchange(&mut self, sx: &SharedCtx<'_>) {
        let mut inbound = std::mem::take(&mut self.inbound_scratch);
        inbound.append(&mut sx.inboxes[self.id].lock());
        for (at, key, ev) in inbound.drain(..) {
            // The conservative window guarantees cross-shard events land
            // at or after the receiving shard's clock.
            debug_assert!(at >= self.time, "cross-shard event from the past");
            self.queue.push_keyed(at, key, (key, ev));
        }
        self.inbound_scratch = inbound;
        for (l, &n) in self.nodes.iter().enumerate() {
            sx.radio_snapshot[n.index()].store(self.radio_live[l], Ordering::Relaxed);
        }
    }

    /// Time of this shard's next pending event, in µs (`u64::MAX` if idle).
    fn next_event_us(&mut self) -> u64 {
        self.queue.peek_time().map_or(u64::MAX, SimTime::as_micros)
    }

    /// Window-boundary phase B: run every event with `time ≤ limit`.
    fn process_until(&mut self, sx: &SharedCtx<'_>, limit: SimTime) {
        loop {
            let t0 = profile::start(self.profiler.as_deref());
            let popped = self.queue.pop_at_or_before(limit);
            profile::stop(self.profiler.as_deref(), Subsystem::QueuePop, t0);
            let Some((t, (key, ev))) = popped else {
                break;
            };
            self.dispatch(sx, t, key, ev);
        }
    }

    fn dispatch(&mut self, sx: &SharedCtx<'_>, t: SimTime, key: u64, ev: ShardEvent) {
        debug_assert!(t >= self.time, "event from the past");
        self.time = t;
        self.events_processed += 1;
        if let Some(o) = &self.obs {
            o.set_ctx(t, key);
        }
        match ev {
            ShardEvent::Timer { node, timer } => {
                if let Some(o) = &self.obs {
                    o.on_timer(
                        t,
                        &TimerEvent {
                            node: node.0,
                            timer: timer.0,
                        },
                    );
                }
                self.with_protocol(sx, node, |p, ctx| p.on_timer(ctx, timer));
            }
            ShardEvent::Deliver { frame } => self.deliver(sx, t, frame),
            ShardEvent::DeliverLocal {
                slot,
                src,
                dst,
                is_broadcast,
                attempt,
                wire_bytes,
                trace_id,
            } => {
                let payload = self.arena.take(slot);
                let frame = Frame {
                    src,
                    dst,
                    is_broadcast,
                    attempt,
                    wire_bytes,
                    rx_time: t,
                    trace_id,
                    payload,
                };
                self.deliver(sx, t, frame);
            }
            ShardEvent::SendDone { node, done } => {
                let l = sx.local_of[node.index()] as usize;
                self.macs[l].busy = false;
                self.with_protocol(sx, node, |p, ctx| p.on_send_done(ctx, &done));
                self.try_dequeue(sx, node);
            }
        }
    }

    /// Hands a frame copy to its destination protocol — or drops it if the
    /// destination radio went down while it was in flight. Same semantics
    /// as the single-loop engine's `Deliver` arm.
    fn deliver(&mut self, sx: &SharedCtx<'_>, t: SimTime, frame: Frame) {
        let dst = frame.dst;
        let l = sx.local_of[dst.index()] as usize;
        if self.radio_live[l] {
            if let Some(o) = &self.obs {
                o.on_rx(
                    t,
                    &RxEvent {
                        src: frame.src.0,
                        dst: dst.0,
                        attempt: frame.attempt,
                        bytes: frame.wire_bytes as u32,
                        broadcast: frame.is_broadcast,
                    },
                );
                emit_span(
                    o,
                    t,
                    frame.trace_id,
                    dst.0,
                    SpanPhase::Deliver {
                        src: frame.src.0,
                        attempt: frame.attempt,
                    },
                );
            }
            self.with_protocol(sx, dst, |p, ctx| p.on_frame(ctx, &frame));
        } else if let Some(o) = &self.obs {
            o.on_drop(
                t,
                &DropEvent {
                    node: dst.0,
                    dst: None,
                    reason: DropReason::ReceiverOff,
                },
            );
            emit_span(
                o,
                t,
                frame.trace_id,
                dst.0,
                SpanPhase::Drop {
                    reason: DropReason::ReceiverOff,
                },
            );
        }
    }

    /// Checks a protocol out, builds a `Ctx`, runs `f`, then drains the
    /// command buffer. Mirrors `Engine::with_protocol`.
    fn with_protocol<F>(&mut self, sx: &SharedCtx<'_>, node: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_>),
    {
        let l = sx.local_of[node.index()] as usize;
        let mut cmds = std::mem::take(&mut self.cmd_buf);
        {
            let proto = self.protocols[l].as_mut().expect("protocol checked out");
            let mut ctx = Ctx {
                now: self.time,
                node,
                topo: sx.topo,
                mac: sx.mac,
                rng: &mut self.proto_rngs[l],
                commands: &mut cmds,
                next_token: &mut self.token_ctrs[l],
                observer: self.obs.as_ref().map(|o| o as &dyn Observer),
                profiler: self.profiler.as_deref(),
            };
            f(proto, &mut ctx);
        }
        self.drain_commands(sx, node, &mut cmds);
        cmds.clear();
        self.cmd_buf = cmds;
    }

    fn drain_commands(&mut self, sx: &SharedCtx<'_>, node: NodeId, cmds: &mut Vec<Command>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Timer { delay, timer } => {
                    let key = self.next_key(sx, node);
                    self.push_local(self.time + delay, key, ShardEvent::Timer { node, timer });
                }
                Command::Unicast {
                    dst,
                    token,
                    payload,
                    bytes,
                    trace,
                } => {
                    self.enqueue_tx(
                        sx,
                        node,
                        QueuedTx {
                            dst: Some(dst),
                            token,
                            payload,
                            bytes,
                            trace,
                        },
                    );
                }
                Command::Broadcast {
                    payload,
                    bytes,
                    trace,
                } => {
                    self.enqueue_tx(
                        sx,
                        node,
                        QueuedTx {
                            dst: None,
                            token: SendToken(u64::MAX),
                            payload,
                            bytes,
                            trace,
                        },
                    );
                }
                Command::SetRadio { on } => {
                    self.radio_live[sx.local_of[node.index()] as usize] = on;
                }
            }
        }
    }

    fn enqueue_tx(&mut self, sx: &SharedCtx<'_>, node: NodeId, tx: QueuedTx) {
        let l = sx.local_of[node.index()] as usize;
        if !self.radio_live[l] {
            // Radio off: the frame silently dies in the driver.
            self.trace.queue_drops += 1;
            if let Some(o) = &self.obs {
                o.on_drop(
                    self.time,
                    &DropEvent {
                        node: node.0,
                        dst: tx.dst.map(|d| d.0),
                        reason: DropReason::RadioOff,
                    },
                );
                emit_span(
                    o,
                    self.time,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::RadioOff,
                    },
                );
            }
            if let Some(dst) = tx.dst {
                let key = self.next_key(sx, node);
                self.push_local(
                    self.time,
                    key,
                    ShardEvent::SendDone {
                        node,
                        done: SendDone {
                            token: tx.token,
                            dst,
                            acked: false,
                            attempts: 0,
                        },
                    },
                );
            }
            return;
        }
        if self.macs[l].queue.len() >= sx.mac.queue_capacity {
            self.trace.queue_drops += 1;
            if let Some(o) = &self.obs {
                o.on_drop(
                    self.time,
                    &DropEvent {
                        node: node.0,
                        dst: tx.dst.map(|d| d.0),
                        reason: DropReason::QueueFull,
                    },
                );
                emit_span(
                    o,
                    self.time,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::QueueFull,
                    },
                );
            }
            if let Some(dst) = tx.dst {
                let key = self.next_key(sx, node);
                self.push_local(
                    self.time,
                    key,
                    ShardEvent::SendDone {
                        node,
                        done: SendDone {
                            token: tx.token,
                            dst,
                            acked: false,
                            attempts: 0,
                        },
                    },
                );
            }
            return;
        }
        self.macs[l].queue.push_back(tx);
        self.try_dequeue(sx, node);
    }

    fn try_dequeue(&mut self, sx: &SharedCtx<'_>, node: NodeId) {
        let l = sx.local_of[node.index()] as usize;
        let mac = &mut self.macs[l];
        if mac.busy {
            return;
        }
        let Some(tx) = mac.queue.pop_front() else {
            return;
        };
        mac.busy = true;
        match tx.dst {
            None => {
                let t0 = profile::start(self.profiler.as_deref());
                self.transmit_broadcast(sx, node, tx);
                profile::stop(self.profiler.as_deref(), Subsystem::BroadcastFanout, t0);
            }
            Some(dst) => {
                let t0 = profile::start(self.profiler.as_deref());
                self.transmit_unicast(sx, node, dst, tx);
                profile::stop(self.profiler.as_deref(), Subsystem::UnicastArq, t0);
            }
        }
    }

    fn backoff(&mut self, sx: &SharedCtx<'_>, node: NodeId) -> SimDuration {
        let l = sx.local_of[node.index()] as usize;
        let base = sx.mac.backoff_us;
        let jitter = self.backoff_rngs[l].gen_range(base / 2..base + base / 2 + 1);
        SimDuration::from_micros(jitter)
    }

    fn transmit_broadcast(&mut self, sx: &SharedCtx<'_>, node: NodeId, tx: QueuedTx) {
        let t_done = self.time + self.backoff(sx, node) + sx.mac.tx_time(tx.bytes);
        self.trace.broadcast_tx += 1;
        self.trace.bytes_on_air += tx.bytes as u64;
        if let Some(o) = &self.obs {
            o.on_tx(
                t_done,
                &TxEvent {
                    src: node.0,
                    dst: None,
                    attempt: 1,
                    bytes: tx.bytes as u32,
                    ok: true,
                },
            );
            emit_span(
                o,
                t_done,
                tx.trace,
                node.0,
                SpanPhase::Tx {
                    dst: None,
                    attempt: 1,
                    ok: true,
                },
            );
        }
        let hub = sx.hub;
        let mut survivors = std::mem::take(&mut self.bcast_scratch);
        for (v, link_id) in sx.topo.neighbor_links(node) {
            // Receiver check against the window-boundary snapshot: the
            // same rule for local and remote receivers, so the outcome is
            // shard-count invariant.
            if !sx.radio_snapshot[v.index()].load(Ordering::Relaxed) {
                continue;
            }
            let ll = sx.link_local[link_id] as usize;
            let rng = self.link_rngs[ll].get_or_insert_with(|| {
                hub.stream(StreamKind::LinkLoss, u64::from(node.0), u64::from(v.0))
            });
            let ok = self.link_procs[ll].sample(t_done, rng);
            self.trace.record_broadcast_attempt(ll, ok);
            if ok {
                self.trace.broadcast_rx += 1;
                survivors.push(v);
            }
        }
        // Each surviving copy gets its own keyed event, keys consumed in
        // fan-out order so the merged delivery order matches any shard
        // count. Local copies share one arena slot; remote copies clone
        // the payload `Arc` into the destination mailbox.
        let local_copies = survivors
            .iter()
            .filter(|v| sx.shard_of[v.index()] as usize == self.id)
            .count() as u32;
        let slot =
            (local_copies > 0).then(|| self.arena.insert(Arc::clone(&tx.payload), local_copies));
        for &v in &survivors {
            let key = self.next_key(sx, node);
            let dest = sx.shard_of[v.index()] as usize;
            if dest == self.id {
                self.push_local(
                    t_done,
                    key,
                    ShardEvent::DeliverLocal {
                        slot: slot.expect("local survivor implies arena slot"),
                        src: node,
                        dst: v,
                        is_broadcast: true,
                        attempt: 1,
                        wire_bytes: tx.bytes,
                        trace_id: tx.trace,
                    },
                );
            } else {
                self.push_remote(
                    sx,
                    dest,
                    t_done,
                    key,
                    ShardEvent::Deliver {
                        frame: Frame {
                            src: node,
                            dst: v,
                            is_broadcast: true,
                            attempt: 1,
                            wire_bytes: tx.bytes,
                            rx_time: t_done,
                            trace_id: tx.trace,
                            payload: Arc::clone(&tx.payload),
                        },
                    },
                );
            }
        }
        survivors.clear();
        self.bcast_scratch = survivors;
        // Broadcast completion frees the MAC (sentinel SendDone, as in the
        // single-loop engine).
        let key = self.next_key(sx, node);
        self.push_local(
            t_done,
            key,
            ShardEvent::SendDone {
                node,
                done: SendDone {
                    token: tx.token,
                    dst: node,
                    acked: true,
                    attempts: 1,
                },
            },
        );
    }

    fn transmit_unicast(&mut self, sx: &SharedCtx<'_>, node: NodeId, dst: NodeId, tx: QueuedTx) {
        let Some(link_id) = sx.topo.link_id(node, dst) else {
            // No usable link: the MAC burns one attempt cycle and gives up.
            let t_done = self.time + self.backoff(sx, node) + sx.mac.attempt_floor(tx.bytes);
            self.trace.unicast_started += 1;
            self.trace.unicast_failed += 1;
            if let Some(o) = &self.obs {
                o.on_drop(
                    t_done,
                    &DropEvent {
                        node: node.0,
                        dst: Some(dst.0),
                        reason: DropReason::NoLink,
                    },
                );
                emit_span(
                    o,
                    t_done,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::NoLink,
                    },
                );
            }
            let key = self.next_key(sx, node);
            self.push_local(
                t_done,
                key,
                ShardEvent::SendDone {
                    node,
                    done: SendDone {
                        token: tx.token,
                        dst,
                        acked: false,
                        attempts: 1,
                    },
                },
            );
            return;
        };

        // A powered-down receiver answers nothing: the sender burns its
        // whole budget without sampling the channel. The check reads the
        // window-boundary snapshot (see `transmit_broadcast`).
        if !sx.radio_snapshot[dst.index()].load(Ordering::Relaxed) {
            let mut t = self.time;
            for _ in 0..sx.mac.max_attempts {
                t = t + self.backoff(sx, node) + sx.mac.attempt_floor(tx.bytes);
                self.trace.bytes_on_air += tx.bytes as u64;
            }
            self.trace.unicast_started += 1;
            self.trace.unicast_failed += 1;
            if let Some(o) = &self.obs {
                o.on_drop(
                    t,
                    &DropEvent {
                        node: node.0,
                        dst: Some(dst.0),
                        reason: DropReason::ReceiverOff,
                    },
                );
                emit_span(
                    o,
                    t,
                    tx.trace,
                    node.0,
                    SpanPhase::Drop {
                        reason: DropReason::ReceiverOff,
                    },
                );
            }
            let key = self.next_key(sx, node);
            self.push_local(
                t,
                key,
                ShardEvent::SendDone {
                    node,
                    done: SendDone {
                        token: tx.token,
                        dst,
                        acked: false,
                        attempts: sx.mac.max_attempts,
                    },
                },
            );
            return;
        }

        self.trace.unicast_started += 1;
        let hub = sx.hub;
        let ll = sx.link_local[link_id] as usize;
        let mut t = self.time;
        let mut acked_at_attempt: Option<u16> = None;
        let mut delivered = std::mem::take(&mut self.delivered_scratch);
        for attempt in 1..=sx.mac.max_attempts {
            t = t + self.backoff(sx, node) + sx.mac.tx_time(tx.bytes);
            let rng = self.link_rngs[ll].get_or_insert_with(|| {
                hub.stream(StreamKind::LinkLoss, u64::from(node.0), u64::from(dst.0))
            });
            let data_ok = self.link_procs[ll].sample(t, rng);
            self.trace.record_data_attempt(ll, data_ok, tx.bytes);
            if let Some(o) = &self.obs {
                o.on_tx(
                    t,
                    &TxEvent {
                        src: node.0,
                        dst: Some(dst.0),
                        attempt,
                        bytes: tx.bytes as u32,
                        ok: data_ok,
                    },
                );
                emit_span(
                    o,
                    t,
                    tx.trace,
                    node.0,
                    SpanPhase::Tx {
                        dst: Some(dst.0),
                        attempt,
                        ok: data_ok,
                    },
                );
            }
            if data_ok {
                // This copy arrives (duplicates possible across attempts).
                delivered.push((t, attempt));
                let t_ack = t + SimDuration::from_micros(sx.mac.ack_us);
                let ack_ok = match self.ack_procs[ll].as_mut() {
                    Some(proc_) => {
                        let ack_rng = self.ack_rngs[ll].get_or_insert_with(|| {
                            hub.stream(StreamKind::AckLoss, u64::from(node.0), u64::from(dst.0))
                        });
                        proc_.sample(t_ack, ack_rng)
                    }
                    None => false, // asymmetric link: ACK direction unusable
                };
                self.trace.record_ack_attempt(ll, ack_ok, ACK_BYTES);
                if let Some(o) = &self.obs {
                    o.on_ack(
                        t_ack,
                        &AckEvent {
                            src: node.0,
                            dst: dst.0,
                            attempt,
                            ok: ack_ok,
                        },
                    );
                }
                t = t_ack;
                if ack_ok {
                    acked_at_attempt = Some(attempt);
                    break;
                }
            } else {
                // Sender times out waiting for the ACK.
                t += SimDuration::from_micros(sx.mac.ack_us);
            }
        }
        // Schedule the delivered copies: one arena slot if the receiver is
        // local, `Arc` clones into its mailbox otherwise. Keys consume in
        // delivery-time order, matching the single shard=1 interleaving.
        let dest = sx.shard_of[dst.index()] as usize;
        if dest == self.id {
            if !delivered.is_empty() {
                let slot = self
                    .arena
                    .insert(Arc::clone(&tx.payload), delivered.len() as u32);
                for &(td, attempt) in &delivered {
                    let key = self.next_key(sx, node);
                    self.push_local(
                        td,
                        key,
                        ShardEvent::DeliverLocal {
                            slot,
                            src: node,
                            dst,
                            is_broadcast: false,
                            attempt,
                            wire_bytes: tx.bytes,
                            trace_id: tx.trace,
                        },
                    );
                }
            }
        } else {
            for &(td, attempt) in &delivered {
                let key = self.next_key(sx, node);
                self.push_remote(
                    sx,
                    dest,
                    td,
                    key,
                    ShardEvent::Deliver {
                        frame: Frame {
                            src: node,
                            dst,
                            is_broadcast: false,
                            attempt,
                            wire_bytes: tx.bytes,
                            rx_time: td,
                            trace_id: tx.trace,
                            payload: Arc::clone(&tx.payload),
                        },
                    },
                );
            }
        }
        delivered.clear();
        self.delivered_scratch = delivered;
        let done = match acked_at_attempt {
            Some(attempts) => {
                self.trace.unicast_acked += 1;
                self.trace.attempts_hist.record(usize::from(attempts));
                SendDone {
                    token: tx.token,
                    dst,
                    acked: true,
                    attempts,
                }
            }
            None => {
                self.trace.unicast_failed += 1;
                if let Some(o) = &self.obs {
                    o.on_drop(
                        t,
                        &DropEvent {
                            node: node.0,
                            dst: Some(dst.0),
                            reason: DropReason::LinkExhausted,
                        },
                    );
                    emit_span(
                        o,
                        t,
                        tx.trace,
                        node.0,
                        SpanPhase::Drop {
                            reason: DropReason::LinkExhausted,
                        },
                    );
                }
                SendDone {
                    token: tx.token,
                    dst,
                    acked: false,
                    attempts: sx.mac.max_attempts,
                }
            }
        };
        let key = self.next_key(sx, node);
        self.push_local(t, key, ShardEvent::SendDone { node, done });
    }
}

/// The spatially sharded engine. See the module docs for the execution
/// model and determinism contract.
pub struct ShardedEngine<P: Protocol + Send> {
    shards: Vec<Shard<P>>,
    inboxes: Vec<Mutex<Vec<RemoteEvent>>>,
    radio_snapshot: Vec<AtomicBool>,
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    link_local: Vec<u32>,
    topo: Arc<Topology>,
    mac_cfg: MacConfig,
    hub: RngHub,
    /// Conservative window width: the minimum latency of any cross-node
    /// event under `mac_cfg`.
    window: SimDuration,
    time: SimTime,
    /// Worker threads to use (0 = one per available core, capped at the
    /// shard count). Thread count never affects results.
    threads: usize,
    started: bool,
    observer: Option<Arc<dyn Observer>>,
    /// Run-level self-profiler the per-shard profilers drain into.
    profiler: Option<Arc<Profiler>>,
}

impl<P: Protocol + Send> ShardedEngine<P> {
    /// Assembles a sharded engine with `shard_count` shards (clamped to
    /// `1..=node_count`) and one worker thread per available core.
    ///
    /// Arguments mirror [`Engine::new`](crate::engine::Engine::new);
    /// results depend on `shard_count` only through *performance*, never
    /// through simulation outcomes.
    ///
    /// # Panics
    /// Panics if the vector lengths do not match the topology, or if the
    /// MAC timing gives a zero-width conservative window
    /// (`backoff_us/2 + frame_overhead_us == 0`).
    pub fn new(
        topo: Arc<Topology>,
        loss_models: &[LossModel],
        mac_cfg: MacConfig,
        hub: RngHub,
        protocols: Vec<P>,
        shard_count: u16,
    ) -> Self {
        Self::with_threads(topo, loss_models, mac_cfg, hub, protocols, shard_count, 0)
    }

    /// Like [`ShardedEngine::new`] with an explicit worker-thread count
    /// (0 = auto). Exists so tests can pin both sides of a
    /// threads-don't-matter comparison.
    #[allow(clippy::too_many_arguments)]
    pub fn with_threads(
        topo: Arc<Topology>,
        loss_models: &[LossModel],
        mac_cfg: MacConfig,
        hub: RngHub,
        protocols: Vec<P>,
        shard_count: u16,
        threads: usize,
    ) -> Self {
        let n = topo.node_count();
        assert_eq!(protocols.len(), n, "one protocol per node");
        assert_eq!(
            loss_models.len(),
            topo.links().len(),
            "one loss model per link"
        );
        let window = SimDuration::from_micros(mac_cfg.backoff_us / 2 + mac_cfg.frame_overhead_us);
        assert!(
            window.as_micros() >= 1,
            "sharded engine needs a positive conservative window \
             (backoff_us/2 + frame_overhead_us >= 1µs)"
        );
        let shard_count = usize::from(shard_count.max(1)).min(n.max(1));

        // Spatial stripe partition: nodes sorted by x coordinate (node id
        // breaking ties) cut into balanced contiguous stripes, so most
        // links on geometric topologies stay shard-internal.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let positions = topo.positions();
        order.sort_by(|&a, &b| {
            positions[a as usize]
                .x
                .total_cmp(&positions[b as usize].x)
                .then(a.cmp(&b))
        });
        let mut shard_of = vec![0u32; n];
        let (base, extra) = (n / shard_count, n % shard_count);
        let mut cursor = 0usize;
        for s in 0..shard_count {
            let size = base + usize::from(s < extra);
            for _ in 0..size {
                shard_of[order[cursor] as usize] = s as u32;
                cursor += 1;
            }
        }
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); shard_count];
        for i in 0..n {
            members[shard_of[i] as usize].push(NodeId::from_index(i));
        }
        let mut local_of = vec![0u32; n];
        for m in &members {
            for (l, nd) in m.iter().enumerate() {
                local_of[nd.index()] = l as u32;
            }
        }
        // Links are owned by the shard of their source: every transmit-
        // side draw (data, ACK) happens where the sender lives.
        let mut link_local = vec![0u32; topo.links().len()];
        let mut shard_links: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (g, l) in topo.links().iter().enumerate() {
            let s = shard_of[l.src.index()] as usize;
            link_local[g] = shard_links[s].len() as u32;
            shard_links[s].push(g);
        }

        let mut proto_slots: Vec<Option<P>> = protocols.into_iter().map(Some).collect();
        let shards = members
            .iter()
            .zip(shard_links)
            .enumerate()
            .map(|(sid, (nodes, link_global))| {
                let link_procs: Vec<LossProcess> = link_global
                    .iter()
                    .map(|&g| loss_models[g].build())
                    .collect();
                let ack_procs: Vec<Option<LossProcess>> = link_global
                    .iter()
                    .map(|&g| {
                        let l = &topo.links()[g];
                        topo.link_id(l.dst, l.src)
                            .map(|rid| loss_models[rid].build())
                    })
                    .collect();
                Shard {
                    id: sid,
                    nodes: nodes.clone(),
                    queue: EventQueue::new(),
                    time: SimTime::ZERO,
                    protocols: nodes
                        .iter()
                        .map(|nd| proto_slots[nd.index()].take())
                        .collect(),
                    proto_rngs: nodes
                        .iter()
                        .map(|nd| hub.stream(StreamKind::Protocol, nd.index() as u64, 0))
                        .collect(),
                    backoff_rngs: nodes
                        .iter()
                        .map(|nd| hub.stream(StreamKind::Backoff, nd.index() as u64, 0))
                        .collect(),
                    macs: nodes
                        .iter()
                        .map(|_| MacState {
                            busy: false,
                            queue: VecDeque::new(),
                        })
                        .collect(),
                    radio_live: vec![true; nodes.len()],
                    token_ctrs: nodes.iter().map(|nd| u64::from(nd.0) << 32).collect(),
                    key_ctrs: nodes.iter().map(|nd| u64::from(nd.0) << 32).collect(),
                    link_rngs: vec![None; link_procs.len()],
                    ack_rngs: vec![None; link_procs.len()],
                    trace: Trace::with_link_count(link_procs.len()),
                    link_procs,
                    ack_procs,
                    link_global,
                    arena: PayloadArena::new(),
                    obs: None,
                    profiler: None,
                    cmd_buf: Vec::new(),
                    bcast_scratch: Vec::new(),
                    delivered_scratch: Vec::new(),
                    inbound_scratch: Vec::new(),
                    events_processed: 0,
                }
            })
            .collect();
        Self {
            shards,
            inboxes: (0..shard_count).map(|_| Mutex::new(Vec::new())).collect(),
            radio_snapshot: (0..n).map(|_| AtomicBool::new(true)).collect(),
            shard_of,
            local_of,
            link_local,
            topo,
            mac_cfg,
            hub,
            window,
            time: SimTime::ZERO,
            threads,
            started: false,
            observer: None,
            profiler: None,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads a run call will actually use.
    pub fn thread_count(&self) -> usize {
        let auto = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        };
        auto.min(self.shards.len()).max(1)
    }

    /// Overrides the worker-thread count (`0` = auto-detect). Safe to call
    /// at any point between windows; results never depend on it.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The conservative window width derived from the MAC timing.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Shard owning node `n` (for tests and diagnostics).
    pub fn shard_of(&self, n: NodeId) -> usize {
        self.shard_of[n.index()] as usize
    }

    /// Installs a structured-event observer. Hooks are buffered per shard
    /// during a run call and replayed in deterministic merged order when
    /// it returns. Install before [`ShardedEngine::start`].
    pub fn set_observer(&mut self, observer: Arc<dyn Observer>) {
        self.observer = Some(observer);
        for s in &mut self.shards {
            if s.obs.is_none() {
                s.obs = Some(ShardObserver::new());
            }
        }
    }

    /// Installs a hot-path self-profiler. Each worker thread records wall
    /// time into a shard-local profiler, and the shard-local instances are
    /// drained into `profiler` when a run call returns — so the installed
    /// profiler is consistent whenever the caller can observe it, and a
    /// subsystem's wall time aggregates *across* worker threads rather
    /// than pretending one event loop did all the work. Profiling never
    /// touches simulation state: a profiled sharded run stays
    /// byte-identical to a bare one.
    pub fn set_profiler(&mut self, profiler: Arc<Profiler>) {
        self.profiler = Some(profiler);
        for s in &mut self.shards {
            if s.profiler.is_none() {
                s.profiler = Some(Arc::new(Profiler::new()));
            }
        }
    }

    /// The installed run-level self-profiler, if any (for metric export).
    /// Up to date at run-call boundaries (see
    /// [`ShardedEngine::set_profiler`]).
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_deref()
    }

    /// Drains every shard-local profiler into the run-level one.
    fn flush_profilers(&mut self) {
        let Some(target) = &self.profiler else {
            return;
        };
        for s in &self.shards {
            if let Some(p) = &s.profiler {
                p.drain_into(target);
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Events executed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Merged ground-truth trace (each shard records only its owned
    /// links, compactly indexed; this maps them back to topology link
    /// ids and folds the per-shard traces together).
    pub fn trace(&self) -> Trace {
        let mut merged = Trace::for_topology(&self.topo);
        for s in &self.shards {
            merged.merge_mapped(&s.trace, &s.link_global);
        }
        merged
    }

    /// Immutable access to node `n`'s protocol.
    pub fn protocol(&self, n: NodeId) -> &P {
        let s = &self.shards[self.shard_of[n.index()] as usize];
        s.protocols[self.local_of[n.index()] as usize]
            .as_ref()
            .expect("protocol checked out")
    }

    /// Mutable access to node `n`'s protocol (between runs).
    pub fn protocol_mut(&mut self, n: NodeId) -> &mut P {
        let s = &mut self.shards[self.shard_of[n.index()] as usize];
        s.protocols[self.local_of[n.index()] as usize]
            .as_mut()
            .expect("protocol checked out")
    }

    /// Current MAC transmit-queue depth of node `n`.
    pub fn queue_depth(&self, n: NodeId) -> usize {
        let s = &self.shards[self.shard_of[n.index()] as usize];
        s.macs[self.local_of[n.index()] as usize].queue.len()
    }

    /// Whether node `n`'s radio is currently on (live value).
    pub fn radio_on(&self, n: NodeId) -> bool {
        let s = &self.shards[self.shard_of[n.index()] as usize];
        s.radio_live[self.local_of[n.index()] as usize]
    }

    #[allow(clippy::too_many_arguments)]
    fn shared<'a>(
        topo: &'a Topology,
        mac: &'a MacConfig,
        hub: RngHub,
        shard_of: &'a [u32],
        local_of: &'a [u32],
        link_local: &'a [u32],
        inboxes: &'a [Mutex<Vec<RemoteEvent>>],
        radio_snapshot: &'a [AtomicBool],
    ) -> SharedCtx<'a> {
        SharedCtx {
            topo,
            mac,
            hub,
            shard_of,
            local_of,
            link_local,
            inboxes,
            radio_snapshot,
        }
    }

    /// Calls `on_init` for every node. Must be called exactly once,
    /// before running.
    ///
    /// # Panics
    /// Panics on a second call.
    pub fn start(&mut self) {
        assert!(!self.started, "engine already started");
        self.started = true;
        let Self {
            shards,
            inboxes,
            radio_snapshot,
            shard_of,
            local_of,
            link_local,
            topo,
            mac_cfg,
            hub,
            ..
        } = self;
        let sx = Self::shared(
            topo,
            mac_cfg,
            *hub,
            shard_of,
            local_of,
            link_local,
            inboxes,
            radio_snapshot,
        );
        for s in shards.iter_mut() {
            for i in 0..s.nodes.len() {
                let node = s.nodes[i];
                let key = s.next_key(&sx, node);
                if let Some(o) = &s.obs {
                    o.set_ctx(SimTime::ZERO, key);
                }
                s.with_protocol(&sx, node, |p, ctx| p.on_init(ctx));
            }
        }
        self.flush_observers();
        self.flush_profilers();
    }

    /// Runs until simulated time `deadline` (events at exactly `deadline`
    /// are executed). Sets the clock to `deadline` on return.
    pub fn run_until(&mut self, deadline: SimTime) {
        assert!(self.started, "call start() first");
        // Treating the horizon as exclusive at `deadline + 1µs` folds the
        // events-at-deadline pass into the regular window loop.
        let horizon = deadline + SimDuration::from_micros(1);
        let window = self.window;
        let threads = self.thread_count();
        {
            let Self {
                shards,
                inboxes,
                radio_snapshot,
                shard_of,
                local_of,
                link_local,
                topo,
                mac_cfg,
                hub,
                ..
            } = self;
            let sx = Self::shared(
                topo,
                mac_cfg,
                *hub,
                shard_of,
                local_of,
                link_local,
                inboxes,
                radio_snapshot,
            );
            if threads <= 1 || shards.len() <= 1 {
                Self::run_sequential(shards, &sx, horizon, window);
            } else {
                Self::run_threaded(shards, &sx, horizon, window, threads);
            }
        }
        if deadline > self.time {
            self.time = deadline;
        }
        self.flush_observers();
        self.flush_profilers();
    }

    /// Runs for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.time + span;
        self.run_until(deadline);
    }

    /// Single-threaded window loop: exchange all mailboxes, jump to the
    /// global minimum pending time, process one conservative window in
    /// every shard, repeat.
    fn run_sequential(
        shards: &mut [Shard<P>],
        sx: &SharedCtx<'_>,
        horizon: SimTime,
        window: SimDuration,
    ) {
        loop {
            let mut min_us = u64::MAX;
            for s in shards.iter_mut() {
                s.exchange(sx);
                min_us = min_us.min(s.next_event_us());
            }
            if min_us >= horizon.as_micros() {
                break;
            }
            let w_end = (min_us + window.as_micros()).min(horizon.as_micros());
            let limit = SimTime::from_micros(w_end - 1);
            for s in shards.iter_mut() {
                s.process_until(sx, limit);
            }
        }
    }

    /// Multi-threaded window loop: same schedule as
    /// [`ShardedEngine::run_sequential`] — the window sequence is a pure
    /// function of the global minimum pending time, so thread count never
    /// affects results. Three barriers per window: after the exchange
    /// phase, after the leader picks the window end, and after
    /// processing.
    fn run_threaded(
        shards: &mut [Shard<P>],
        sx: &SharedCtx<'_>,
        horizon: SimTime,
        window: SimDuration,
        threads: usize,
    ) {
        let nshards = shards.len();
        let chunk_size = nshards.div_ceil(threads);
        let nworkers = nshards.div_ceil(chunk_size);
        let mins: Vec<AtomicU64> = (0..nshards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let w_end_us = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let barrier = std::sync::Barrier::new(nworkers);
        std::thread::scope(|scope| {
            for chunk in shards.chunks_mut(chunk_size) {
                let (mins, w_end_us, stop, barrier) = (&mins, &w_end_us, &stop, &barrier);
                scope.spawn(move || loop {
                    for s in chunk.iter_mut() {
                        s.exchange(sx);
                        mins[s.id].store(s.next_event_us(), Ordering::SeqCst);
                    }
                    if barrier.wait().is_leader() {
                        let min_us = mins
                            .iter()
                            .map(|m| m.load(Ordering::SeqCst))
                            .min()
                            .unwrap_or(u64::MAX);
                        if min_us >= horizon.as_micros() {
                            stop.store(true, Ordering::SeqCst);
                        } else {
                            stop.store(false, Ordering::SeqCst);
                            w_end_us.store(
                                (min_us + window.as_micros()).min(horizon.as_micros()),
                                Ordering::SeqCst,
                            );
                        }
                    }
                    barrier.wait();
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let limit = SimTime::from_micros(w_end_us.load(Ordering::SeqCst) - 1);
                    for s in chunk.iter_mut() {
                        s.process_until(sx, limit);
                    }
                    barrier.wait();
                });
            }
        });
    }

    /// Merges every shard's buffered observer records into global
    /// `(time, key, emission)` order and replays them to the installed
    /// observer.
    fn flush_observers(&mut self) {
        let Some(target) = self.observer.clone() else {
            return;
        };
        let mut records: Vec<ObsRecord> = Vec::new();
        for s in &self.shards {
            if let Some(o) = &s.obs {
                records.append(&mut o.drain());
            }
        }
        records.sort_by_key(|r| (r.at, r.key, r.idx));
        for r in &records {
            match &r.ev {
                Event::Tx(e) => target.on_tx(r.now, e),
                Event::Rx(e) => target.on_rx(r.now, e),
                Event::Ack(e) => target.on_ack(r.now, e),
                Event::Drop(e) => target.on_drop(r.now, e),
                Event::Timer(e) => target.on_timer(r.now, e),
                Event::ParentChange(e) => target.on_parent_change(r.now, e),
                Event::EpochSwitch(e) => target.on_epoch_switch(r.now, e),
                Event::Decode(e) => target.on_decode(r.now, e),
                Event::Span(e) => target.on_span(r.now, e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LinkDynamics, SimConfig};
    use crate::radio::RadioModel;
    use crate::topology::Placement;

    /// Chattering test protocol: every node fires a timer on a shared
    /// schedule (maximally stressing same-instant cross-node ordering),
    /// alternates broadcasts with unicasts to rotating neighbors, and
    /// records everything it receives.
    struct Chatter {
        period: SimDuration,
        sent: u32,
        to_send: u32,
        toggles: bool,
        received: Vec<(u32, u16, bool, u32)>,
        acked: u32,
        failed: u32,
    }

    impl Chatter {
        fn new(to_send: u32, toggles: bool) -> Self {
            Self {
                period: SimDuration::from_millis(200),
                sent: 0,
                to_send,
                toggles,
                received: Vec::new(),
                acked: 0,
                failed: 0,
            }
        }
    }

    impl Protocol for Chatter {
        fn on_init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.period, TimerId(0));
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId) {
            if self.sent >= self.to_send {
                return;
            }
            let seq = self.sent;
            self.sent += 1;
            if self.toggles && ctx.node_id().0 % 3 == 1 {
                // Odd-ish nodes nap between sends 3 and 5, exercising the
                // radio snapshot paths.
                if seq == 3 {
                    ctx.set_radio(false);
                } else if seq == 5 {
                    ctx.set_radio(true);
                }
            }
            if seq.is_multiple_of(2) {
                ctx.send_broadcast(Arc::new(seq), 30);
            } else if !ctx.neighbors().is_empty() {
                let dst = ctx.neighbors()[seq as usize % ctx.neighbors().len()];
                ctx.send_unicast(dst, Arc::new(seq), 40);
            }
            ctx.set_timer(self.period, TimerId(0));
        }

        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, frame: &Frame) {
            let seq = *frame.payload_as::<u32>().expect("u32 payload");
            self.received
                .push((frame.src.0, frame.attempt, frame.is_broadcast, seq));
        }

        fn on_send_done(&mut self, _ctx: &mut Ctx<'_>, done: &SendDone) {
            if done.dst.0 != u32::MAX && done.token.0 != u64::MAX {
                if done.acked {
                    self.acked += 1;
                } else {
                    self.failed += 1;
                }
            }
        }
    }

    fn build(shards: u16, threads: usize, seed: u64, toggles: bool) -> ShardedEngine<Chatter> {
        let cfg = SimConfig {
            placement: Placement::Grid {
                side: 4,
                spacing: 15.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed,
        };
        let topo = Arc::new(cfg.topology());
        let models = cfg.loss_models(&topo);
        let protos = (0..topo.node_count())
            .map(|_| Chatter::new(24, toggles))
            .collect();
        ShardedEngine::with_threads(topo, &models, cfg.mac, cfg.hub(), protos, shards, threads)
    }

    /// Everything a run can observe, serialized for equality checks.
    fn fingerprint(e: &ShardedEngine<Chatter>) -> String {
        let tr = e.trace();
        let mut out = format!(
            "now={} events={} btx={} brx={} us={} ua={} uf={} qd={} bytes={}\n",
            e.now().as_micros(),
            e.events_processed(),
            tr.broadcast_tx,
            tr.broadcast_rx,
            tr.unicast_started,
            tr.unicast_acked,
            tr.unicast_failed,
            tr.queue_drops,
            tr.bytes_on_air,
        );
        for l in tr.links() {
            out.push_str(&format!(
                "{} {} {} {} {} {}\n",
                l.data_tx, l.data_rx, l.ack_tx, l.ack_rx, l.bcast_tx, l.bcast_rx
            ));
        }
        for i in 0..e.topology().node_count() {
            let p = e.protocol(NodeId::from_index(i));
            out.push_str(&format!(
                "n{i}: sent={} acked={} failed={} rx={:?}\n",
                p.sent, p.acked, p.failed, p.received
            ));
        }
        out
    }

    fn run(mut e: ShardedEngine<Chatter>) -> String {
        e.start();
        // Two run calls so mid-run mailbox state is exercised.
        e.run_for(SimDuration::from_secs(3));
        e.run_for(SimDuration::from_secs(3));
        fingerprint(&e)
    }

    #[test]
    fn shard_count_never_changes_results() {
        let base = run(build(1, 1, 7, false));
        for shards in [2u16, 3, 5, 16] {
            let other = run(build(shards, 1, 7, false));
            assert_eq!(base, other, "shards={shards} diverged from shards=1");
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let base = run(build(4, 1, 11, false));
        for threads in [2usize, 4] {
            let other = run(build(4, threads, 11, false));
            assert_eq!(base, other, "threads={threads} diverged from threads=1");
        }
    }

    #[test]
    fn radio_toggles_stay_shard_invariant() {
        let base = run(build(1, 1, 13, true));
        let sharded = run(build(4, 2, 13, true));
        assert_eq!(base, sharded);
    }

    /// Observer that renders every hook into a string log.
    struct RecObs(Mutex<Vec<String>>);

    impl Observer for RecObs {
        fn on_tx(&self, now: SimTime, ev: &TxEvent) {
            self.0.lock().push(format!("{now} tx {ev:?}"));
        }
        fn on_rx(&self, now: SimTime, ev: &RxEvent) {
            self.0.lock().push(format!("{now} rx {ev:?}"));
        }
        fn on_ack(&self, now: SimTime, ev: &AckEvent) {
            self.0.lock().push(format!("{now} ack {ev:?}"));
        }
        fn on_drop(&self, now: SimTime, ev: &DropEvent) {
            self.0.lock().push(format!("{now} drop {ev:?}"));
        }
        fn on_timer(&self, now: SimTime, ev: &TimerEvent) {
            self.0.lock().push(format!("{now} timer {ev:?}"));
        }
    }

    #[test]
    fn observer_stream_is_shard_invariant() {
        let mut logs = Vec::new();
        for shards in [1u16, 4] {
            let mut e = build(shards, 1, 17, false);
            let obs = Arc::new(RecObs(Mutex::new(Vec::new())));
            e.set_observer(obs.clone());
            e.start();
            e.run_for(SimDuration::from_secs(2));
            logs.push(obs.0.lock().join("\n"));
        }
        assert!(!logs[0].is_empty(), "observer saw nothing");
        assert_eq!(logs[0], logs[1]);
    }

    #[test]
    fn arena_last_take_moves_payload() {
        let mut arena = PayloadArena::new();
        let payload: Payload = Arc::new(42u32);
        let slot = arena.insert(Arc::clone(&payload), 3);
        assert_eq!(arena.live(), 1);
        // Two intermediate takes clone; the refcount peaks at 3 (ours,
        // the arena's, and the outstanding copy).
        let a = arena.take(slot);
        let b = arena.take(slot);
        assert_eq!(arena.live(), 1);
        let c = arena.take(slot);
        assert_eq!(arena.live(), 0, "last take frees the slot");
        drop((a, b, c));
        assert_eq!(Arc::strong_count(&payload), 1);
        // Freed slots are recycled.
        let again = arena.insert(Arc::clone(&payload), 1);
        assert_eq!(again, slot);
    }

    #[test]
    fn idle_run_jumps_to_deadline() {
        struct Idle;
        impl Protocol for Idle {
            fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerId) {}
            fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _f: &Frame) {}
        }
        let cfg = SimConfig {
            placement: Placement::Grid {
                side: 3,
                spacing: 12.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 1,
        };
        let topo = Arc::new(cfg.topology());
        let models = cfg.loss_models(&topo);
        let protos = (0..topo.node_count()).map(|_| Idle).collect();
        let mut e = ShardedEngine::new(topo, &models, cfg.mac, cfg.hub(), protos, 3);
        e.start();
        // An hour of dead air must not grind through empty windows.
        let t0 = std::time::Instant::now();
        e.run_for(SimDuration::from_secs(3600));
        assert!(
            t0.elapsed().as_secs() < 5,
            "idle run crawled through windows"
        );
        assert_eq!(e.now(), SimTime::from_micros(3_600_000_000));
        assert_eq!(e.events_processed(), 0);
    }

    #[test]
    fn stripes_are_balanced() {
        let e = build(5, 1, 3, false);
        let mut sizes = vec![0usize; e.shard_count()];
        for i in 0..e.topology().node_count() {
            sizes[e.shard_of(NodeId::from_index(i))] += 1;
        }
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced stripes: {sizes:?}");
    }
}
