//! Service-path integration tests: a real firehose (N simulations run
//! through the bench executor with the evidence tap) ingested into an
//! [`EstimateStore`] under concurrent query load, checked for snapshot
//! consistency and live-vs-replay byte identity.

use dophy::infer::{EstimatorKind, Evidence};
use dophy::protocol::DophyConfig;
use dophy_bench::RunSpec;
use dophy_serve::{capture, sustained_load, EstimateStore, ServeConfig};
use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use std::sync::atomic::{AtomicBool, Ordering};

fn spec(seed: u64) -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 4,
            spacing: 15.0,
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(30),
        ..DophyConfig::default()
    };
    RunSpec::new(sim, dophy, SimDuration::from_secs(420))
}

fn cfg() -> ServeConfig {
    ServeConfig {
        publish_every: 128,
        top_k: 8,
        r: 7,
        min_samples: 10,
        ..ServeConfig::default()
    }
}

/// The firehose merge is deterministic and namespaced: capturing twice
/// yields the same stream, and each simulation's node ids live in their
/// own block.
#[test]
fn firehose_capture_is_deterministic_and_namespaced() {
    let a = capture(&spec(3), 2, 2).expect("capture");
    let b = capture(&spec(3), 2, 1).expect("capture");
    assert!(!a.events.is_empty());
    assert_eq!(a.events, b.events, "merge depends on jobs count");
    assert_eq!(a.node_count, 16);
    let mut sim0 = false;
    let mut sim1 = false;
    for ev in &a.events {
        let node = match ev {
            Evidence::Hop { sender, .. } => *sender,
            Evidence::PathOutcome { origin, .. } => *origin,
        };
        if node < 16 {
            sim0 = true;
        } else {
            assert!(node < 32, "node id {node} outside both blocks");
            sim1 = true;
        }
    }
    assert!(sim0 && sim1, "both simulations must contribute evidence");
}

/// The tentpole guarantee: a query at evidence-seq S returns
/// byte-identical results whether the stream was ingested live under
/// concurrent query load or replayed serially from the serialized log.
#[test]
fn query_at_seq_is_byte_identical_live_vs_replayed() {
    let hose = capture(&spec(7), 2, 2).expect("capture");
    let events = &hose.events;
    let half = events.len() / 2;

    // Live: queries hammer the store the whole time, and ingest pauses at
    // the half-way point only long enough to force a publish.
    let live = EstimateStore::new(EstimatorKind::InBand, cfg());
    let done = AtomicBool::new(false);
    let (live_half, live_full) = std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let mut last_seq = 0;
                while !done.load(Ordering::Relaxed) {
                    let snap = live.snapshot();
                    assert!(snap.seq >= last_seq, "snapshot seq went backwards");
                    last_seq = snap.seq;
                    for &(link, loss) in &snap.top_k {
                        assert_eq!(
                            snap.link(link).expect("top-k link in estimates").loss,
                            loss,
                            "torn snapshot"
                        );
                    }
                }
            });
        }
        for ev in &events[..half] {
            live.ingest(ev);
        }
        let h = serde_json::to_string(&*live.publish_now()).unwrap();
        for ev in &events[half..] {
            live.ingest(ev);
        }
        let f = serde_json::to_string(&*live.publish_now()).unwrap();
        done.store(true, Ordering::Relaxed);
        (h, f)
    });

    // Replay: EvidenceLog round-trip through JSON, serial ingest, no
    // concurrent readers.
    let json = serde_json::to_string(events).unwrap();
    let replayed: Vec<Evidence> = serde_json::from_str(&json).unwrap();
    assert_eq!(&replayed, events, "evidence log must round-trip");
    let fresh = EstimateStore::new(EstimatorKind::InBand, cfg());
    for ev in &replayed[..half] {
        fresh.ingest(ev);
    }
    let replay_half = serde_json::to_string(&*fresh.publish_now()).unwrap();
    for ev in &replayed[half..] {
        fresh.ingest(ev);
    }
    let replay_full = serde_json::to_string(&*fresh.publish_now()).unwrap();

    assert_eq!(live_half, replay_half, "snapshot at seq {half} diverged");
    assert_eq!(live_full, replay_full, "final snapshot diverged");

    // And the answers are substantive, not vacuously equal.
    let snap = fresh.snapshot();
    assert!(
        snap.estimates.len() >= 10,
        "links: {}",
        snap.estimates.len()
    );
    assert!(!snap.top_k.is_empty());
    assert_eq!(snap.seq, events.len() as u64);
}

/// The sustained-load driver reports sane numbers and leaves the store
/// with a full complement of generations.
#[test]
fn sustained_load_reports_ingest_and_query_throughput() {
    let hose = capture(&spec(11), 2, 2).expect("capture");
    let store = EstimateStore::new(EstimatorKind::InBand, cfg());
    let report = sustained_load(&store, &hose.events, 2);
    assert_eq!(report.events, hose.events.len() as u64);
    assert_eq!(report.final_seq, hose.events.len() as u64);
    assert!(report.ingest_events_per_sec > 0.0);
    assert!(report.queries > 0, "readers answered no queries");
    assert!(report.generations >= hose.events.len() as u64 / 128);
    assert!(report.links > 0);
}
