//! Windowed/TTL freshness tests: aged-out links drop out of estimates
//! and top-k but still answer a typed [`PerLinkAnswer::NotFresh`]; the
//! windowed store matches the tracking crate's windowed estimator bit
//! for bit; and TTL aging against the sharded router's global clock
//! keeps the merged cut byte-identical to a single store.

use dophy::infer::{Estimator, EstimatorKind, Evidence, SnapshotQuery};
use dophy::tracking::{WindowConfig, WindowedNetworkEstimator};
use dophy_coding::aggregate::AttemptObservation;
use dophy_serve::{
    EstimateStore, PerLinkAnswer, ServeConfig, ServeStore, ShardRanges, ShardedStore,
};
use dophy_sim::{SimDuration, SimTime};

fn hop(at_s: u64, sender: u32, receiver: u32, attempts: u16) -> Evidence {
    Evidence::Hop {
        at: SimTime::from_micros(at_s * 1_000_000),
        sender,
        receiver,
        observation: AttemptObservation::Exact(attempts),
    }
}

fn ttl_cfg() -> ServeConfig {
    ServeConfig {
        publish_every: u64::MAX, // manual cuts only
        top_k: 8,
        r: 7,
        min_samples: 5,
        window: None,
        ttl: Some(SimDuration::from_secs(60)),
    }
}

/// A link whose newest evidence ages past the TTL vanishes from the
/// estimate table and the top-k, and its per-link answer degrades from
/// `Fresh` to a typed `NotFresh` carrying last-seen/age/ttl — while a
/// link with current evidence stays `Fresh`.
#[test]
fn aged_out_link_leaves_top_k_and_answers_not_fresh() {
    let lossy = (0u32, 1u32);
    let steady = (2u32, 3u32);
    let store = EstimateStore::new(EstimatorKind::InBand, ttl_cfg());

    // Both links get solid evidence around t=10s; the lossy one needs
    // many attempts per delivery, so it tops the ranking.
    for i in 0..20 {
        store.ingest(&hop(10 + i % 3, lossy.0, lossy.1, 5));
        store.ingest(&hop(10 + i % 3, steady.0, steady.1, 1));
    }
    let warm = store.publish_now();
    assert!(warm.link(lossy).is_some(), "lossy link must be estimated");
    assert!(warm.link(steady).is_some());
    assert_eq!(
        warm.top_k.first().map(|&(l, _)| l),
        Some(lossy),
        "lossy link must lead the top-k while fresh"
    );
    assert!(matches!(warm.per_link(lossy), PerLinkAnswer::Fresh { .. }));

    // Only the steady link keeps receiving; the clock moves to t=200s,
    // putting the lossy link's newest evidence (t=12s) far past the TTL.
    for _ in 0..10 {
        store.ingest(&hop(200, steady.0, steady.1, 1));
    }
    let aged = store.publish_now();
    assert!(
        aged.link(lossy).is_none(),
        "aged-out link must leave the estimate table"
    );
    assert!(
        !aged.top_k.iter().any(|&(l, _)| l == lossy),
        "aged-out link must leave the top-k"
    );
    assert!(aged.coverage(lossy).is_none());
    match aged.per_link(lossy) {
        PerLinkAnswer::NotFresh {
            last_seen,
            age,
            ttl,
        } => {
            assert_eq!(last_seen, SimTime::from_micros(12_000_000));
            assert_eq!(age, SimDuration::from_micros(188_000_000));
            assert_eq!(ttl, SimDuration::from_secs(60));
        }
        other => panic!("expected NotFresh, got {other:?}"),
    }
    // The stale side-table names exactly the aged-out link.
    assert_eq!(aged.stale, vec![(lossy, SimTime::from_micros(12_000_000))]);
    // The steady link is unaffected.
    assert!(matches!(aged.per_link(steady), PerLinkAnswer::Fresh { .. }));
    // A link the store never saw stays Unknown, not NotFresh.
    assert!(matches!(aged.per_link((40, 41)), PerLinkAnswer::Unknown));

    // Fresh evidence resurrects the link: back into estimates and top-k.
    for i in 0..20 {
        store.ingest(&hop(200 + i % 2, lossy.0, lossy.1, 5));
    }
    let revived = store.publish_now();
    assert!(revived.link(lossy).is_some(), "revived link must report");
    assert_eq!(revived.top_k.first().map(|&(l, _)| l), Some(lossy));
    assert!(revived.stale.is_empty());
}

fn window_cfg() -> ServeConfig {
    ServeConfig {
        publish_every: u64::MAX,
        top_k: 8,
        r: 7,
        min_samples: 5,
        window: Some(WindowConfig {
            window: SimDuration::from_secs(30),
            merge_windows: 2,
        }),
        ttl: None,
    }
}

fn window_stream() -> Vec<Evidence> {
    let mut events = Vec::new();
    for i in 0..30u64 {
        events.push(hop(5 + i, 0, 1, 4));
        events.push(hop(5 + i, 1, 2, 1));
        if i % 3 == 0 {
            events.push(hop(40 + i, 2, 3, 2));
        }
    }
    events
}

/// The windowed store is the tracking crate's windowed estimator behind
/// the serving machinery: the published estimate table equals the
/// backend's snapshot at the same `(now, r, min_samples)` bit for bit.
#[test]
fn windowed_store_matches_tracking_backend_bit_for_bit() {
    let events = window_stream();
    let store = EstimateStore::new(EstimatorKind::InBand, window_cfg());
    let mut reference = WindowedNetworkEstimator::new(WindowConfig {
        window: SimDuration::from_secs(30),
        merge_windows: 2,
    });
    let mut now = SimTime::ZERO;
    for ev in &events {
        store.ingest(ev);
        Estimator::observe(&mut reference, ev);
        if let Evidence::Hop { at, .. } = ev {
            if *at > now {
                now = *at;
            }
        }
    }
    let snap = store.publish_now();
    let expected = reference.snapshot(&SnapshotQuery {
        now,
        r: 7,
        min_samples: 5,
    });
    assert!(!expected.is_empty(), "reference backend saw no links");
    assert_eq!(
        serde_json::to_string(&snap.estimates).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "windowed store diverged from the tracking backend"
    );
}

/// A windowed link with no in-range evidence drops out of the estimate
/// table *and* the ranking (the rank-eviction path), answering `Unknown`
/// — windowing forgets, unlike TTL aging which remembers `NotFresh`.
#[test]
fn windowed_link_ages_out_of_estimates_and_top_k() {
    let store = EstimateStore::new(EstimatorKind::InBand, window_cfg());
    for i in 0..20 {
        store.ingest(&hop(10 + i % 5, 0, 1, 5)); // lossy, then silent
        store.ingest(&hop(10 + i % 5, 1, 2, 1));
    }
    let warm = store.publish_now();
    assert_eq!(warm.top_k.first().map(|&(l, _)| l), Some((0, 1)));

    // Advance two full windows past the lossy link's evidence; only the
    // quiet link keeps transmitting.
    for _ in 0..10 {
        store.ingest(&hop(130, 1, 2, 1));
    }
    let aged = store.publish_now();
    assert!(aged.link((0, 1)).is_none(), "windowed-out link reported");
    assert!(
        !aged.top_k.iter().any(|&(l, _)| l == (0, 1)),
        "windowed-out link still ranked"
    );
    assert!(matches!(aged.per_link((0, 1)), PerLinkAnswer::Unknown));
    assert!(matches!(aged.per_link((1, 2)), PerLinkAnswer::Fresh { .. }));
}

/// TTL aging runs against the router's global clock: a sharded store
/// with a TTL publishes cuts byte-identical to a single store over a
/// stream where links age out between barriers.
#[test]
fn ttl_cuts_stay_byte_identical_across_shards() {
    let cfg = ServeConfig {
        publish_every: 16,
        ..ttl_cfg()
    };
    let mut events = Vec::new();
    for i in 0..40u64 {
        events.push(hop(5 + i % 7, 0, 1, 4));
        events.push(hop(5 + i % 7, 3, 2, 2));
    }
    // Late traffic on one link only; sender 3's link ages out.
    for i in 0..40u64 {
        events.push(hop(300 + i % 7, 0, 1, 3));
    }

    let single = EstimateStore::new(EstimatorKind::InBand, cfg);
    let sharded = ShardedStore::new(EstimatorKind::InBand, cfg, ShardRanges::uniform(4, 2));
    for ev in &events {
        ServeStore::ingest(&single, ev);
        sharded.ingest(ev);
    }
    let single_cut = serde_json::to_string(&single.publish_cut()).unwrap();
    let sharded_cut = serde_json::to_string(&sharded.publish_cut()).unwrap();
    assert_eq!(single_cut, sharded_cut, "TTL cut diverged across shards");

    let cut = sharded.publish_cut();
    assert!(
        cut.stale.iter().any(|&(l, _)| l == (3, 2)),
        "expected link (3,2) to age out"
    );
    assert!(matches!(
        cut.per_link((3, 2)),
        PerLinkAnswer::NotFresh { .. }
    ));
}
