//! Sharded-store tests: byte identity of the merged cut against a single
//! store at every shard count and ingest mode, untorn cross-shard cuts
//! under concurrent readers, and fan-out answers equal to the reference
//! single-snapshot query path.

use dophy::infer::EstimatorKind;
use dophy::protocol::DophyConfig;
use dophy_bench::RunSpec;
use dophy_serve::{
    answer_from_snapshot, capture, EstimateStore, Request, Response, ServeConfig, ServeStore,
    ShardRanges, ShardedStore, TomographyView,
};
use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use std::sync::atomic::{AtomicBool, Ordering};

fn spec(seed: u64) -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 4,
            spacing: 15.0,
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(30),
        ..DophyConfig::default()
    };
    RunSpec::new(sim, dophy, SimDuration::from_secs(420))
}

fn cfg() -> ServeConfig {
    ServeConfig {
        publish_every: 128,
        top_k: 8,
        r: 7,
        min_samples: 10,
        ..ServeConfig::default()
    }
}

fn cut_json(store: &dyn ServeStore) -> String {
    serde_json::to_string(&store.publish_cut()).expect("serialize cut")
}

/// The tentpole identity: the merged cross-shard cut is byte-identical to
/// a single store's snapshot at the same evidence seq — mid-stream and at
/// the end — for 1, 2, and 4 block-aligned shards and for an odd uniform
/// partition, all ingesting inline.
#[test]
fn merged_cut_is_byte_identical_at_every_shard_count() {
    let hose = capture(&spec(21), 2, 2).expect("capture");
    let events = &hose.events;
    let half = events.len() / 2;

    let single = EstimateStore::new(EstimatorKind::InBand, cfg());
    for ev in &events[..half] {
        ServeStore::ingest(&single, ev);
    }
    let single_half = cut_json(&single);
    for ev in &events[half..] {
        ServeStore::ingest(&single, ev);
    }
    let single_full = cut_json(&single);

    // Two firehose blocks cap `by_blocks` at two shards; the in-band
    // backend ignores path outcomes, so uniform (block-splitting) ranges
    // are also exact and exercise the higher shard counts.
    let node_span = hose.node_count as u32 * 2;
    let ranges: Vec<(String, ShardRanges)> = vec![
        (
            "by_blocks x1".into(),
            ShardRanges::by_blocks(hose.node_count as u32, 2, 1),
        ),
        (
            "by_blocks x2".into(),
            ShardRanges::by_blocks(hose.node_count as u32, 2, 2),
        ),
        ("uniform x3".into(), ShardRanges::uniform(node_span, 3)),
        ("uniform x4".into(), ShardRanges::uniform(node_span, 4)),
    ];

    for (name, ranges) in ranges {
        let sharded = ShardedStore::new(EstimatorKind::InBand, cfg(), ranges);
        for ev in &events[..half] {
            sharded.ingest(ev);
        }
        assert_eq!(cut_json(&sharded), single_half, "{name}: cut at seq {half}");
        for ev in &events[half..] {
            sharded.ingest(ev);
        }
        assert_eq!(cut_json(&sharded), single_full, "{name}: final cut");
    }

    // Substantive, not vacuous.
    let snap = single.snapshot();
    assert!(snap.estimates.len() >= 10);
    assert!(!snap.top_k.is_empty());
}

/// Threaded ingest (one writer thread per shard, barriers over channels)
/// publishes the same bytes as inline ingest — and as a single store.
#[test]
fn threaded_ingest_matches_inline_and_single() {
    let hose = capture(&spec(23), 2, 2).expect("capture");

    let single = EstimateStore::new(EstimatorKind::InBand, cfg());
    for ev in &hose.events {
        ServeStore::ingest(&single, ev);
    }
    let reference = cut_json(&single);

    for shards in [1usize, 2, 4] {
        let ranges = ShardRanges::uniform(hose.node_count as u32 * 2, shards);

        let inline = ShardedStore::new(EstimatorKind::InBand, cfg(), ranges.clone());
        for ev in &hose.events {
            inline.ingest(ev);
        }
        assert_eq!(cut_json(&inline), reference, "inline x{shards}");

        let threaded = ShardedStore::new(EstimatorKind::InBand, cfg(), ranges);
        let seq = threaded.ingest_threaded(&hose.events);
        assert_eq!(seq, hose.events.len() as u64);
        assert_eq!(cut_json(&threaded), reference, "threaded x{shards}");
    }
}

/// Concurrent readers never observe a torn cross-shard cut: in every
/// published [`dophy_serve::ShardedCut`] all shard generations equal the
/// merged generation, seq is monotone, and every merged top-k entry is
/// backed by an estimate with the identical loss — while per-shard ingest
/// threads and barriers run flat out.
#[test]
fn cross_shard_cuts_are_never_torn() {
    let hose = capture(&spec(25), 2, 2).expect("capture");
    let cfg = ServeConfig {
        publish_every: 32, // frequent barriers to maximise tearing windows
        ..cfg()
    };
    let sharded = ShardedStore::new(
        EstimatorKind::InBand,
        cfg,
        ShardRanges::uniform(hose.node_count as u32 * 2, 4),
    );
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                let mut last_seq = 0u64;
                let mut generations_seen = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let cut = sharded.cut();
                    let generation = cut.merged.generation;
                    for (i, shard) in cut.shards.iter().enumerate() {
                        assert_eq!(
                            shard.generation, generation,
                            "torn cut: shard {i} at generation {} vs merged {generation}",
                            shard.generation
                        );
                    }
                    assert!(cut.merged.seq >= last_seq, "cut seq went backwards");
                    last_seq = cut.merged.seq;
                    for &(link, loss) in &cut.merged.top_k {
                        let est = cut
                            .merged
                            .link(link)
                            .expect("top-k link missing from merged estimates");
                        assert_eq!(est.loss, loss, "top-k loss mixed across generations");
                    }
                    generations_seen = generations_seen.max(generation);
                }
                assert!(generations_seen > 0, "readers never saw a published cut");
            });
        }
        sharded.ingest_threaded(&hose.events);
        sharded.publish_cut();
        done.store(true, Ordering::Relaxed);
    });
}

/// The sharded fan-out (per-link and coverage to the owning shard, paths
/// composed hop by hop, top-k merged, snapshot from the canonical cut)
/// answers byte-identically to [`answer_from_snapshot`] over the single
/// store's snapshot at the same seq — for every estimated link, a stale
/// probe, an unknown link, and multi-hop paths. `Stats` differs only in
/// the advertised shard count.
#[test]
fn fan_out_answers_match_reference_snapshot() {
    let hose = capture(&spec(27), 2, 2).expect("capture");

    let single = EstimateStore::new(EstimatorKind::InBand, cfg());
    for ev in &hose.events {
        ServeStore::ingest(&single, ev);
    }
    let reference = ServeStore::publish_cut(&single);

    let sharded = ShardedStore::new(
        EstimatorKind::InBand,
        cfg(),
        ShardRanges::uniform(hose.node_count as u32 * 2, 4),
    );
    for ev in &hose.events {
        sharded.ingest(ev);
    }
    sharded.publish_cut();

    let mut requests: Vec<Request> = vec![
        Request::TopK { k: 4 },
        Request::TopK { k: 1024 },
        Request::Path { path: Vec::new() },
        Request::Path {
            path: reference.top_k.iter().map(|&(l, _)| l).collect(),
        },
        Request::PerLink {
            link: (u32::MAX, u32::MAX),
        },
        Request::SnapshotAt {
            min_seq: reference.seq,
        },
        Request::SnapshotAt {
            min_seq: reference.seq + 1,
        },
    ];
    for &(link, _) in &reference.estimates {
        requests.push(Request::PerLink { link });
        requests.push(Request::Coverage { link });
    }

    let mut probed = 0;
    for req in &requests {
        let want = serde_json::to_string(&answer_from_snapshot(&reference, req)).unwrap();
        let got = serde_json::to_string(&sharded.answer(req)).unwrap();
        assert_eq!(got, want, "fan-out diverged on {req:?}");
        probed += 1;
    }
    assert!(probed > 20, "only {probed} probes — stream too thin");

    // Stats: identical counters, except the shard count it advertises.
    match (
        sharded.answer(&Request::Stats),
        answer_from_snapshot(&reference, &Request::Stats),
    ) {
        (Response::Stats(got), Response::Stats(want)) => {
            assert_eq!(got.seq, want.seq);
            assert_eq!(got.generation, want.generation);
            assert_eq!(got.now, want.now);
            assert_eq!(got.links, want.links);
            assert_eq!(got.stale_links, want.stale_links);
            assert_eq!(got.store_shards, 4);
            assert_eq!(want.store_shards, 1);
        }
        other => panic!("stats answers malformed: {other:?}"),
    }
}
