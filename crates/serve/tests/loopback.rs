//! Loopback end-to-end tests: a real TCP server answering framed
//! queries byte-identically to the in-process query path, at one store
//! shard and at several — plus the connection-level error contract
//! (payload errors keep the connection, header defects close it).

use dophy::infer::EstimatorKind;
use dophy::protocol::DophyConfig;
use dophy_bench::RunSpec;
use dophy_serve::{
    capture, encode_frame_versioned, serve, Client, EstimateStore, Request, Response, ServeConfig,
    ServeStore, ShardRanges, ShardedStore, TomographyView, PROTOCOL_VERSION,
};
use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn spec(seed: u64) -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: 4,
            spacing: 15.0,
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed,
    };
    let dophy = DophyConfig {
        traffic_period: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(30),
        ..DophyConfig::default()
    };
    RunSpec::new(sim, dophy, SimDuration::from_secs(420))
}

fn cfg() -> ServeConfig {
    ServeConfig {
        publish_every: 128,
        top_k: 8,
        r: 7,
        min_samples: 10,
        ..ServeConfig::default()
    }
}

/// Binds an ephemeral loopback port serving `view`; returns the address.
fn spawn_server(view: Arc<dyn TomographyView>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let _ = serve(listener, view);
    });
    addr
}

/// The acceptance criterion: a loopback client receives byte-identical
/// answers to the in-process query path at the same evidence seq, for
/// every probe class, at 1 and 4 store shards.
#[test]
fn loopback_answers_are_byte_identical_to_in_process() {
    let hose = capture(&spec(31), 2, 2).expect("capture");

    let single = Arc::new(EstimateStore::new(EstimatorKind::InBand, cfg()));
    for ev in &hose.events {
        ServeStore::ingest(single.as_ref(), ev);
    }
    let reference = single.publish_cut();

    let sharded = Arc::new(ShardedStore::new(
        EstimatorKind::InBand,
        cfg(),
        ShardRanges::uniform(hose.node_count as u32 * 2, 4),
    ));
    for ev in &hose.events {
        sharded.ingest(ev);
    }
    sharded.publish_cut();

    let mut probes: Vec<Request> = vec![
        Request::TopK { k: 8 },
        Request::Path {
            path: reference.top_k.iter().map(|&(l, _)| l).collect(),
        },
        Request::PerLink {
            link: (u32::MAX, u32::MAX),
        },
        Request::SnapshotAt {
            min_seq: reference.seq,
        },
        Request::SnapshotAt {
            min_seq: reference.seq + 1,
        },
    ];
    for &(link, _) in &reference.estimates {
        probes.push(Request::PerLink { link });
        probes.push(Request::Coverage { link });
    }

    let views: [(&str, Arc<dyn TomographyView>); 2] =
        [("single", single.clone()), ("sharded x4", sharded)];
    for (name, view) in views {
        let addr = spawn_server(Arc::clone(&view));
        let mut client =
            Client::connect_with_retry(&addr, 20, std::time::Duration::from_millis(25))
                .expect("connect");
        for req in &probes {
            let wire = client.request(req).expect("framed request");
            let local = view.answer(req);
            assert_eq!(
                serde_json::to_string(&wire).unwrap(),
                serde_json::to_string(&local).unwrap(),
                "{name}: wire answer diverged on {req:?}"
            );
        }
        // The networked Stats matches in-process Stats (including the
        // shard count, since both go through the same view).
        let wire_stats = client.request(&Request::Stats).expect("stats");
        assert_eq!(
            serde_json::to_string(&wire_stats).unwrap(),
            serde_json::to_string(&view.answer(&Request::Stats)).unwrap()
        );
    }
}

/// A payload-level defect (valid frame, garbage JSON) is answered with a
/// typed `Response::Error` and the connection keeps serving; a
/// header-level defect (version skew) gets a final error and the server
/// closes the connection.
#[test]
fn connection_error_contract() {
    let store = Arc::new(EstimateStore::new(EstimatorKind::InBand, cfg()));
    let addr = spawn_server(store);

    // Payload error: hand-frame a string that is not a Request.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let bad_payload =
        encode_frame_versioned(&"not a request".to_string(), PROTOCOL_VERSION).expect("encode");
    stream.write_all(&bad_payload).expect("send");
    let resp: Response = dophy_serve::read_frame(&mut stream).expect("error response");
    assert!(matches!(resp, Response::Error(_)), "got {resp:?}");
    // Connection survived: a well-formed request still answers.
    let ok = dophy_serve::encode_frame(&Request::Stats).expect("encode");
    stream.write_all(&ok).expect("send");
    let resp: Response = dophy_serve::read_frame(&mut stream).expect("stats after error");
    assert!(matches!(resp, Response::Stats(_)), "got {resp:?}");

    // Header defect: version skew. Error response, then EOF.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let skew = encode_frame_versioned(&Request::Stats, PROTOCOL_VERSION + 1).expect("encode");
    stream.write_all(&skew).expect("send");
    let resp: Response = dophy_serve::read_frame(&mut stream).expect("skew response");
    match &resp {
        Response::Error(msg) => assert!(msg.contains("version"), "unexpected error: {msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The server closes without draining the unread payload, so the OS
    // may deliver a clean EOF or a reset — either way, no more service.
    match dophy_serve::read_frame::<Response, _>(&mut stream) {
        Err(dophy_serve::WireError::Truncated { got: 0, .. })
        | Err(dophy_serve::WireError::Io(_)) => {}
        other => panic!("expected server-side close, got {other:?}"),
    }
}
