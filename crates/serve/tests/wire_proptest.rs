//! Protocol fuzz/property suite for the framed wire codec.
//!
//! Two families of properties:
//!
//! 1. **Round-trip**: every [`Request`] and [`Response`] variant encodes
//!    to a frame that decodes back to an equal value, identically via the
//!    slice decoder and the stream reader, and encoding is canonical
//!    (same message, same bytes).
//! 2. **Mutation**: frames subjected to bit-flips, truncation at every
//!    length, oversized length prefixes, version skew, and raw garbage
//!    always produce a typed [`WireError`] or a clean decode — never a
//!    panic, and never an allocation driven by an unvalidated length.

use dophy::estimator::LossEstimate;
use dophy_serve::{
    decode_frame, encode_frame, encode_frame_versioned, read_frame, LinkKey, PathLossReport,
    PerLinkAnswer, Request, Response, ServiceStats, StoreSnapshot, WireError, HEADER_LEN, MAGIC,
    MAX_FRAME_PAYLOAD, PROTOCOL_VERSION,
};
use dophy_sim::{SimDuration, SimTime};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Union;

fn link() -> impl Strategy<Value = LinkKey> {
    (0u32..512, 0u32..512)
}

fn sim_time() -> impl Strategy<Value = SimTime> {
    (0u64..10_000_000_000).prop_map(SimTime::from_micros)
}

fn sim_duration() -> impl Strategy<Value = SimDuration> {
    (1u64..10_000_000_000).prop_map(SimDuration::from_micros)
}

fn loss_estimate() -> impl Strategy<Value = LossEstimate> {
    (
        0.0f64..1.0,
        1u64..100_000,
        prop_oneof![Just(None::<f64>), (1e-6f64..0.5).prop_map(Some),],
    )
        .prop_map(|(p, n, stderr)| LossEstimate {
            p_success: p,
            loss: 1.0 - p,
            n_samples: n,
            stderr,
        })
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        link().prop_map(|link| Request::PerLink { link }),
        link().prop_map(|link| Request::Coverage { link }),
        vec(link(), 0..8).prop_map(|path| Request::Path { path }),
        (0u32..64).prop_map(|k| Request::TopK { k }),
        Just(Request::Stats),
        (0u64..1_000_000).prop_map(|min_seq| Request::SnapshotAt { min_seq }),
    ]
}

fn per_link_answer() -> impl Strategy<Value = PerLinkAnswer> {
    prop_oneof![
        (loss_estimate(), sim_time())
            .prop_map(|(est, last_seen)| PerLinkAnswer::Fresh { est, last_seen }),
        (sim_time(), sim_duration(), sim_duration()).prop_map(|(last_seen, age, ttl)| {
            PerLinkAnswer::NotFresh {
                last_seen,
                age,
                ttl,
            }
        }),
        Just(PerLinkAnswer::Unknown),
    ]
}

fn snapshot() -> impl Strategy<Value = StoreSnapshot> {
    (
        0u64..1_000_000,
        0u64..10_000,
        sim_time(),
        1u16..16,
        0u64..100,
        prop_oneof![Just(None::<SimDuration>), sim_duration().prop_map(Some)],
        vec((link(), loss_estimate(), sim_time()), 0..12),
        vec((link(), sim_time()), 0..6),
        vec((link(), 0.0f64..1.0), 0..8),
    )
        .prop_map(
            |(seq, generation, now, r, min_samples, ttl, links, stale, top_k)| {
                let mut estimates = Vec::new();
                let mut last_seen = Vec::new();
                for (l, est, seen) in links {
                    estimates.push((l, est));
                    last_seen.push(seen);
                }
                StoreSnapshot {
                    seq,
                    generation,
                    now,
                    r,
                    min_samples,
                    ttl,
                    estimates,
                    last_seen,
                    stale,
                    top_k,
                }
            },
        )
}

fn response() -> impl Strategy<Value = Response> {
    let ascii = vec(32u8..127, 0..24).prop_map(|b| String::from_utf8(b).expect("ascii"));
    prop_oneof![
        (0u64..1_000_000, per_link_answer())
            .prop_map(|(seq, answer)| Response::PerLink { seq, answer }),
        (
            0u64..1_000_000,
            prop_oneof![
                Just(None),
                (
                    1u64..100_000,
                    prop_oneof![Just(None::<f64>), (1e-6f64..0.5).prop_map(Some),]
                )
                    .prop_map(|(n_samples, stderr)| Some(
                        dophy_serve::LinkCoverage { n_samples, stderr }
                    )),
            ]
        )
            .prop_map(|(seq, coverage)| Response::Coverage { seq, coverage }),
        (
            0u64..1_000_000,
            0usize..10,
            0usize..10,
            0.0f64..1.0,
            0.0f64..1.0
        )
            .prop_map(|(seq, hops, known, dp, raw)| Response::Path {
                seq,
                report: PathLossReport {
                    hops,
                    known_hops: known.min(hops),
                    delivery_prob: dp,
                    raw_success: raw,
                },
            }),
        (0u64..1_000_000, vec((link(), 0.0f64..1.0), 0..10))
            .prop_map(|(seq, entries)| Response::TopK { seq, entries }),
        (
            0u64..1_000_000,
            0u64..10_000,
            sim_time(),
            0u64..1000,
            0u64..1000,
            1u64..64
        )
            .prop_map(|(seq, generation, now, links, stale_links, store_shards)| {
                Response::Stats(ServiceStats {
                    seq,
                    generation,
                    now,
                    links,
                    stale_links,
                    store_shards,
                })
            }),
        snapshot().prop_map(Response::Snapshot),
        (0u64..1_000_000, 0u64..1_000_000)
            .prop_map(|(have_seq, want_seq)| Response::NotReady { have_seq, want_seq }),
        ascii.prop_map(Response::Error),
    ]
}

/// Either direction of the protocol, as raw frames, for mutation tests.
fn any_frame() -> impl Strategy<Value = Vec<u8>> {
    let req = request().prop_map(|r| encode_frame(&r).expect("encode request"));
    let resp = response().prop_map(|r| encode_frame(&r).expect("encode response"));
    Union::new(vec![req.boxed(), resp.boxed()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn request_round_trips_both_decoders(req in request()) {
        let frame = encode_frame(&req).expect("encode");
        prop_assert_eq!(&frame[..2], &MAGIC);
        let (slice, used): (Request, usize) = decode_frame(&frame).expect("slice decode");
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(&slice, &req);
        let mut cursor = std::io::Cursor::new(frame.clone());
        let stream: Request = read_frame(&mut cursor).expect("stream decode");
        prop_assert_eq!(&stream, &req);
        // Canonical encode: same message, same bytes.
        prop_assert_eq!(encode_frame(&req).expect("re-encode"), frame);
    }

    #[test]
    fn response_round_trips_both_decoders(resp in response()) {
        let frame = encode_frame(&resp).expect("encode");
        let (slice, used): (Response, usize) = decode_frame(&frame).expect("slice decode");
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(&slice, &resp);
        let mut cursor = std::io::Cursor::new(frame.clone());
        let stream: Response = read_frame(&mut cursor).expect("stream decode");
        prop_assert_eq!(&stream, &resp);
        prop_assert_eq!(encode_frame(&resp).expect("re-encode"), frame);
    }

    #[test]
    fn bit_flips_never_panic(frame in any_frame(), flip in 0usize..4096) {
        let mut mutated = frame.clone();
        let bit = flip % (mutated.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        // Decode must return — any Ok (payload flip landing on another
        // valid encoding) or any typed error is acceptable; a panic or
        // abort is not.
        let slice_result = decode_frame::<Response>(&mutated);
        let mut cursor = std::io::Cursor::new(mutated.clone());
        let stream_result = read_frame::<Response, _>(&mut cursor);
        // Header flips are classified, in header order.
        if bit / 8 < 2 && mutated[..2] != MAGIC {
            prop_assert!(matches!(slice_result, Err(WireError::BadMagic(_))));
        } else if (2..4).contains(&(bit / 8)) {
            prop_assert!(matches!(
                slice_result,
                Err(WireError::VersionSkew { want: PROTOCOL_VERSION, .. })
            ));
        }
        // Both decoders agree on whether the mutation was fatal.
        prop_assert_eq!(slice_result.is_ok(), stream_result.is_ok());
    }

    #[test]
    fn truncation_at_every_length_is_typed(frame in any_frame()) {
        for cut in 0..frame.len() {
            match decode_frame::<Response>(&frame[..cut]) {
                Err(WireError::Truncated { expected, got }) => {
                    prop_assert_eq!(got, cut);
                    let want = if cut < HEADER_LEN { HEADER_LEN } else { frame.len() };
                    prop_assert_eq!(expected, want);
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
            // The stream reader reports the identical byte counts.
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            match read_frame::<Response, _>(&mut cursor) {
                Err(WireError::Truncated { got, .. }) => prop_assert_eq!(got, cut),
                other => panic!("stream cut {cut}: got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation(
        frame in any_frame(),
        excess in 1u32..u32::MAX - MAX_FRAME_PAYLOAD,
    ) {
        let mut inflated = frame;
        let len = MAX_FRAME_PAYLOAD + excess;
        inflated[4..8].copy_from_slice(&len.to_le_bytes());
        prop_assert_eq!(
            decode_frame::<Response>(&inflated),
            Err(WireError::Oversize { len, max: MAX_FRAME_PAYLOAD })
        );
        // The stream reader rejects from the 8-byte header alone: no
        // payload bytes are ever requested, so a hostile length prefix
        // cannot drive an allocation.
        let mut cursor = std::io::Cursor::new(inflated[..HEADER_LEN].to_vec());
        prop_assert_eq!(
            read_frame::<Response, _>(&mut cursor),
            Err(WireError::Oversize { len, max: MAX_FRAME_PAYLOAD })
        );
        prop_assert_eq!(cursor.position() as usize, HEADER_LEN);
    }

    #[test]
    fn version_skew_is_typed(req in request(), version in 0u16..u16::MAX) {
        let version = if version == PROTOCOL_VERSION { version + 1 } else { version };
        let frame = encode_frame_versioned(&req, version).expect("encode");
        prop_assert_eq!(
            decode_frame::<Request>(&frame),
            Err(WireError::VersionSkew { got: version, want: PROTOCOL_VERSION })
        );
    }

    #[test]
    fn garbage_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let _ = decode_frame::<Request>(&bytes);
        let _ = decode_frame::<Response>(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame::<Response, _>(&mut cursor);
    }

    #[test]
    fn payload_mutations_decode_or_fail_typed(
        resp in response(),
        noise in vec((0usize..4096, 0u8..8), 1..6),
    ) {
        let mut frame = encode_frame(&resp).expect("encode");
        assert!(frame.len() > HEADER_LEN, "every payload is non-empty JSON");
        let span = frame.len() - HEADER_LEN;
        for (off, bit) in noise {
            frame[HEADER_LEN + off % span] ^= 1 << bit;
        }
        // Header untouched: the only legal outcomes are a clean decode of
        // some value or a typed payload error.
        match decode_frame::<Response>(&frame) {
            Ok((_, used)) => prop_assert_eq!(used, frame.len()),
            Err(WireError::Payload(_)) => {}
            Err(other) => panic!("payload flip produced header error {other:?}"),
        }
    }
}

/// A frame claiming exactly the cap is still structurally valid — the cap
/// is a limit on payloads, not a smaller undocumented bound.
#[test]
fn cap_boundary_is_exact() {
    let frame = encode_frame(&Request::Stats).unwrap();
    let mut at_cap = frame.clone();
    at_cap[4..8].copy_from_slice(&MAX_FRAME_PAYLOAD.to_le_bytes());
    // Length passes the cap check and the decoder then reports the frame
    // truncated (we did not supply 8 MiB of payload), not oversized.
    assert!(matches!(
        decode_frame::<Request>(&at_cap),
        Err(WireError::Truncated { .. })
    ));
    let mut over = frame;
    over[4..8].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        decode_frame::<Request>(&over),
        Err(WireError::Oversize { .. })
    ));
}
