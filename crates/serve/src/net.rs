//! TCP transport: thread-per-connection server and a blocking client.
//!
//! The server is a thin shell around [`TomographyView::answer`] — the
//! same method in-process callers use — so a networked answer differs
//! from an in-process answer only by the framing around it. That is the
//! whole byte-identity argument for the loopback smoke test: same cut,
//! same `answer`, same JSON, same bytes.
//!
//! A connection is a strict request/response alternation of frames
//! ([`crate::wire`]). Malformed input that still leaves the stream
//! decodable at the frame level (bad payload) is answered with
//! [`Response::Error`]; header-level defects (bad magic, version skew,
//! oversize) get a best-effort [`Response::Error`] and then the
//! connection closes, since frame sync cannot be trusted afterwards.

use crate::proto::{Request, Response, TomographyView};
use crate::wire::{read_frame, write_frame, WireError};
use std::io::BufWriter;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Serves `view` on `listener` forever: one thread per connection, each
/// answering framed [`Request`]s until the peer hangs up. Returns only
/// if the listener itself fails.
pub fn serve(listener: TcpListener, view: Arc<dyn TomographyView>) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let stream = conn?;
        let view = Arc::clone(&view);
        std::thread::spawn(move || handle_connection(stream, view.as_ref()));
    }
    Ok(())
}

/// Binds `addr` and serves `view` on it forever (convenience wrapper
/// reporting the bound address on stderr for scripted callers).
pub fn listen_and_serve(addr: &str, view: Arc<dyn TomographyView>) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("dophy-serve: listening on {}", listener.local_addr()?);
    serve(listener, view)
}

/// Answers one connection's requests until EOF or an unrecoverable
/// framing error.
fn handle_connection(stream: TcpStream, view: &dyn TomographyView) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame::<Request, _>(&mut reader) {
            Ok(req) => {
                let resp = view.answer(&req);
                if write_frame(&mut writer, &resp).is_err() {
                    return;
                }
            }
            // A clean EOF between frames is the peer hanging up.
            Err(WireError::Truncated { got: 0, .. }) => return,
            Err(e @ WireError::Payload(_)) => {
                // Frame boundaries are intact — report and keep serving.
                if write_frame(&mut writer, &Response::Error(e.to_string())).is_err() {
                    return;
                }
            }
            Err(e) => {
                // Header-level defect: frame sync is gone. Best-effort
                // report, then close.
                let _ = write_frame(&mut writer, &Response::Error(e.to_string()));
                return;
            }
        }
    }
}

/// Blocking framed client for the tomography service.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a listening service.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| WireError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(Self { stream })
    }

    /// Connects, retrying up to `attempts` times `delay` apart — for
    /// racing a server that is still binding (CI smoke, tests).
    pub fn connect_with_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        attempts: u32,
        delay: Duration,
    ) -> Result<Self, WireError> {
        let mut last = WireError::Io("no connection attempts made".to_string());
        for _ in 0..attempts.max(1) {
            match Self::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            std::thread::sleep(delay);
        }
        Err(last)
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)
    }
}
