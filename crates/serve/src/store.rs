//! The streaming estimate store: single-writer evidence ingest, lock-free
//! (for the reader) seq-tagged snapshot queries.
//!
//! ## Concurrency model
//!
//! One logical writer calls [`EstimateStore::ingest`] with each evidence
//! event; any number of readers call [`EstimateStore::snapshot`]
//! concurrently. The writer owns the backend behind a `Mutex`; readers
//! never touch it — they clone the current `Arc<StoreSnapshot>` out of an
//! `RwLock` whose write lock is held only for the pointer swap at publish
//! time. Ingest therefore never waits on queries and queries never wait
//! on ingest beyond that swap.
//!
//! ## Generations and consistency
//!
//! Every `publish_every` ingested events the store builds a fresh
//! immutable snapshot — a *generation* — tagged with the exact evidence
//! sequence number it covers. Because the snapshot is built under the
//! ingest lock, it is a consistent cut: it reflects evidence `1..=seq`
//! and nothing else. Backends are deterministic pure functions of their
//! evidence stream, so a snapshot at seq S is byte-identical whether the
//! stream arrived live under concurrent query load or was replayed from a
//! serialized log (the `dophy-serve --check` mode and the crate's tests
//! enforce this).
//!
//! ## Incremental top-k
//!
//! The top-k lossiest links are *maintained*, not recomputed per query:
//! the store keeps a persistent ranking (`BTreeSet` ordered by loss bits)
//! across generations and, at each publish, touches only the links whose
//! estimate actually changed since the previous generation. Queries read
//! the precomputed `top_k` vector straight off the snapshot.
//!
//! ## Freshness: windows and TTL
//!
//! Long-lived deployments must not serve estimates forever off evidence
//! that stopped arriving. Two independent knobs address that:
//!
//! * [`ServeConfig::window`] swaps the cumulative in-band backend for the
//!   tracking crate's [`WindowedNetworkEstimator`], so estimates merge
//!   only the most recent windows and follow drifting links;
//! * [`ServeConfig::ttl`] ages links out wholesale: at each publish, a
//!   link whose newest evidence is older than the TTL leaves the
//!   estimate table and the top-k, and [`StoreSnapshot::per_link`]
//!   answers a typed [`PerLinkAnswer::NotFresh`] carrying the last
//!   evidence timestamp and its age.
//!
//! Both are deterministic functions of the evidence stream and the cut
//! time, so every byte-identity guarantee carries over unchanged.

use dophy::estimator::NetworkEstimator;
use dophy::infer::{
    Estimator, EstimatorKind, Evidence, MincEstimator, SnapshotQuery, SparseConfig,
    SparseL1Estimator,
};
use dophy::tracking::{WindowConfig, WindowedNetworkEstimator};
use dophy::LossEstimate;
use dophy_sim::{SimDuration, SimTime};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Directed link key (sender node id, receiver node id).
pub type LinkKey = (u32, u32);

/// Store parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Publish a new snapshot generation every this many ingested events.
    pub publish_every: u64,
    /// How many of the lossiest links each snapshot carries.
    pub top_k: usize,
    /// MAC retry budget used for snapshots and ARQ-adjusted path loss.
    pub r: u16,
    /// Minimum samples for a link to be reported.
    pub min_samples: u64,
    /// When set, the in-band backend is replaced with the tracking
    /// backend's windowed estimator: estimates merge only the most
    /// recent windows, so they follow drifting links instead of the
    /// lifetime average. Only meaningful with
    /// [`EstimatorKind::InBand`].
    pub window: Option<WindowConfig>,
    /// When set, a link whose last evidence is older than this at
    /// publish time is *aged out*: it leaves the estimate table and the
    /// top-k, and per-link queries answer a typed
    /// [`PerLinkAnswer::NotFresh`] instead of a stale number.
    pub ttl: Option<SimDuration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            publish_every: 256,
            top_k: 10,
            r: 7,
            min_samples: 10,
            window: None,
            ttl: None,
        }
    }
}

/// Typed per-link query answer: freshness is part of the contract, not a
/// side channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerLinkAnswer {
    /// The link has a current estimate backed by evidence within the TTL.
    Fresh {
        /// The loss estimate.
        est: LossEstimate,
        /// Timestamp of the newest evidence backing it.
        last_seen: SimTime,
    },
    /// The link was estimated once, but its newest evidence is older than
    /// the store's TTL — the estimate has been aged out rather than
    /// served stale.
    NotFresh {
        /// Timestamp of the newest evidence ever seen for the link.
        last_seen: SimTime,
        /// How old that evidence was at the snapshot cut.
        age: SimDuration,
        /// The TTL the snapshot was cut with.
        ttl: SimDuration,
    },
    /// The store has never estimated this link (no evidence, or below
    /// the minimum-sample threshold).
    Unknown,
}

/// Per-link confidence/coverage readout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCoverage {
    /// Observations backing the estimate.
    pub n_samples: u64,
    /// Standard error of the loss estimate, when the backend provides one.
    pub stderr: Option<f64>,
}

/// Per-path loss answer, composed from per-link estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossReport {
    /// Hops in the queried path.
    pub hops: usize,
    /// Hops the store has an estimate for. When `known_hops < hops` the
    /// probabilities below cover only the known hops (optimistic bound).
    pub known_hops: usize,
    /// End-to-end delivery probability with per-hop ARQ: product over
    /// known hops of `1 - loss^r` (a hop delivers unless all `r`
    /// transmission attempts are lost).
    pub delivery_prob: f64,
    /// Raw single-transmission survival: product of `1 - loss` per hop.
    pub raw_success: f64,
}

/// One immutable published generation: everything queries read.
///
/// Serializing a snapshot is the canonical byte-identity probe — two
/// stores that ingested the same evidence prefix publish snapshots whose
/// JSON is equal byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// Evidence sequence number this cut covers (events `1..=seq`).
    pub seq: u64,
    /// Publish generation (0 = the empty pre-ingest snapshot).
    pub generation: u64,
    /// Largest evidence timestamp ingested (the snapshot's query time).
    pub now: SimTime,
    /// MAC retry budget the estimates were extracted with.
    pub r: u16,
    /// Minimum-sample threshold the estimates were extracted with.
    pub min_samples: u64,
    /// TTL the cut was aged with (`None` = estimates never expire).
    pub ttl: Option<SimDuration>,
    /// Per-link estimates, sorted by link key.
    pub estimates: Vec<(LinkKey, LossEstimate)>,
    /// Newest evidence timestamp per reported link, aligned with
    /// `estimates` (entry `i` backs `estimates[i]`).
    pub last_seen: Vec<SimTime>,
    /// Links aged out by the TTL at this cut: `(link, newest evidence
    /// timestamp)`, sorted by link key. They are absent from `estimates`
    /// and `top_k` but still answer a typed [`PerLinkAnswer::NotFresh`].
    pub stale: Vec<(LinkKey, SimTime)>,
    /// The `top_k` lossiest links, highest loss first.
    pub top_k: Vec<(LinkKey, f64)>,
}

impl StoreSnapshot {
    pub(crate) fn empty(cfg: &ServeConfig) -> Self {
        Self {
            seq: 0,
            generation: 0,
            now: SimTime::ZERO,
            r: cfg.r,
            min_samples: cfg.min_samples,
            ttl: cfg.ttl,
            estimates: Vec::new(),
            last_seen: Vec::new(),
            stale: Vec::new(),
            top_k: Vec::new(),
        }
    }

    /// Loss estimate for one directed link.
    pub fn link(&self, link: LinkKey) -> Option<&LossEstimate> {
        self.estimates
            .binary_search_by_key(&link, |(k, _)| *k)
            .ok()
            .map(|i| &self.estimates[i].1)
    }

    /// Typed per-link answer with freshness: `Fresh` for a live estimate,
    /// `NotFresh` for a link aged out by the TTL, `Unknown` otherwise.
    pub fn per_link(&self, link: LinkKey) -> PerLinkAnswer {
        if let Ok(i) = self.estimates.binary_search_by_key(&link, |(k, _)| *k) {
            return PerLinkAnswer::Fresh {
                est: self.estimates[i].1,
                last_seen: self.last_seen[i],
            };
        }
        if let Ok(i) = self.stale.binary_search_by_key(&link, |(k, _)| *k) {
            let last_seen = self.stale[i].1;
            return PerLinkAnswer::NotFresh {
                last_seen,
                age: self.now.since(last_seen),
                ttl: self.ttl.unwrap_or(SimDuration::ZERO),
            };
        }
        PerLinkAnswer::Unknown
    }

    /// Confidence/coverage for one directed link.
    pub fn coverage(&self, link: LinkKey) -> Option<LinkCoverage> {
        self.link(link).map(|e| LinkCoverage {
            n_samples: e.n_samples,
            stderr: e.stderr,
        })
    }

    /// Composes per-link estimates into an end-to-end loss answer for
    /// `path` (directed `(sender, receiver)` hops, origin first).
    pub fn path_loss(&self, path: &[LinkKey]) -> PathLossReport {
        let mut delivery = 1.0;
        let mut raw = 1.0;
        let mut known = 0usize;
        for hop in path {
            if let Some(e) = self.link(*hop) {
                known += 1;
                raw *= 1.0 - e.loss;
                delivery *= 1.0 - e.loss.powi(i32::from(self.r));
            }
        }
        PathLossReport {
            hops: path.len(),
            known_hops: known,
            delivery_prob: delivery,
            raw_success: raw,
        }
    }
}

/// Writer-side state: the backend plus the cross-generation ranking.
struct Ingest {
    backend: Box<dyn Estimator>,
    cfg: ServeConfig,
    seq: u64,
    generation: u64,
    now: SimTime,
    /// Newest evidence timestamp per link ever observed (drives TTL
    /// aging and the snapshot's `last_seen` column).
    last_seen: BTreeMap<LinkKey, SimTime>,
    /// Last published per-link estimates, for diffing.
    prev: BTreeMap<LinkKey, LossEstimate>,
    /// Persistent ranking by `(loss bits, link)`. Loss is a non-negative
    /// finite float, so its IEEE-754 bit pattern orders exactly like its
    /// value and the set's tail is the lossiest links.
    rank: BTreeSet<(u64, LinkKey)>,
}

impl Ingest {
    /// Records evidence time for every link the event carries data about.
    fn touch_links(&mut self, ev: &Evidence) {
        let mut touch = |link: LinkKey, at: SimTime| {
            let t = self.last_seen.entry(link).or_insert(at);
            if at > *t {
                *t = at;
            }
        };
        match ev {
            Evidence::Hop {
                at,
                sender,
                receiver,
                ..
            } => touch((*sender, *receiver), *at),
            Evidence::PathOutcome { at, path, .. } => {
                for &hop in path {
                    touch(hop, *at);
                }
            }
        }
    }

    /// Builds the next generation's snapshot, cut at `self.now`. Touches
    /// only links whose estimate changed since the previous publish.
    /// With a TTL configured, links whose newest evidence is older than
    /// the TTL are split out as stale instead of being reported.
    fn publish(&mut self) -> Arc<StoreSnapshot> {
        let q = SnapshotQuery {
            now: self.now,
            r: self.cfg.r,
            min_samples: self.cfg.min_samples,
        };
        let reported = self.backend.snapshot(&q);
        let (fresh, stale) = match self.cfg.ttl {
            None => (reported, Vec::new()),
            Some(ttl) => {
                let mut fresh = Vec::with_capacity(reported.len());
                let mut stale = Vec::new();
                for (link, est) in reported {
                    let seen = self.last_seen.get(&link).copied().unwrap_or(SimTime::ZERO);
                    if self.now.since(seen) <= ttl {
                        fresh.push((link, est));
                    } else {
                        stale.push((link, seen));
                    }
                }
                (fresh, stale)
            }
        };
        let mut new_links = 0usize;
        for (link, est) in &fresh {
            match self.prev.get(link) {
                Some(old) if old.loss == est.loss => {}
                Some(old) => {
                    self.rank.remove(&(old.loss.to_bits(), *link));
                    self.rank.insert((est.loss.to_bits(), *link));
                }
                None => {
                    new_links += 1;
                    self.rank.insert((est.loss.to_bits(), *link));
                }
            }
        }
        // Links can drop out of a snapshot (e.g. a windowed backend aging
        // a link below min_samples); evict their ranking entries.
        if self.prev.len() + new_links > fresh.len() {
            let fresh_keys: BTreeSet<LinkKey> = fresh.iter().map(|(k, _)| *k).collect();
            for (link, old) in &self.prev {
                if !fresh_keys.contains(link) {
                    self.rank.remove(&(old.loss.to_bits(), *link));
                }
            }
        }
        self.prev = fresh.iter().cloned().collect();
        self.generation += 1;
        let top_k = self
            .rank
            .iter()
            .rev()
            .take(self.cfg.top_k)
            .map(|&(bits, link)| (link, f64::from_bits(bits)))
            .collect();
        let last_seen = fresh
            .iter()
            .map(|(k, _)| self.last_seen.get(k).copied().unwrap_or(SimTime::ZERO))
            .collect();
        Arc::new(StoreSnapshot {
            seq: self.seq,
            generation: self.generation,
            now: self.now,
            r: self.cfg.r,
            min_samples: self.cfg.min_samples,
            ttl: self.cfg.ttl,
            estimates: fresh,
            last_seen,
            stale,
            top_k,
        })
    }
}

/// The service core: one of these per served tomography instance.
pub struct EstimateStore {
    ingest: Mutex<Ingest>,
    published: RwLock<Arc<StoreSnapshot>>,
}

impl EstimateStore {
    /// Builds a store around a fresh backend of the given kind. With
    /// `cfg.window` set, the backend is the tracking crate's windowed
    /// estimator (time-resolved in-band estimates); that combination is
    /// only defined for [`EstimatorKind::InBand`].
    ///
    /// # Panics
    ///
    /// When `cfg.window` is set with an end-to-end estimator kind — the
    /// windowed backend consumes in-band hop evidence only.
    pub fn new(kind: EstimatorKind, cfg: ServeConfig) -> Self {
        let backend: Box<dyn Estimator> = match (kind, cfg.window) {
            (EstimatorKind::InBand, Some(w)) => Box::new(WindowedNetworkEstimator::new(w)),
            (EstimatorKind::InBand, None) => Box::new(NetworkEstimator::new()),
            (EstimatorKind::Minc, None) => Box::new(MincEstimator::new()),
            (EstimatorKind::SparseL1, None) => {
                Box::new(SparseL1Estimator::new(SparseConfig::default()))
            }
            (other, Some(_)) => {
                panic!("windowed serving requires the in-band estimator, got {other}")
            }
        };
        Self {
            ingest: Mutex::new(Ingest {
                backend,
                cfg,
                seq: 0,
                generation: 0,
                now: SimTime::ZERO,
                last_seen: BTreeMap::new(),
                prev: BTreeMap::new(),
                rank: BTreeSet::new(),
            }),
            published: RwLock::new(Arc::new(StoreSnapshot::empty(&cfg))),
        }
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> ServeConfig {
        self.ingest.lock().cfg
    }

    /// Ingests one evidence event; returns its sequence number. Publishes
    /// a new generation every `publish_every` events.
    pub fn ingest(&self, ev: &Evidence) -> u64 {
        let mut g = self.ingest.lock();
        g.backend.observe(ev);
        g.touch_links(ev);
        g.seq += 1;
        let at = match ev {
            Evidence::Hop { at, .. } | Evidence::PathOutcome { at, .. } => *at,
        };
        if at > g.now {
            g.now = at;
        }
        if g.seq.is_multiple_of(g.cfg.publish_every) {
            let snap = g.publish();
            *self.published.write() = snap;
        }
        g.seq
    }

    /// Forces a publish covering everything ingested so far (end of
    /// stream, or a determinism checkpoint at an exact seq).
    pub fn publish_now(&self) -> Arc<StoreSnapshot> {
        let mut g = self.ingest.lock();
        let snap = g.publish();
        *self.published.write() = Arc::clone(&snap);
        snap
    }

    /// Forces a publish cut at an externally supplied query time (never
    /// earlier than the newest ingested evidence). The sharded router
    /// uses this so every shard ages TTLs and windows against the same
    /// global clock, which is what keeps a merged cut byte-identical to
    /// a single store at the same evidence seq.
    pub fn publish_now_at(&self, now: SimTime) -> Arc<StoreSnapshot> {
        let mut g = self.ingest.lock();
        if now > g.now {
            g.now = now;
        }
        let snap = g.publish();
        *self.published.write() = Arc::clone(&snap);
        snap
    }

    /// The current published snapshot. Never blocks ingest beyond the
    /// publish-time pointer swap; the returned cut stays valid (and
    /// immutable) for as long as the caller holds it.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        Arc::clone(&self.published.read())
    }

    /// Evidence events ingested so far.
    pub fn seq(&self) -> u64 {
        self.ingest.lock().seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_coding::aggregate::AttemptObservation;

    fn hop(sender: u32, receiver: u32, attempt: u16, at_us: u64) -> Evidence {
        Evidence::Hop {
            at: SimTime::from_micros(at_us),
            sender,
            receiver,
            observation: AttemptObservation::Exact(attempt),
        }
    }

    fn store() -> EstimateStore {
        EstimateStore::new(
            EstimatorKind::InBand,
            ServeConfig {
                publish_every: 64,
                top_k: 3,
                r: 7,
                min_samples: 5,
                ..ServeConfig::default()
            },
        )
    }

    /// Feeds three links with distinct loss rates and checks the queries.
    #[test]
    fn queries_answer_from_published_generations() {
        let s = store();
        // Link (2,1): mostly first-attempt success. (3,1): often 3 tries.
        // (4,1): often 5 tries. More attempts => higher estimated loss.
        for i in 0..120u64 {
            s.ingest(&hop(2, 1, 1 + (i % 4 == 0) as u16, i * 1000));
            s.ingest(&hop(3, 1, 1 + (i % 2) as u16 * 2, i * 1000 + 1));
            s.ingest(&hop(4, 1, if i % 3 == 0 { 1 } else { 5 }, i * 1000 + 2));
        }
        let snap = s.publish_now();
        assert_eq!(snap.seq, 360);
        assert!(snap.generation >= 5, "generation {}", snap.generation);
        assert_eq!(snap.estimates.len(), 3);
        let l21 = snap.link((2, 1)).expect("link (2,1) estimated");
        let l41 = snap.link((4, 1)).expect("link (4,1) estimated");
        assert!(l41.loss > l21.loss, "more retries must read as lossier");
        assert!(snap.link((9, 9)).is_none());
        let cov = snap.coverage((2, 1)).unwrap();
        assert_eq!(cov.n_samples, 120);
        // Path query composes the per-link estimates.
        let rep = snap.path_loss(&[(4, 1), (2, 1)]);
        assert_eq!(rep.hops, 2);
        assert_eq!(rep.known_hops, 2);
        assert!(rep.raw_success <= (1.0 - l41.loss) * (1.0 - l21.loss) + 1e-12);
        assert!(rep.delivery_prob > rep.raw_success);
        let partial = snap.path_loss(&[(4, 1), (7, 7)]);
        assert_eq!(partial.known_hops, 1);
    }

    /// The maintained top-k must equal a from-scratch sort of the
    /// published estimates, at every generation.
    #[test]
    fn incremental_top_k_matches_recompute() {
        let s = store();
        for i in 0..400u64 {
            let link = 2 + (i % 7) as u32;
            let attempts = 1 + ((i * 31 + link as u64) % 5) as u16;
            s.ingest(&hop(link, 1, attempts, i * 500));
            if i % 64 == 63 {
                let snap = s.snapshot();
                let mut expect: Vec<(LinkKey, f64)> =
                    snap.estimates.iter().map(|&(k, e)| (k, e.loss)).collect();
                expect.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(b.0.cmp(&a.0)));
                expect.truncate(3);
                assert_eq!(snap.top_k, expect, "generation {}", snap.generation);
            }
        }
    }

    /// Reading while writing from another thread: every observed snapshot
    /// must be internally consistent and seq must be monotone.
    #[test]
    fn snapshots_are_consistent_under_concurrent_ingest() {
        let s = store();
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                let mut last_seq = 0;
                let mut observed = 0u64;
                while observed < 20_000 {
                    let snap = s.snapshot();
                    assert!(snap.seq >= last_seq, "seq went backwards");
                    last_seq = snap.seq;
                    // top_k entries must exist in the estimate table with
                    // the same loss — a torn cut would break this.
                    for &(link, loss) in &snap.top_k {
                        let e = snap.link(link).expect("top-k link missing");
                        assert_eq!(e.loss, loss);
                    }
                    observed += 1;
                }
            });
            for i in 0..3000u64 {
                let link = 2 + (i % 5) as u32;
                s.ingest(&hop(link, 1, 1 + (i % 3) as u16, i * 200));
            }
            s.publish_now();
            reader.join().unwrap();
        });
        assert_eq!(s.seq(), 3000);
    }

    /// Snapshot JSON at the same seq is byte-identical live vs replayed.
    #[test]
    fn snapshot_serialization_is_replay_stable() {
        let events: Vec<Evidence> = (0..200u64)
            .map(|i| hop(2 + (i % 4) as u32, 1, 1 + (i % 3) as u16, i * 700))
            .collect();
        let a = store();
        for ev in &events {
            a.ingest(ev);
        }
        let snap_a = serde_json::to_string(&*a.publish_now()).unwrap();
        // Round-trip the evidence itself through JSON, then replay.
        let json = serde_json::to_string(&events).unwrap();
        let replayed: Vec<Evidence> = serde_json::from_str(&json).unwrap();
        assert_eq!(replayed, events);
        let b = store();
        for ev in &replayed {
            b.ingest(ev);
        }
        let snap_b = serde_json::to_string(&*b.publish_now()).unwrap();
        assert_eq!(snap_a, snap_b);
    }
}
