//! The service vocabulary: versioned request/response types and the
//! query surface every store flavor serves.
//!
//! The wire protocol ([`crate::wire`]) moves exactly these types; the
//! in-process query API answers exactly these types. That symmetry is the
//! point — a loopback client and an in-process caller issue the same
//! [`Request`] and must receive the byte-identical [`Response`], which is
//! what the end-to-end tests and the `dophy-serve --connect --check` mode
//! enforce.
//!
//! ## Version policy
//!
//! [`PROTOCOL_VERSION`] is carried in every frame header and checked
//! before the payload is touched. Additive payload evolution (new enum
//! variants, new optional fields) bumps the version; a decoder never
//! guesses across versions — skew is a typed
//! [`crate::wire::WireError::VersionSkew`], surfaced to the peer as a
//! [`Response::Error`], so mixed deployments fail loudly instead of
//! misreading each other's floats.

use crate::store::{
    EstimateStore, LinkCoverage, LinkKey, PathLossReport, PerLinkAnswer, StoreSnapshot,
};
use dophy::infer::Evidence;
use dophy_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Wire protocol version. Bumped on any change to the frame layout or to
/// the request/response payload schema.
pub const PROTOCOL_VERSION: u16 = 1;

/// One query, as issued by a client (in-process or over the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Loss estimate for one directed link, with freshness.
    PerLink {
        /// The directed `(sender, receiver)` link.
        link: LinkKey,
    },
    /// Confidence/coverage for one directed link.
    Coverage {
        /// The directed `(sender, receiver)` link.
        link: LinkKey,
    },
    /// End-to-end loss composed over a directed path.
    Path {
        /// Directed `(sender, receiver)` hops, origin first.
        path: Vec<LinkKey>,
    },
    /// The `k` lossiest links (capped at the store's configured top-k).
    TopK {
        /// Entries requested.
        k: u32,
    },
    /// Service counters: seq, generation, link totals, shard count.
    Stats,
    /// The full snapshot covering at least `min_seq` evidence events —
    /// the byte-identity probe (answers [`Response::NotReady`] when the
    /// store has not reached that seq yet).
    SnapshotAt {
        /// Minimum evidence sequence number the cut must cover.
        min_seq: u64,
    },
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Evidence events behind the published cut.
    pub seq: u64,
    /// Publish generation of the cut.
    pub generation: u64,
    /// Largest evidence timestamp in the cut.
    pub now: SimTime,
    /// Links with a fresh estimate.
    pub links: u64,
    /// Links aged out by the TTL.
    pub stale_links: u64,
    /// Store shards answering queries (1 for an unsharded store).
    pub store_shards: u64,
}

/// The answer to one [`Request`]. Every variant that reads estimate state
/// carries the evidence `seq` of the consistent cut it was answered from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::PerLink`].
    PerLink {
        /// Evidence seq of the cut.
        seq: u64,
        /// The typed freshness-aware answer.
        answer: PerLinkAnswer,
    },
    /// Answer to [`Request::Coverage`].
    Coverage {
        /// Evidence seq of the cut.
        seq: u64,
        /// Coverage, when the link has a fresh estimate.
        coverage: Option<LinkCoverage>,
    },
    /// Answer to [`Request::Path`].
    Path {
        /// Evidence seq of the cut.
        seq: u64,
        /// The composed report.
        report: PathLossReport,
    },
    /// Answer to [`Request::TopK`].
    TopK {
        /// Evidence seq of the cut.
        seq: u64,
        /// `(link, loss)`, highest loss first.
        entries: Vec<(LinkKey, f64)>,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServiceStats),
    /// Answer to [`Request::SnapshotAt`]: the full consistent cut.
    Snapshot(StoreSnapshot),
    /// The store has not reached the requested seq yet.
    NotReady {
        /// Evidence seq of the current cut.
        have_seq: u64,
        /// The seq the client asked for.
        want_seq: u64,
    },
    /// The server could not answer (malformed frame, version skew, ...).
    Error(String),
}

/// The query surface: anything that can answer a [`Request`] from a
/// consistent cut. Implemented by [`EstimateStore`] (one snapshot) and
/// [`crate::shard_store::ShardedStore`] (a cross-shard barrier cut) —
/// and served verbatim over the wire, so in-process and networked
/// answers share one code path.
pub trait TomographyView: Send + Sync {
    /// Answers one request from the current published cut.
    fn answer(&self, req: &Request) -> Response;
}

/// The ingest surface shared by the store flavors: everything the load
/// drivers and the replay checker need, independent of sharding.
pub trait ServeStore: TomographyView {
    /// Ingests one evidence event; returns its global sequence number.
    fn ingest(&self, ev: &Evidence) -> u64;

    /// Forces a publish covering everything ingested so far and returns
    /// the canonical cut (for a sharded store: the cross-shard merge,
    /// byte-identical to a single store at the same seq).
    fn publish_cut(&self) -> StoreSnapshot;

    /// The canonical view of the currently published cut.
    fn current_cut(&self) -> StoreSnapshot;

    /// Evidence events ingested so far.
    fn seq(&self) -> u64;
}

/// Answers a request from one immutable snapshot. This is the single
/// store's whole query path, and the reference semantics the sharded
/// fan-out must reproduce bit for bit.
pub fn answer_from_snapshot(snap: &StoreSnapshot, req: &Request) -> Response {
    match req {
        Request::PerLink { link } => Response::PerLink {
            seq: snap.seq,
            answer: snap.per_link(*link),
        },
        Request::Coverage { link } => Response::Coverage {
            seq: snap.seq,
            coverage: snap.coverage(*link),
        },
        Request::Path { path } => Response::Path {
            seq: snap.seq,
            report: snap.path_loss(path),
        },
        Request::TopK { k } => Response::TopK {
            seq: snap.seq,
            entries: snap.top_k.iter().take(*k as usize).copied().collect(),
        },
        Request::Stats => Response::Stats(ServiceStats {
            seq: snap.seq,
            generation: snap.generation,
            now: snap.now,
            links: snap.estimates.len() as u64,
            stale_links: snap.stale.len() as u64,
            store_shards: 1,
        }),
        Request::SnapshotAt { min_seq } => {
            if snap.seq >= *min_seq {
                Response::Snapshot(snap.clone())
            } else {
                Response::NotReady {
                    have_seq: snap.seq,
                    want_seq: *min_seq,
                }
            }
        }
    }
}

impl TomographyView for EstimateStore {
    fn answer(&self, req: &Request) -> Response {
        answer_from_snapshot(&self.snapshot(), req)
    }
}

impl ServeStore for EstimateStore {
    fn ingest(&self, ev: &Evidence) -> u64 {
        EstimateStore::ingest(self, ev)
    }

    fn publish_cut(&self) -> StoreSnapshot {
        (*self.publish_now()).clone()
    }

    fn current_cut(&self) -> StoreSnapshot {
        (*self.snapshot()).clone()
    }

    fn seq(&self) -> u64 {
        EstimateStore::seq(self)
    }
}
