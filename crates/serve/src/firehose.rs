//! The firehose: evidence capture from N parallel simulations, merged
//! into one deterministic stream for the service to ingest.
//!
//! Each simulation runs through the bench executor ([`execute_cell`]:
//! pool + panic isolation — the same machinery `dophy-run` uses) with an
//! [`Instruments::evidence`] tap attached, so capture reuses the exact
//! scenario path every figure runs on. Simulation `k` gets seed
//! `base_seed + k` and its node ids are namespaced by `k * node_count`,
//! so the merged stream reads as one large network with per-simulation
//! node blocks and no link-key collisions.
//!
//! The merge is deterministic: events are keyed by
//! `(timestamp, simulation index, position in that simulation's log)`
//! and stably sorted, so the same specs always produce the same firehose
//! byte for byte — which is what makes service-level replay checks
//! meaningful.

use dophy::infer::Evidence;
use dophy_bench::{execute_cell, Instruments, RunSpec};
use dophy_sim::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-simulation capture summary.
#[derive(Debug, Clone, Copy)]
pub struct SimCapture {
    /// Simulation index (0-based; also the node-id block).
    pub sim: usize,
    /// Seed the simulation ran with.
    pub seed: u64,
    /// Evidence events this simulation contributed.
    pub events: usize,
    /// Packets the simulation delivered end to end.
    pub delivered: u64,
}

/// A captured, merged evidence stream plus its provenance.
#[derive(Debug, Clone)]
pub struct Firehose {
    /// The merged stream, in deterministic ingest order.
    pub events: Vec<Evidence>,
    /// Per-simulation summaries, in simulation order.
    pub sims: Vec<SimCapture>,
    /// Nodes per simulation (the namespacing block size).
    pub node_count: usize,
}

/// Shifts every node id in an evidence event by `offset` (simulation
/// namespacing). Timestamps and observations are untouched.
fn shift(ev: &Evidence, offset: u32) -> Evidence {
    match ev {
        Evidence::Hop {
            at,
            sender,
            receiver,
            observation,
        } => Evidence::Hop {
            at: *at,
            sender: sender + offset,
            receiver: receiver + offset,
            observation: *observation,
        },
        Evidence::PathOutcome {
            at,
            origin,
            path,
            sent,
            delivered,
        } => Evidence::PathOutcome {
            at: *at,
            origin: origin + offset,
            path: path.iter().map(|(a, b)| (a + offset, b + offset)).collect(),
            sent: *sent,
            delivered: *delivered,
        },
    }
}

fn at(ev: &Evidence) -> SimTime {
    match ev {
        Evidence::Hop { at, .. } | Evidence::PathOutcome { at, .. } => *at,
    }
}

/// One simulation's captured events plus its delivered-packet count.
type CaptureResult = Result<(Vec<Evidence>, u64), String>;

/// Runs `sims` copies of `base` (seeds `base.sim.seed + k`) with evidence
/// capture, at most `jobs` concurrently, and merges the captured streams.
pub fn capture(base: &RunSpec, sims: usize, jobs: usize) -> Result<Firehose, String> {
    let node_count = base.sim.placement.node_count();
    let results: Vec<Mutex<Option<CaptureResult>>> = (0..sims).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.max(1).min(sims.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::SeqCst);
                if k >= sims {
                    break;
                }
                let mut spec = *base;
                spec.sim.seed = base.sim.seed + k as u64;
                let buffer = Arc::new(Mutex::new(Vec::new()));
                let inst = Instruments {
                    evidence: Some(Arc::clone(&buffer)),
                    ..Instruments::default()
                };
                let label = format!("firehose-sim{k}");
                let res = execute_cell(&label, spec, inst, 1).map(|out| {
                    let events = std::mem::take(&mut *buffer.lock());
                    (events, out.overhead.packets)
                });
                *results[k].lock() = Some(res);
            });
        }
    });

    let mut tagged: Vec<(SimTime, usize, Evidence)> = Vec::new();
    let mut summaries = Vec::with_capacity(sims);
    for (k, slot) in results.iter().enumerate() {
        let (events, delivered) = slot
            .lock()
            .take()
            .unwrap_or_else(|| Err(format!("firehose sim {k} never executed")))?;
        summaries.push(SimCapture {
            sim: k,
            seed: base.sim.seed + k as u64,
            events: events.len(),
            delivered,
        });
        let offset = (k * node_count) as u32;
        for ev in &events {
            tagged.push((at(ev), k, shift(ev, offset)));
        }
    }
    // Stable sort: ties on (time, sim) keep each simulation's own
    // observation order, so the merge is a pure function of the captures.
    tagged.sort_by_key(|(t, sim, _)| (*t, *sim));
    Ok(Firehose {
        events: tagged.into_iter().map(|(_, _, ev)| ev).collect(),
        sims: summaries,
        node_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_coding::aggregate::AttemptObservation;

    #[test]
    fn shift_namespaces_every_node_id() {
        let hop = Evidence::Hop {
            at: SimTime::from_micros(5),
            sender: 3,
            receiver: 1,
            observation: AttemptObservation::Exact(2),
        };
        match shift(&hop, 100) {
            Evidence::Hop {
                sender, receiver, ..
            } => {
                assert_eq!((sender, receiver), (103, 101));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let path = Evidence::PathOutcome {
            at: SimTime::from_micros(9),
            origin: 4,
            path: vec![(4, 2), (2, 0)],
            sent: 10,
            delivered: 9,
        };
        match shift(&path, 16) {
            Evidence::PathOutcome { origin, path, .. } => {
                assert_eq!(origin, 20);
                assert_eq!(path, vec![(20, 18), (18, 16)]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
