//! Link-range-sharded estimate stores behind one router.
//!
//! ## Partitioning
//!
//! Links are partitioned by **sender node id** into contiguous ranges
//! ([`ShardRanges`]): shard `i` owns every directed link whose sender
//! falls in its range. Hop evidence goes to exactly the owning shard;
//! path-outcome evidence goes to every shard owning some hop of the path
//! (deduplicated). Because link keys order by `(sender, receiver)` and
//! ranges are contiguous in sender, concatenating per-shard estimate
//! tables in shard order reproduces the globally sorted table — no
//! re-sort, no float comparisons, byte-identical to a single store.
//!
//! ## The seq barrier and byte identity
//!
//! The router owns the *global* evidence clock: one sequence number and
//! the running max evidence timestamp. Shards are built with
//! self-publishing disabled (`publish_every = u64::MAX`) and publish only
//! when the router runs a **barrier**: every shard cuts a snapshot via
//! [`EstimateStore::publish_now_at`] with the router's global `now`, and
//! the router assembles the per-shard cuts plus a merged canonical
//! [`StoreSnapshot`] into one [`ShardedCut`] published atomically. Readers
//! therefore never observe shard A at generation `g+1` next to shard B at
//! `g` — the cut is untorn by construction, and the concurrency tests
//! assert it stays that way.
//!
//! Running barriers at the same cadence a single store publishes
//! (`publish_every` global events) and aging TTLs/windows against the
//! same global `now` makes the merged cut **byte-identical** to a single
//! [`EstimateStore`] that ingested the same stream — at any shard count
//! and any ingest-thread count. That identity is exact for the
//! evidence-local backends (in-band, windowed in-band). For the
//! end-to-end backends (`minc`, `sparse-l1`) it additionally requires
//! ranges that never split a path across shards — which
//! [`ShardRanges::by_blocks`] guarantees for firehose streams, where each
//! simulation's nodes occupy one contiguous id block.
//!
//! ## Threaded ingest
//!
//! [`ShardedStore::ingest_threaded`] runs one ingest thread per shard fed
//! by a channel, so heavy evidence streams are no longer single-writer
//! bound: the router only routes (a range lookup) while shards do the
//! backend work in parallel. Barriers block the router until every shard
//! acknowledges its cut with the published snapshot — the same consistent
//! cut as inline ingest, arrived at concurrently.

use crate::proto::{
    answer_from_snapshot, Request, Response, ServeStore, ServiceStats, TomographyView,
};
use crate::store::{EstimateStore, LinkKey, PathLossReport, ServeConfig, StoreSnapshot};
use dophy::infer::{EstimatorKind, Evidence};
use dophy_sim::SimTime;
use parking_lot::{Mutex, RwLock};
use std::sync::mpsc;
use std::sync::Arc;

/// Contiguous sender-id ranges, one per shard. Range `i` spans
/// `[starts[i], starts[i+1])`; the last range is unbounded above, so
/// every sender id has an owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRanges {
    starts: Vec<u32>,
}

impl ShardRanges {
    /// `shards` near-equal contiguous ranges over sender ids
    /// `[0, node_count)`.
    #[must_use]
    pub fn uniform(node_count: u32, shards: usize) -> Self {
        let shards = shards.max(1);
        let starts = (0..shards)
            .map(|i| (i as u64 * u64::from(node_count) / shards as u64) as u32)
            .collect();
        Self { starts }
    }

    /// Ranges aligned to node-id blocks of `block_size` (the firehose
    /// namespaces simulation `k` into block `k`): `blocks` blocks are
    /// split into `shards` contiguous groups, so no block — and hence no
    /// firehose path — ever straddles a shard boundary. This is the
    /// alignment that extends byte identity to the end-to-end backends.
    #[must_use]
    pub fn by_blocks(block_size: u32, blocks: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(blocks.max(1));
        let starts = (0..shards)
            .map(|i| (i * blocks.max(1) / shards) as u32 * block_size)
            .collect();
        Self { starts }
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether there are no shards (never true for constructed ranges).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The shard owning links sent by `sender`.
    #[must_use]
    pub fn shard_of(&self, sender: u32) -> usize {
        self.starts.partition_point(|&s| s <= sender).max(1) - 1
    }

    /// The shard owning a directed link (ownership is by sender).
    #[must_use]
    pub fn shard_of_link(&self, link: LinkKey) -> usize {
        self.shard_of(link.0)
    }
}

/// The router's global evidence clock.
struct RouterClock {
    seq: u64,
    now: SimTime,
}

/// One atomically published cross-shard cut: the per-shard snapshots
/// (all at the same generation, cut at the same global `now`) plus the
/// merged canonical snapshot byte-identical to a single store's.
pub struct ShardedCut {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<Arc<StoreSnapshot>>,
    /// The merged canonical cut (global seq/generation/now).
    pub merged: Arc<StoreSnapshot>,
}

/// Message to a shard ingest thread: evidence to observe, or a barrier
/// cut order carrying the global query time.
enum ShardMsg<'a> {
    Ev(&'a Evidence),
    Cut { now: SimTime },
}

/// A link-range-sharded [`EstimateStore`] router: same query surface,
/// same bytes, N writers.
pub struct ShardedStore {
    shards: Vec<EstimateStore>,
    ranges: ShardRanges,
    cfg: ServeConfig,
    clock: Mutex<RouterClock>,
    published: RwLock<Arc<ShardedCut>>,
}

impl ShardedStore {
    /// Builds one backend per range. `cfg` reads exactly as for a single
    /// [`EstimateStore`]: `publish_every` is the *global* barrier cadence
    /// (shards never self-publish).
    pub fn new(kind: EstimatorKind, cfg: ServeConfig, ranges: ShardRanges) -> Self {
        let shard_cfg = ServeConfig {
            publish_every: u64::MAX,
            ..cfg
        };
        let shards: Vec<EstimateStore> = (0..ranges.len())
            .map(|_| EstimateStore::new(kind, shard_cfg))
            .collect();
        let empties: Vec<Arc<StoreSnapshot>> = shards.iter().map(|s| s.snapshot()).collect();
        let merged = Arc::new(StoreSnapshot::empty(&cfg));
        Self {
            shards,
            ranges,
            cfg,
            clock: Mutex::new(RouterClock {
                seq: 0,
                now: SimTime::ZERO,
            }),
            published: RwLock::new(Arc::new(ShardedCut {
                shards: empties,
                merged,
            })),
        }
    }

    /// Number of store shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning in force.
    #[must_use]
    pub fn ranges(&self) -> &ShardRanges {
        &self.ranges
    }

    /// The configuration the router was built with.
    #[must_use]
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// The currently published cross-shard cut.
    pub fn cut(&self) -> Arc<ShardedCut> {
        Arc::clone(&self.published.read())
    }

    /// Calls `deliver` with each shard index that must observe `ev`:
    /// the sender's owner for hop evidence, every hop's owner
    /// (deduplicated) for path outcomes.
    fn route(&self, ev: &Evidence, mut deliver: impl FnMut(usize)) {
        match ev {
            Evidence::Hop { sender, .. } => deliver(self.ranges.shard_of(*sender)),
            Evidence::PathOutcome { origin, path, .. } => {
                if path.is_empty() {
                    deliver(self.ranges.shard_of(*origin));
                    return;
                }
                let mut owners: Vec<usize> =
                    path.iter().map(|&(a, _)| self.ranges.shard_of(a)).collect();
                owners.sort_unstable();
                owners.dedup();
                for i in owners {
                    deliver(i);
                }
            }
        }
    }

    /// Merges per-shard snapshots into the canonical cut at global
    /// `(seq, now)`. Estimate tables concatenate in shard order (already
    /// globally sorted — ranges are contiguous in the sender, the major
    /// key); top-k merges by `(loss bits, link)` descending, exactly the
    /// single store's ranking order.
    fn assemble(&self, seq: u64, now: SimTime, snaps: Vec<Arc<StoreSnapshot>>) -> ShardedCut {
        let generation = snaps.first().map_or(0, |s| s.generation);
        debug_assert!(
            snaps.iter().all(|s| s.generation == generation),
            "torn barrier: shard generations diverged"
        );
        let mut estimates = Vec::new();
        let mut last_seen = Vec::new();
        let mut stale = Vec::new();
        let mut top_k: Vec<(LinkKey, f64)> = Vec::new();
        for s in &snaps {
            estimates.extend_from_slice(&s.estimates);
            last_seen.extend_from_slice(&s.last_seen);
            stale.extend_from_slice(&s.stale);
            top_k.extend_from_slice(&s.top_k);
        }
        top_k.sort_by(|a, b| {
            b.1.to_bits()
                .cmp(&a.1.to_bits())
                .then_with(|| b.0.cmp(&a.0))
        });
        top_k.truncate(self.cfg.top_k);
        let merged = Arc::new(StoreSnapshot {
            seq,
            generation,
            now,
            r: self.cfg.r,
            min_samples: self.cfg.min_samples,
            ttl: self.cfg.ttl,
            estimates,
            last_seen,
            stale,
            top_k,
        });
        ShardedCut {
            shards: snaps,
            merged,
        }
    }

    /// Inline barrier: cut every shard at the global clock and publish
    /// the assembled cut. Caller holds the clock lock.
    fn barrier_inline(&self, clock: &RouterClock) -> Arc<ShardedCut> {
        let snaps: Vec<Arc<StoreSnapshot>> = self
            .shards
            .iter()
            .map(|s| s.publish_now_at(clock.now))
            .collect();
        let cut = Arc::new(self.assemble(clock.seq, clock.now, snaps));
        *self.published.write() = Arc::clone(&cut);
        cut
    }

    /// Ingests the whole stream with one ingest thread per shard. The
    /// router routes each event to its owning shard's channel and runs
    /// the barrier every `publish_every` global events; a barrier blocks
    /// until every shard has cut (channels are FIFO, so each shard has by
    /// then observed exactly its prefix of the stream). Returns the final
    /// global seq. The final cut still requires [`ServeStore::publish_cut`],
    /// matching inline ingest.
    pub fn ingest_threaded(&self, events: &[Evidence]) -> u64 {
        let n = self.shards.len();
        std::thread::scope(|scope| {
            let mut event_txs = Vec::with_capacity(n);
            let mut snap_rxs = Vec::with_capacity(n);
            for shard in &self.shards {
                let (tx, rx) = mpsc::channel::<ShardMsg<'_>>();
                let (snap_tx, snap_rx) = mpsc::channel::<Arc<StoreSnapshot>>();
                event_txs.push(tx);
                snap_rxs.push(snap_rx);
                scope.spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ShardMsg::Ev(ev) => {
                                shard.ingest(ev);
                            }
                            ShardMsg::Cut { now } => {
                                if snap_tx.send(shard.publish_now_at(now)).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
            let mut clock = self.clock.lock();
            for ev in events {
                clock.seq += 1;
                let at = evidence_time(ev);
                if at > clock.now {
                    clock.now = at;
                }
                self.route(ev, |i| {
                    event_txs[i]
                        .send(ShardMsg::Ev(ev))
                        .expect("shard ingest thread died");
                });
                if clock.seq.is_multiple_of(self.cfg.publish_every) {
                    for tx in &event_txs {
                        tx.send(ShardMsg::Cut { now: clock.now })
                            .expect("shard ingest thread died");
                    }
                    let snaps: Vec<Arc<StoreSnapshot>> = snap_rxs
                        .iter()
                        .map(|rx| rx.recv().expect("shard dropped its cut"))
                        .collect();
                    let cut = Arc::new(self.assemble(clock.seq, clock.now, snaps));
                    *self.published.write() = cut;
                }
            }
            drop(event_txs);
            clock.seq
        })
    }
}

fn evidence_time(ev: &Evidence) -> SimTime {
    match ev {
        Evidence::Hop { at, .. } | Evidence::PathOutcome { at, .. } => *at,
    }
}

impl TomographyView for ShardedStore {
    /// Fan-out/merge over the published cut: per-link and coverage go to
    /// the owning shard, paths compose hop by hop from each hop's owner
    /// (same multiplication order as the single store, so the floats are
    /// bit-identical), top-k merges across shards, and snapshots serve
    /// the pre-merged canonical cut.
    fn answer(&self, req: &Request) -> Response {
        let cut = self.cut();
        let seq = cut.merged.seq;
        match req {
            Request::PerLink { link } => Response::PerLink {
                seq,
                answer: cut.shards[self.ranges.shard_of_link(*link)].per_link(*link),
            },
            Request::Coverage { link } => Response::Coverage {
                seq,
                coverage: cut.shards[self.ranges.shard_of_link(*link)].coverage(*link),
            },
            Request::Path { path } => {
                let mut delivery = 1.0;
                let mut raw = 1.0;
                let mut known = 0usize;
                for hop in path {
                    let snap = &cut.shards[self.ranges.shard_of_link(*hop)];
                    if let Some(e) = snap.link(*hop) {
                        known += 1;
                        raw *= 1.0 - e.loss;
                        delivery *= 1.0 - e.loss.powi(i32::from(self.cfg.r));
                    }
                }
                Response::Path {
                    seq,
                    report: PathLossReport {
                        hops: path.len(),
                        known_hops: known,
                        delivery_prob: delivery,
                        raw_success: raw,
                    },
                }
            }
            Request::TopK { k } => Response::TopK {
                seq,
                entries: cut.merged.top_k.iter().take(*k as usize).copied().collect(),
            },
            Request::Stats => Response::Stats(ServiceStats {
                seq,
                generation: cut.merged.generation,
                now: cut.merged.now,
                links: cut.merged.estimates.len() as u64,
                stale_links: cut.merged.stale.len() as u64,
                store_shards: self.shards.len() as u64,
            }),
            Request::SnapshotAt { .. } => answer_from_snapshot(&cut.merged, req),
        }
    }
}

impl ServeStore for ShardedStore {
    /// Inline (router-threaded) ingest: routes the event, advances the
    /// global clock, and runs the barrier at the publish cadence.
    fn ingest(&self, ev: &Evidence) -> u64 {
        let mut clock = self.clock.lock();
        clock.seq += 1;
        let at = evidence_time(ev);
        if at > clock.now {
            clock.now = at;
        }
        self.route(ev, |i| {
            self.shards[i].ingest(ev);
        });
        if clock.seq.is_multiple_of(self.cfg.publish_every) {
            self.barrier_inline(&clock);
        }
        clock.seq
    }

    fn publish_cut(&self) -> StoreSnapshot {
        let clock = self.clock.lock();
        let cut = self.barrier_inline(&clock);
        (*cut.merged).clone()
    }

    fn current_cut(&self) -> StoreSnapshot {
        (*self.cut().merged).clone()
    }

    fn seq(&self) -> u64 {
        self.clock.lock().seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ranges_cover_every_sender() {
        let r = ShardRanges::uniform(10, 4);
        assert_eq!(r.len(), 4);
        for sender in 0..10u32 {
            let s = r.shard_of(sender);
            assert!(s < 4, "sender {sender} mapped to shard {s}");
        }
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(9), 3);
        // Past the nominal universe, the last shard owns everything.
        assert_eq!(r.shard_of(10_000), 3);
        // Ranges are contiguous and monotone in the sender.
        let mut prev = 0;
        for sender in 0..10u32 {
            let s = r.shard_of(sender);
            assert!(s >= prev, "ownership must be monotone");
            prev = s;
        }
    }

    #[test]
    fn block_ranges_never_split_a_block() {
        let r = ShardRanges::by_blocks(16, 6, 4);
        for block in 0..6u32 {
            let owner = r.shard_of(block * 16);
            for node in 0..16u32 {
                assert_eq!(
                    r.shard_of(block * 16 + node),
                    owner,
                    "block {block} node {node} split across shards"
                );
            }
        }
    }

    #[test]
    fn more_shards_than_blocks_clamps() {
        let r = ShardRanges::by_blocks(16, 2, 8);
        assert_eq!(r.len(), 2);
    }
}
