//! # dophy-serve
//!
//! Tomography as a long-lived service. Everything else in this workspace
//! runs a simulation to completion and *then* reads estimates out; this
//! crate inverts that: a [`store::EstimateStore`] ingests a live
//! [`dophy::infer::Evidence`] stream and answers queries **while**
//! ingesting, from seq-tagged consistent snapshots.
//!
//! * [`store`] — the streaming estimate store. One writer ingests
//!   evidence into any [`dophy::infer::EstimatorKind`] backend and
//!   publishes an immutable [`store::StoreSnapshot`] every
//!   `publish_every` events (a *generation*). Readers grab the current
//!   `Arc<StoreSnapshot>` and never block ingest; every snapshot is a
//!   consistent cut tagged with the evidence sequence number it covers,
//!   so the same query at the same seq is byte-identical live or
//!   replayed.
//! * [`firehose`] — the replay/driver side: captures the typed evidence
//!   streams of N parallel simulations (through the bench executor's
//!   pool, via the [`dophy_bench::Instruments`] evidence tap), namespaces
//!   each simulation's node ids into its own block, and merges the
//!   streams into one deterministic firehose.
//! * [`load`] — the sustained-load benchmark: query threads hammer the
//!   store while the firehose ingests, recording queries/sec against
//!   ingest events/sec (exported as `BENCH_serve.json` by the
//!   `dophy-serve` binary).
//!
//! The `dophy-serve` binary ties the three together:
//!
//! ```text
//! dophy-serve --sims 4 --side 4 --duration 600        # bench to stdout
//! dophy-serve --check                                 # live-vs-replay byte identity
//! dophy-serve --bench-out target/BENCH_serve.json     # persist the load report
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod firehose;
pub mod load;
pub mod store;

pub use firehose::{capture, Firehose, SimCapture};
pub use load::{sustained_load, LoadReport};
pub use store::{EstimateStore, LinkCoverage, PathLossReport, ServeConfig, StoreSnapshot};
