//! # dophy-serve
//!
//! Tomography as a long-lived service. Everything else in this workspace
//! runs a simulation to completion and *then* reads estimates out; this
//! crate inverts that: a [`store::EstimateStore`] ingests a live
//! [`dophy::infer::Evidence`] stream and answers queries **while**
//! ingesting, from seq-tagged consistent snapshots.
//!
//! * [`store`] — the streaming estimate store. One writer ingests
//!   evidence into any [`dophy::infer::EstimatorKind`] backend and
//!   publishes an immutable [`store::StoreSnapshot`] every
//!   `publish_every` events (a *generation*). Readers grab the current
//!   `Arc<StoreSnapshot>` and never block ingest; every snapshot is a
//!   consistent cut tagged with the evidence sequence number it covers,
//!   so the same query at the same seq is byte-identical live or
//!   replayed.
//! * [`firehose`] — the replay/driver side: captures the typed evidence
//!   streams of N parallel simulations (through the bench executor's
//!   pool, via the [`dophy_bench::Instruments`] evidence tap), namespaces
//!   each simulation's node ids into its own block, and merges the
//!   streams into one deterministic firehose.
//! * [`shard_store`] — the link-range-sharded router: N stores behind
//!   one [`proto::TomographyView`], with per-shard ingest threads and a
//!   cross-shard seq barrier at publish, byte-identical to a single
//!   store at every shard count.
//! * [`proto`] — the versioned request/response vocabulary and the
//!   [`proto::TomographyView`] query surface shared by both store
//!   flavors and the wire.
//! * [`wire`] — the length-prefixed framed codec with strict decode
//!   limits and typed [`wire::WireError`]s.
//! * [`net`] — TCP transport: thread-per-connection server and a
//!   blocking framed [`net::Client`].
//! * [`load`] — the sustained-load benchmarks (in-process and
//!   networked): query threads hammer the store while the firehose
//!   ingests, recording queries/sec and per-query-class latency
//!   histograms (exported as `BENCH_serve.json` by the `dophy-serve`
//!   binary).
//!
//! The `dophy-serve` binary ties it together:
//!
//! ```text
//! dophy-serve --sims 4 --side 4 --duration 600        # bench to stdout
//! dophy-serve --check --store-shards 4                # live-vs-replay byte identity
//! dophy-serve --bench-out target/BENCH_serve.json     # persist the load report
//! dophy-serve --listen 127.0.0.1:7431                 # serve over TCP
//! dophy-serve --connect 127.0.0.1:7431 --check        # client vs local recompute
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod firehose;
pub mod load;
pub mod net;
pub mod proto;
pub mod shard_store;
pub mod store;
pub mod wire;

pub use firehose::{capture, Firehose, SimCapture};
pub use load::{
    networked_load, sustained_load, LoadReport, NetLoadReport, QueryClassStats, QUERY_CLASSES,
};
pub use net::{listen_and_serve, serve, Client};
pub use proto::{
    answer_from_snapshot, Request, Response, ServeStore, ServiceStats, TomographyView,
    PROTOCOL_VERSION,
};
pub use shard_store::{ShardRanges, ShardedCut, ShardedStore};
pub use store::{
    EstimateStore, LinkCoverage, LinkKey, PathLossReport, PerLinkAnswer, ServeConfig, StoreSnapshot,
};
pub use wire::{
    decode_frame, encode_frame, encode_frame_versioned, read_frame, write_frame, WireError,
    HEADER_LEN, MAGIC, MAX_FRAME_PAYLOAD,
};
