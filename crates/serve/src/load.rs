//! Sustained-load benchmark: query threads hammer the store while the
//! firehose ingests, and the report records queries/sec against ingest
//! events/sec. This is the number `BENCH_serve.json` persists.

use crate::store::EstimateStore;
use dophy::infer::Evidence;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What one sustained-load run measured.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadReport {
    /// Evidence events ingested.
    pub events: u64,
    /// Wall-clock seconds the ingest loop took (query threads ran the
    /// whole time).
    pub ingest_wall_s: f64,
    /// Ingest throughput under concurrent query load.
    pub ingest_events_per_sec: f64,
    /// Queries answered while ingest was running.
    pub queries: u64,
    /// Query throughput while ingest was running.
    pub queries_per_sec: f64,
    /// Reader threads issuing queries.
    pub query_threads: usize,
    /// Snapshot generations published during ingest.
    pub generations: u64,
    /// Links the final snapshot reports.
    pub links: usize,
    /// Final evidence sequence number.
    pub final_seq: u64,
}

/// Ingests `events` into `store` at full speed while `query_threads`
/// readers run the full query mix (snapshot, per-link lookup, coverage,
/// top-k read, path composition) in a loop. Only queries completed
/// before ingest finishes are counted.
pub fn sustained_load(
    store: &EstimateStore,
    events: &[Evidence],
    query_threads: usize,
) -> LoadReport {
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let ingest_wall_s = std::thread::scope(|s| {
        for _ in 0..query_threads {
            s.spawn(|| {
                let mut local = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = store.snapshot();
                    // The full query mix, one round per iteration.
                    if let Some(&(link, _)) = snap.top_k.first() {
                        std::hint::black_box(snap.link(link));
                        std::hint::black_box(snap.coverage(link));
                    }
                    let path: Vec<(u32, u32)> = snap.top_k.iter().map(|&(l, _)| l).collect();
                    std::hint::black_box(snap.path_loss(&path));
                    std::hint::black_box(&snap.top_k);
                    local += 1;
                    // Publish the count as we go so the main thread's
                    // final read only misses in-flight queries.
                    if local.is_multiple_of(64) {
                        queries.fetch_add(64, Ordering::Relaxed);
                    }
                }
                queries.fetch_add(local % 64, Ordering::Relaxed);
            });
        }
        let t0 = std::time::Instant::now();
        for ev in events {
            store.ingest(ev);
        }
        store.publish_now();
        let wall = t0.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        wall
    });
    let snap = store.snapshot();
    let q = queries.load(Ordering::Relaxed);
    LoadReport {
        events: events.len() as u64,
        ingest_wall_s,
        ingest_events_per_sec: events.len() as f64 / ingest_wall_s.max(1e-9),
        queries: q,
        queries_per_sec: q as f64 / ingest_wall_s.max(1e-9),
        query_threads,
        generations: snap.generation,
        links: snap.estimates.len(),
        final_seq: snap.seq,
    }
}
