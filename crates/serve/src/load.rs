//! Sustained-load benchmarks: query threads hammer a store while the
//! firehose ingests (in-process), and client threads hammer a listening
//! service over TCP (networked). Both record **per-query-class latency
//! histograms** through the metrics registry, so `BENCH_serve.json`
//! distinguishes a cheap per-link lookup from a cross-shard top-k merge
//! instead of reporting one blended queries/sec.
//!
//! Queries go through [`TomographyView::answer`] — the same entry point
//! the wire protocol serves — so in-process numbers and networked
//! numbers measure the same code path, differing only by framing and
//! the loopback round trip.

use crate::net::Client;
use crate::proto::{Request, Response, ServeStore};
use crate::store::LinkKey;
use crate::wire::WireError;
use dophy::infer::Evidence;
use dophy_sim::obs::{Histogram, MetricsRegistry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Histogram metric name for query latencies (labelled by `class`).
pub const LATENCY_METRIC: &str = "query_latency_us";

/// The query classes both load drivers exercise, in mix order.
pub const QUERY_CLASSES: [&str; 5] = ["top_k", "per_link", "coverage", "path", "stats"];

/// Latency summary for one query class, derived from its histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryClassStats {
    /// Query class name (one of [`QUERY_CLASSES`]).
    pub class: String,
    /// Queries of this class measured.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency (bucket upper bound) in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency (bucket upper bound) in microseconds.
    pub p99_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
}

/// What one sustained-load run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Evidence events ingested.
    pub events: u64,
    /// Wall-clock seconds the ingest loop took (query threads ran the
    /// whole time).
    pub ingest_wall_s: f64,
    /// Ingest throughput under concurrent query load.
    pub ingest_events_per_sec: f64,
    /// Queries answered while ingest was running.
    pub queries: u64,
    /// Query throughput while ingest was running.
    pub queries_per_sec: f64,
    /// Reader threads issuing queries.
    pub query_threads: usize,
    /// Snapshot generations published during ingest.
    pub generations: u64,
    /// Links the final snapshot reports.
    pub links: usize,
    /// Final evidence sequence number.
    pub final_seq: u64,
    /// Per-query-class latency summaries.
    pub classes: Vec<QueryClassStats>,
}

/// What one networked-load run measured: client threads issuing the
/// query mix over TCP against an already populated service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetLoadReport {
    /// Total framed requests answered.
    pub queries: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Networked query throughput.
    pub queries_per_sec: f64,
    /// Concurrent client connections.
    pub client_threads: usize,
    /// Query-mix rounds each client ran.
    pub rounds_per_thread: u64,
    /// Per-query-class round-trip latency summaries.
    pub classes: Vec<QueryClassStats>,
}

/// Records `elapsed` for `class` into the thread-local registry.
fn record(reg: &mut MetricsRegistry, class: &str, started: Instant) {
    let us = started.elapsed().as_secs_f64() * 1e6;
    reg.observe(LATENCY_METRIC, &[("class", class)], us);
}

/// Folds a thread's latency histograms into the shared aggregate.
fn merge_registry(agg: &Mutex<MetricsRegistry>, local: &MetricsRegistry) {
    let mut agg = agg.lock();
    for class in QUERY_CLASSES {
        if let Some(h) = local.histogram(LATENCY_METRIC, &[("class", class)]) {
            let mut merged = agg
                .histogram(LATENCY_METRIC, &[("class", class)])
                .cloned()
                .unwrap_or_default();
            merged.merge(h);
            agg.set_histogram(LATENCY_METRIC, &[("class", class)], merged);
        }
    }
}

/// Latency summaries per class, in mix order, from an aggregate registry.
fn class_stats(reg: &MetricsRegistry) -> Vec<QueryClassStats> {
    QUERY_CLASSES
        .iter()
        .filter_map(|&class| {
            reg.histogram(LATENCY_METRIC, &[("class", class)])
                .map(|h: &Histogram| QueryClassStats {
                    class: class.to_string(),
                    count: h.count,
                    mean_us: h.mean(),
                    p50_us: h.quantile(0.5),
                    p99_us: h.quantile(0.99),
                    max_us: h.max,
                })
        })
        .collect()
}

/// One full query-mix round through `answer`, timing each class.
/// Returns the number of queries issued.
fn query_round(view: &dyn ServeStore, reg: &mut MetricsRegistry) -> u64 {
    let mut issued = 0u64;
    let t = Instant::now();
    let topk = view.answer(&Request::TopK { k: 16 });
    record(reg, "top_k", t);
    issued += 1;
    let links: Vec<LinkKey> = match &topk {
        Response::TopK { entries, .. } => entries.iter().map(|&(l, _)| l).collect(),
        _ => Vec::new(),
    };
    if let Some(&link) = links.first() {
        let t = Instant::now();
        std::hint::black_box(view.answer(&Request::PerLink { link }));
        record(reg, "per_link", t);
        let t = Instant::now();
        std::hint::black_box(view.answer(&Request::Coverage { link }));
        record(reg, "coverage", t);
        issued += 2;
    }
    let t = Instant::now();
    std::hint::black_box(view.answer(&Request::Path { path: links }));
    record(reg, "path", t);
    let t = Instant::now();
    std::hint::black_box(view.answer(&Request::Stats));
    record(reg, "stats", t);
    issued + 2
}

/// Ingests `events` into `store` at full speed while `query_threads`
/// readers run the full query mix in a loop, timing every query by
/// class. Works identically for a single [`crate::store::EstimateStore`]
/// and a [`crate::shard_store::ShardedStore`]. Only queries completed
/// before ingest finishes are counted.
pub fn sustained_load(
    store: &dyn ServeStore,
    events: &[Evidence],
    query_threads: usize,
) -> LoadReport {
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let agg = Mutex::new(MetricsRegistry::new());
    let ingest_wall_s = std::thread::scope(|s| {
        for _ in 0..query_threads {
            s.spawn(|| {
                let mut reg = MetricsRegistry::new();
                let mut local = 0u64;
                while !done.load(Ordering::Relaxed) {
                    local += query_round(store, &mut reg);
                    // Publish the count as we go so the main thread's
                    // final read only misses in-flight queries.
                    if local >= 64 {
                        queries.fetch_add(local, Ordering::Relaxed);
                        local = 0;
                    }
                }
                queries.fetch_add(local, Ordering::Relaxed);
                merge_registry(&agg, &reg);
            });
        }
        let t0 = Instant::now();
        for ev in events {
            store.ingest(ev);
        }
        store.publish_cut();
        let wall = t0.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        wall
    });
    let snap = store.current_cut();
    let q = queries.load(Ordering::Relaxed);
    let classes = class_stats(&agg.lock());
    LoadReport {
        events: events.len() as u64,
        ingest_wall_s,
        ingest_events_per_sec: events.len() as f64 / ingest_wall_s.max(1e-9),
        queries: q,
        queries_per_sec: q as f64 / ingest_wall_s.max(1e-9),
        query_threads,
        generations: snap.generation,
        links: snap.estimates.len(),
        final_seq: snap.seq,
        classes,
    }
}

/// Hammers a listening service over TCP: `client_threads` connections
/// each run `rounds` query-mix rounds (top-k, then per-link, coverage,
/// path, stats against the returned top-k), timing every framed
/// round trip by class.
pub fn networked_load(
    addr: &str,
    client_threads: usize,
    rounds: u64,
) -> Result<NetLoadReport, WireError> {
    let queries = AtomicU64::new(0);
    let agg = Mutex::new(MetricsRegistry::new());
    let failure: Mutex<Option<WireError>> = Mutex::new(None);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..client_threads.max(1) {
            s.spawn(|| {
                let run = || -> Result<u64, WireError> {
                    let mut client =
                        Client::connect_with_retry(addr, 20, std::time::Duration::from_millis(50))?;
                    let mut reg = MetricsRegistry::new();
                    let mut issued = 0u64;
                    for _ in 0..rounds {
                        let t = Instant::now();
                        let topk = client.request(&Request::TopK { k: 16 })?;
                        record(&mut reg, "top_k", t);
                        issued += 1;
                        let links: Vec<LinkKey> = match &topk {
                            Response::TopK { entries, .. } => {
                                entries.iter().map(|&(l, _)| l).collect()
                            }
                            _ => Vec::new(),
                        };
                        if let Some(&link) = links.first() {
                            let t = Instant::now();
                            client.request(&Request::PerLink { link })?;
                            record(&mut reg, "per_link", t);
                            let t = Instant::now();
                            client.request(&Request::Coverage { link })?;
                            record(&mut reg, "coverage", t);
                            issued += 2;
                        }
                        let t = Instant::now();
                        client.request(&Request::Path { path: links })?;
                        record(&mut reg, "path", t);
                        let t = Instant::now();
                        client.request(&Request::Stats)?;
                        record(&mut reg, "stats", t);
                        issued += 2;
                    }
                    merge_registry(&agg, &reg);
                    Ok(issued)
                };
                match run() {
                    Ok(n) => {
                        queries.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(e) => {
                        failure.lock().get_or_insert(e);
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }
    let wall = t0.elapsed().as_secs_f64();
    let q = queries.load(Ordering::Relaxed);
    let classes = class_stats(&agg.lock());
    Ok(NetLoadReport {
        queries: q,
        wall_s: wall,
        queries_per_sec: q as f64 / wall.max(1e-9),
        client_threads: client_threads.max(1),
        rounds_per_thread: rounds,
        classes,
    })
}
