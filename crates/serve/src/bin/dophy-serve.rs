//! Drive the tomography service end to end: capture evidence from N
//! parallel simulations, firehose it into an [`EstimateStore`], and
//! either benchmark sustained query-under-ingest load or verify
//! live-vs-replay byte identity.
//!
//! ```text
//! dophy-serve                                  # 2 sims, bench, report to stdout
//! dophy-serve --sims 4 --side 5 --duration 900 # bigger firehose
//! dophy-serve --check                          # determinism check (exit 1 on mismatch)
//! dophy-serve --bench-out target/BENCH_serve.json
//! ```
//!
//! `--check` ingests the merged firehose into one store while query
//! threads hammer it, snapshots at the half-way sequence number and at
//! the end, then round-trips the evidence log through JSON and replays it
//! serially into a fresh store. Both snapshots must serialize to the
//! same bytes: a query at evidence-seq S answers identically live or
//! replayed, regardless of concurrent query load.

use dophy::infer::{EstimatorKind, Evidence};
use dophy::protocol::DophyConfig;
use dophy_bench::RunSpec;
use dophy_serve::{capture, sustained_load, EstimateStore, LoadReport, ServeConfig};
use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use serde::Serialize;
use std::path::PathBuf;

struct Cli {
    sims: usize,
    side: u32,
    duration_s: u64,
    seed: u64,
    shards: Option<u16>,
    estimator: EstimatorKind,
    publish_every: u64,
    top_k: usize,
    query_threads: usize,
    jobs: usize,
    bench_out: Option<PathBuf>,
    check: bool,
}

const USAGE: &str = "usage: dophy-serve [--sims N] [--side S] [--duration SECS] [--seed N] \
[--shards N] [--estimator in-band|minc|sparse-l1] [--publish-every N] [--top-k K] \
[--query-threads N] [--jobs N] [--bench-out <path>] [--check]";

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        sims: 2,
        side: 4,
        duration_s: 600,
        seed: 3,
        shards: None,
        estimator: EstimatorKind::InBand,
        publish_every: 256,
        top_k: 10,
        query_threads: 2,
        jobs: 2,
        bench_out: None,
        check: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        let parse_pos = |raw: String, what: &str| -> Result<u64, String> {
            raw.parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{what} wants a positive integer, got {raw}"))
        };
        match arg {
            "--check" => cli.check = true,
            "--sims" => cli.sims = parse_pos(value(&mut i)?, "--sims")? as usize,
            "--side" => cli.side = parse_pos(value(&mut i)?, "--side")? as u32,
            "--duration" => cli.duration_s = parse_pos(value(&mut i)?, "--duration")?,
            "--seed" => {
                let raw = value(&mut i)?;
                cli.seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed wants an integer, got {raw}"))?;
            }
            "--shards" => {
                let raw = value(&mut i)?;
                cli.shards = Some(
                    raw.parse::<u16>()
                        .map_err(|_| format!("--shards wants a small integer, got {raw}"))?,
                );
            }
            "--estimator" => cli.estimator = value(&mut i)?.parse()?,
            "--publish-every" => cli.publish_every = parse_pos(value(&mut i)?, "--publish-every")?,
            "--top-k" => cli.top_k = parse_pos(value(&mut i)?, "--top-k")? as usize,
            "--query-threads" => {
                cli.query_threads = parse_pos(value(&mut i)?, "--query-threads")? as usize;
            }
            "--jobs" | "-j" => cli.jobs = parse_pos(value(&mut i)?, "--jobs")? as usize,
            "--bench-out" => cli.bench_out = Some(PathBuf::from(value(&mut i)?)),
            _ => return Err(format!("unknown argument {arg}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn base_spec(cli: &Cli) -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: cli.side,
            spacing: 15.0,
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed: cli.seed,
    };
    let mut spec = RunSpec::new(
        sim,
        DophyConfig {
            traffic_period: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(30),
            ..DophyConfig::default()
        },
        SimDuration::from_secs(cli.duration_s),
    );
    spec.shards = cli.shards;
    spec
}

fn serve_config(cli: &Cli, spec: &RunSpec) -> ServeConfig {
    ServeConfig {
        publish_every: cli.publish_every,
        top_k: cli.top_k,
        r: spec.sim.mac.max_attempts,
        min_samples: spec.min_est_samples,
    }
}

/// `BENCH_serve.json` payload.
#[derive(Serialize)]
struct BenchFile {
    what: String,
    context: BenchContext,
    sims: usize,
    nodes_per_sim: usize,
    duration_s: u64,
    estimator: String,
    publish_every: u64,
    load: LoadReport,
}

#[derive(Serialize)]
struct BenchContext {
    available_cores: usize,
    note: &'static str,
}

fn replay_check(cli: &Cli, events: &[Evidence], cfg: ServeConfig) -> Result<(), String> {
    // Live side: ingest under concurrent query load, checkpointing at the
    // half-way seq and at the end.
    let half = events.len() / 2;
    let live = EstimateStore::new(cli.estimator, cfg);
    let done = std::sync::atomic::AtomicBool::new(false);
    let (live_half, live_full) = std::thread::scope(|s| {
        for _ in 0..cli.query_threads {
            s.spawn(|| {
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = live.snapshot();
                    std::hint::black_box(
                        snap.path_loss(&snap.top_k.iter().map(|&(l, _)| l).collect::<Vec<_>>()),
                    );
                }
            });
        }
        for ev in &events[..half] {
            live.ingest(ev);
        }
        let live_half = serde_json::to_string(&*live.publish_now()).unwrap();
        for ev in &events[half..] {
            live.ingest(ev);
        }
        let live_full = serde_json::to_string(&*live.publish_now()).unwrap();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        (live_half, live_full)
    });

    // Replay side: round-trip the log through JSON, ingest serially.
    let json = serde_json::to_string(events).map_err(|e| format!("serialize evidence: {e}"))?;
    let replayed: Vec<Evidence> =
        serde_json::from_str(&json).map_err(|e| format!("replay evidence: {e}"))?;
    if replayed != events {
        return Err("evidence log did not round-trip through JSON".into());
    }
    let fresh = EstimateStore::new(cli.estimator, cfg);
    for ev in &replayed[..half] {
        fresh.ingest(ev);
    }
    let replay_half = serde_json::to_string(&*fresh.publish_now()).unwrap();
    for ev in &replayed[half..] {
        fresh.ingest(ev);
    }
    let replay_full = serde_json::to_string(&*fresh.publish_now()).unwrap();

    if live_half != replay_half {
        return Err(format!(
            "snapshot at seq {half} differs live vs replayed ({} vs {} bytes)",
            live_half.len(),
            replay_half.len()
        ));
    }
    if live_full != replay_full {
        return Err(format!(
            "final snapshot differs live vs replayed ({} vs {} bytes)",
            live_full.len(),
            replay_full.len()
        ));
    }
    println!(
        "determinism check PASSED: snapshots at seq {} and {} byte-identical live vs replayed \
         ({} + {} bytes)",
        half,
        events.len(),
        live_half.len(),
        live_full.len()
    );
    Ok(())
}

fn run(cli: Cli) -> Result<(), String> {
    let spec = base_spec(&cli);
    let cfg = serve_config(&cli, &spec);
    eprintln!(
        "firehose: {} sims x {} nodes, {} s each (seeds {}..{}) ...",
        cli.sims,
        spec.sim.placement.node_count(),
        cli.duration_s,
        cli.seed,
        cli.seed + cli.sims as u64 - 1
    );
    let hose = capture(&spec, cli.sims, cli.jobs)?;
    for s in &hose.sims {
        eprintln!(
            "  sim {}: seed {} -> {} events, {} packets delivered",
            s.sim, s.seed, s.events, s.delivered
        );
    }
    eprintln!("merged firehose: {} events", hose.events.len());
    if hose.events.is_empty() {
        return Err("firehose captured no evidence (duration too short?)".into());
    }

    if cli.check {
        return replay_check(&cli, &hose.events, cfg);
    }

    let store = EstimateStore::new(cli.estimator, cfg);
    let report = sustained_load(&store, &hose.events, cli.query_threads);
    eprintln!(
        "load: {} events in {:.3} s = {:.0} events/s ingest, {} queries = {:.0} queries/s \
         ({} reader threads, {} generations, {} links)",
        report.events,
        report.ingest_wall_s,
        report.ingest_events_per_sec,
        report.queries,
        report.queries_per_sec,
        report.query_threads,
        report.generations,
        report.links
    );
    let bench = BenchFile {
        what: format!(
            "dophy-serve sustained load: {} query threads against one EstimateStore ({} backend) \
             while the merged firehose of {} simulations ingests at full speed. \
             Regenerate with: cargo run --release -p dophy-serve -- --sims {} --side {} \
             --duration {} --bench-out <path>",
            cli.query_threads, cli.estimator, cli.sims, cli.sims, cli.side, cli.duration_s
        ),
        context: BenchContext {
            available_cores: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            note: "queries/sec counts full query-mix rounds (snapshot + link lookup + \
                   coverage + top-k read + path composition) completed while ingest ran; \
                   on a single-core host reader threads timeshare with the ingest loop, \
                   so both throughputs are conservative relative to a multi-core host",
        },
        sims: cli.sims,
        nodes_per_sim: hose.node_count,
        duration_s: cli.duration_s,
        estimator: cli.estimator.to_string(),
        publish_every: cli.publish_every,
        load: report,
    };
    let json = serde_json::to_string_pretty(&bench)
        .map_err(|e| format!("cannot serialize bench report: {e}"))?;
    match &cli.bench_out {
        Some(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
                }
            }
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("bench report -> {}", path.display());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(cli) {
        eprintln!("dophy-serve: {e}");
        std::process::exit(1);
    }
}
