//! Drive the tomography service end to end: capture evidence from N
//! parallel simulations, firehose it into a (possibly sharded) estimate
//! store, and either benchmark sustained query-under-ingest load, verify
//! live-vs-replay byte identity, serve the store over TCP, or query a
//! listening service as a client.
//!
//! ```text
//! dophy-serve                                  # 2 sims, bench, report to stdout
//! dophy-serve --sims 4 --side 5 --duration 900 # bigger firehose
//! dophy-serve --check                          # determinism check (exit 1 on mismatch)
//! dophy-serve --check --store-shards 4         # sharded vs serial byte identity
//! dophy-serve --ttl 300 --window 120           # freshness-bounded serving
//! dophy-serve --bench-out target/BENCH_serve.json
//! dophy-serve --listen 127.0.0.1:7431          # ingest, then serve over TCP
//! dophy-serve --connect 127.0.0.1:7431 --check # compare wire answers vs local recompute
//! ```
//!
//! `--check` (without `--connect`) ingests the merged firehose into the
//! configured store — sharded with per-shard ingest threads when
//! `--store-shards` > 1 — while query threads hammer it, cuts the
//! canonical snapshot at the half-way sequence number and at the end,
//! then round-trips the evidence log through JSON and replays it
//! serially into a fresh *single* store. All cuts must serialize to the
//! same bytes: a query at evidence-seq S answers identically live or
//! replayed, sharded or not, regardless of concurrent query load.
//!
//! `--connect ADDR --check` recomputes the same firehose locally and
//! demands that every framed answer off the wire is byte-identical to
//! the local in-process answer at the same evidence seq.

use dophy::infer::{EstimatorKind, Evidence};
use dophy::protocol::DophyConfig;
use dophy::tracking::WindowConfig;
use dophy_bench::RunSpec;
use dophy_serve::{
    answer_from_snapshot, capture, networked_load, sustained_load, Client, EstimateStore,
    LoadReport, NetLoadReport, Request, Response, ServeConfig, ServeStore, ShardRanges,
    ShardedStore, StoreSnapshot, TomographyView,
};
use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

struct Cli {
    sims: usize,
    side: u32,
    duration_s: u64,
    seed: u64,
    shards: Option<u16>,
    estimator: EstimatorKind,
    publish_every: u64,
    top_k: usize,
    query_threads: usize,
    jobs: usize,
    bench_out: Option<PathBuf>,
    check: bool,
    store_shards: usize,
    window_s: Option<u64>,
    ttl_s: Option<u64>,
    listen: Option<String>,
    connect: Option<String>,
    net_clients: usize,
    net_rounds: u64,
}

const USAGE: &str = "usage: dophy-serve [--sims N] [--side S] [--duration SECS] [--seed N] \
[--shards N] [--estimator in-band|minc|sparse-l1] [--publish-every N] [--top-k K] \
[--query-threads N] [--jobs N] [--bench-out <path>] [--check] [--store-shards N] \
[--window SECS] [--ttl SECS] [--listen ADDR] [--connect ADDR] [--net-clients N] \
[--net-rounds N]";

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        sims: 2,
        side: 4,
        duration_s: 600,
        seed: 3,
        shards: None,
        estimator: EstimatorKind::InBand,
        publish_every: 256,
        top_k: 10,
        query_threads: 2,
        jobs: 2,
        bench_out: None,
        check: false,
        store_shards: 1,
        window_s: None,
        ttl_s: None,
        listen: None,
        connect: None,
        net_clients: 2,
        net_rounds: 200,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        let parse_pos = |raw: String, what: &str| -> Result<u64, String> {
            raw.parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{what} wants a positive integer, got {raw}"))
        };
        match arg {
            "--check" => cli.check = true,
            "--sims" => cli.sims = parse_pos(value(&mut i)?, "--sims")? as usize,
            "--side" => cli.side = parse_pos(value(&mut i)?, "--side")? as u32,
            "--duration" => cli.duration_s = parse_pos(value(&mut i)?, "--duration")?,
            "--seed" => {
                let raw = value(&mut i)?;
                cli.seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed wants an integer, got {raw}"))?;
            }
            "--shards" => {
                let raw = value(&mut i)?;
                cli.shards = Some(
                    raw.parse::<u16>()
                        .map_err(|_| format!("--shards wants a small integer, got {raw}"))?,
                );
            }
            "--estimator" => cli.estimator = value(&mut i)?.parse()?,
            "--publish-every" => cli.publish_every = parse_pos(value(&mut i)?, "--publish-every")?,
            "--top-k" => cli.top_k = parse_pos(value(&mut i)?, "--top-k")? as usize,
            "--query-threads" => {
                cli.query_threads = parse_pos(value(&mut i)?, "--query-threads")? as usize;
            }
            "--jobs" | "-j" => cli.jobs = parse_pos(value(&mut i)?, "--jobs")? as usize,
            "--bench-out" => cli.bench_out = Some(PathBuf::from(value(&mut i)?)),
            "--store-shards" => {
                cli.store_shards = parse_pos(value(&mut i)?, "--store-shards")? as usize;
            }
            "--window" => cli.window_s = Some(parse_pos(value(&mut i)?, "--window")?),
            "--ttl" => cli.ttl_s = Some(parse_pos(value(&mut i)?, "--ttl")?),
            "--listen" => cli.listen = Some(value(&mut i)?),
            "--connect" => cli.connect = Some(value(&mut i)?),
            "--net-clients" => {
                cli.net_clients = parse_pos(value(&mut i)?, "--net-clients")? as usize;
            }
            "--net-rounds" => cli.net_rounds = parse_pos(value(&mut i)?, "--net-rounds")?,
            _ => return Err(format!("unknown argument {arg}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn base_spec(cli: &Cli) -> RunSpec {
    let sim = SimConfig {
        placement: Placement::Grid {
            side: cli.side,
            spacing: 15.0,
        },
        radio: RadioModel::default(),
        mac: MacConfig::default(),
        dynamics: LinkDynamics::Static,
        seed: cli.seed,
    };
    let mut spec = RunSpec::new(
        sim,
        DophyConfig {
            traffic_period: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(30),
            ..DophyConfig::default()
        },
        SimDuration::from_secs(cli.duration_s),
    );
    spec.shards = cli.shards;
    spec
}

fn serve_config(cli: &Cli, spec: &RunSpec) -> ServeConfig {
    ServeConfig {
        publish_every: cli.publish_every,
        top_k: cli.top_k,
        r: spec.sim.mac.max_attempts,
        min_samples: spec.min_est_samples,
        window: cli.window_s.map(|s| WindowConfig {
            window: SimDuration::from_secs(s),
            ..WindowConfig::default()
        }),
        ttl: cli.ttl_s.map(SimDuration::from_secs),
    }
}

/// The store the CLI asked for: a single store for `--store-shards 1`,
/// a block-aligned sharded router otherwise. Kept as an enum (not a
/// trait object) so the sharded variant's threaded ingest path stays
/// reachable.
enum CliStore {
    Single(Arc<EstimateStore>),
    Sharded(Arc<ShardedStore>),
}

impl CliStore {
    /// Shard ranges align with the firehose's per-simulation node
    /// blocks, so byte identity holds for every backend, including the
    /// end-to-end ones.
    fn build(cli: &Cli, cfg: ServeConfig, node_count: usize) -> Self {
        if cli.store_shards <= 1 {
            CliStore::Single(Arc::new(EstimateStore::new(cli.estimator, cfg)))
        } else {
            let ranges = ShardRanges::by_blocks(node_count as u32, cli.sims, cli.store_shards);
            CliStore::Sharded(Arc::new(ShardedStore::new(cli.estimator, cfg, ranges)))
        }
    }

    fn serve_store(&self) -> &dyn ServeStore {
        match self {
            CliStore::Single(s) => s.as_ref(),
            CliStore::Sharded(s) => s.as_ref(),
        }
    }

    fn view(&self) -> Arc<dyn TomographyView> {
        match self {
            CliStore::Single(s) => Arc::clone(s) as Arc<dyn TomographyView>,
            CliStore::Sharded(s) => Arc::clone(s) as Arc<dyn TomographyView>,
        }
    }

    /// Ingests a stream the way the store scales: inline for a single
    /// store, one ingest thread per shard for the router.
    fn ingest_stream(&self, events: &[Evidence]) {
        match self {
            CliStore::Single(s) => {
                for ev in events {
                    s.ingest(ev);
                }
            }
            CliStore::Sharded(s) => {
                s.ingest_threaded(events);
            }
        }
    }
}

/// `BENCH_serve.json` payload.
#[derive(Serialize)]
struct BenchFile {
    what: String,
    context: BenchContext,
    sims: usize,
    nodes_per_sim: usize,
    duration_s: u64,
    estimator: String,
    publish_every: u64,
    store_shards: usize,
    load: LoadReport,
    networked: NetLoadReport,
}

#[derive(Serialize)]
struct BenchContext {
    available_cores: usize,
    note: &'static str,
}

/// Live-vs-replay byte identity at the configured shard count: the live
/// side ingests through the CLI store (per-shard ingest threads when
/// sharded) under concurrent query load; the replay side round-trips
/// the log through JSON and replays it serially into a single store.
fn replay_check(
    cli: &Cli,
    events: &[Evidence],
    cfg: ServeConfig,
    node_count: usize,
) -> Result<(), String> {
    let half = events.len() / 2;
    let live = CliStore::build(cli, cfg, node_count);
    let done = std::sync::atomic::AtomicBool::new(false);
    let (live_half, live_full) = std::thread::scope(|s| {
        let view = live.serve_store();
        for _ in 0..cli.query_threads {
            s.spawn(|| {
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    std::hint::black_box(view.answer(&Request::TopK { k: 16 }));
                    std::hint::black_box(view.answer(&Request::Stats));
                }
            });
        }
        // A sharded live store exercises its threaded ingest path; the
        // single store ingests inline. Both cut at the same seqs.
        live.ingest_stream(&events[..half]);
        let live_half = serde_json::to_string(&view.publish_cut()).unwrap();
        live.ingest_stream(&events[half..]);
        let live_full = serde_json::to_string(&view.publish_cut()).unwrap();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        (live_half, live_full)
    });

    // Replay side: round-trip the log through JSON, ingest serially into
    // a single unsharded store.
    let json = serde_json::to_string(events).map_err(|e| format!("serialize evidence: {e}"))?;
    let replayed: Vec<Evidence> =
        serde_json::from_str(&json).map_err(|e| format!("replay evidence: {e}"))?;
    if replayed != events {
        return Err("evidence log did not round-trip through JSON".into());
    }
    let fresh = EstimateStore::new(cli.estimator, cfg);
    for ev in &replayed[..half] {
        fresh.ingest(ev);
    }
    let replay_half = serde_json::to_string(&*fresh.publish_now()).unwrap();
    for ev in &replayed[half..] {
        fresh.ingest(ev);
    }
    let replay_full = serde_json::to_string(&*fresh.publish_now()).unwrap();

    if live_half != replay_half {
        return Err(format!(
            "snapshot at seq {half} differs live ({} store shard(s)) vs replayed ({} vs {} bytes)",
            cli.store_shards,
            live_half.len(),
            replay_half.len()
        ));
    }
    if live_full != replay_full {
        return Err(format!(
            "final snapshot differs live ({} store shard(s)) vs replayed ({} vs {} bytes)",
            cli.store_shards,
            live_full.len(),
            replay_full.len()
        ));
    }
    println!(
        "determinism check PASSED: snapshots at seq {} and {} byte-identical live \
         ({} store shard(s)) vs serial replay ({} + {} bytes)",
        half,
        events.len(),
        cli.store_shards,
        live_half.len(),
        live_full.len()
    );
    Ok(())
}

/// Captures the firehose for the CLI parameters (shared by every mode).
fn capture_firehose(cli: &Cli) -> Result<(RunSpec, ServeConfig, dophy_serve::Firehose), String> {
    let spec = base_spec(cli);
    let cfg = serve_config(cli, &spec);
    eprintln!(
        "firehose: {} sims x {} nodes, {} s each (seeds {}..{}) ...",
        cli.sims,
        spec.sim.placement.node_count(),
        cli.duration_s,
        cli.seed,
        cli.seed + cli.sims as u64 - 1
    );
    let hose = capture(&spec, cli.sims, cli.jobs)?;
    for s in &hose.sims {
        eprintln!(
            "  sim {}: seed {} -> {} events, {} packets delivered",
            s.sim, s.seed, s.events, s.delivered
        );
    }
    eprintln!("merged firehose: {} events", hose.events.len());
    if hose.events.is_empty() {
        return Err("firehose captured no evidence (duration too short?)".into());
    }
    Ok((spec, cfg, hose))
}

/// Server mode: ingest the firehose, publish, serve forever.
fn run_listen(cli: &Cli, addr: &str) -> Result<(), String> {
    let (_spec, cfg, hose) = capture_firehose(cli)?;
    let store = CliStore::build(cli, cfg, hose.node_count);
    store.ingest_stream(&hose.events);
    store.serve_store().publish_cut();
    eprintln!(
        "store ready: seq {}, {} store shard(s); serving on {addr}",
        store.serve_store().seq(),
        cli.store_shards.max(1)
    );
    dophy_serve::listen_and_serve(addr, store.view()).map_err(|e| format!("listen on {addr}: {e}"))
}

/// Client mode: query a listening service; with `--check`, recompute the
/// firehose locally and demand byte-identical answers at the same seq.
fn run_connect(cli: &Cli, addr: &str) -> Result<(), String> {
    // The peer may still be capturing its firehose before it binds
    // (CI starts both sides together), so keep retrying for a while.
    let mut client = Client::connect_with_retry(addr, 120, std::time::Duration::from_millis(500))
        .map_err(|e| format!("connect to {addr}: {e}"))?;
    let stats = client
        .request(&Request::Stats)
        .map_err(|e| format!("stats query: {e}"))?;
    let Response::Stats(stats) = stats else {
        return Err(format!("unexpected stats response: {stats:?}"));
    };
    println!(
        "service at {addr}: seq {}, generation {}, {} links ({} stale), {} store shard(s)",
        stats.seq, stats.generation, stats.links, stats.stale_links, stats.store_shards
    );
    if !cli.check {
        let top = client
            .request(&Request::TopK {
                k: cli.top_k as u32,
            })
            .map_err(|e| format!("top-k query: {e}"))?;
        if let Response::TopK { entries, .. } = top {
            for (link, loss) in entries {
                println!("  link {:?}: loss {loss:.4}", link);
            }
        }
        return Ok(());
    }

    // Recompute the same firehose locally, serially, unsharded — the
    // reference the wire answers must match byte for byte.
    let (_spec, cfg, hose) = capture_firehose(cli)?;
    let local = EstimateStore::new(cli.estimator, cfg);
    for ev in &hose.events {
        local.ingest(ev);
    }
    let local_cut: StoreSnapshot = (*local.publish_now()).clone();
    if stats.seq != local_cut.seq {
        return Err(format!(
            "service is at seq {} but the local recompute reached {} — \
             run both sides with identical parameters",
            stats.seq, local_cut.seq
        ));
    }

    let mut probes: Vec<Request> = vec![
        Request::TopK {
            k: cli.top_k as u32,
        },
        Request::Path {
            path: local_cut.top_k.iter().map(|&(l, _)| l).collect(),
        },
        Request::SnapshotAt {
            min_seq: local_cut.seq,
        },
    ];
    for &(link, _) in &local_cut.estimates {
        probes.push(Request::PerLink { link });
        probes.push(Request::Coverage { link });
    }
    for &(link, _) in &local_cut.stale {
        probes.push(Request::PerLink { link });
    }
    probes.push(Request::PerLink {
        link: (u32::MAX, u32::MAX),
    });

    let mut compared = 0usize;
    for req in &probes {
        let wire = client
            .request(req)
            .map_err(|e| format!("query {req:?}: {e}"))?;
        let local_ans = answer_from_snapshot(&local_cut, req);
        let wire_json = serde_json::to_string(&wire).unwrap();
        let local_json = serde_json::to_string(&local_ans).unwrap();
        if wire_json != local_json {
            return Err(format!(
                "answer mismatch for {req:?}:\n  wire:  {wire_json}\n  local: {local_json}"
            ));
        }
        compared += 1;
    }
    println!(
        "loopback check PASSED: {compared} answers byte-identical to the local \
         in-process store at seq {} ({} store shard(s) behind the service)",
        local_cut.seq, stats.store_shards
    );
    Ok(())
}

/// Bench mode: sustained in-process load, then a loopback networked
/// load against the populated store.
fn run_bench(cli: &Cli) -> Result<(), String> {
    let (_spec, cfg, hose) = capture_firehose(cli)?;
    let store = CliStore::build(cli, cfg, hose.node_count);
    let report = sustained_load(store.serve_store(), &hose.events, cli.query_threads);
    eprintln!(
        "load: {} events in {:.3} s = {:.0} events/s ingest, {} queries = {:.0} queries/s \
         ({} reader threads, {} generations, {} links)",
        report.events,
        report.ingest_wall_s,
        report.ingest_events_per_sec,
        report.queries,
        report.queries_per_sec,
        report.query_threads,
        report.generations,
        report.links
    );

    // Networked leg: serve the (already populated) store on an ephemeral
    // loopback port and hammer it with framed clients.
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?
        .to_string();
    let view = store.view();
    std::thread::spawn(move || {
        let _ = dophy_serve::serve(listener, view);
    });
    let networked = networked_load(&addr, cli.net_clients, cli.net_rounds)
        .map_err(|e| format!("networked load against {addr}: {e}"))?;
    eprintln!(
        "networked: {} framed queries in {:.3} s = {:.0} queries/s \
         ({} clients x {} rounds over loopback TCP)",
        networked.queries,
        networked.wall_s,
        networked.queries_per_sec,
        networked.client_threads,
        networked.rounds_per_thread
    );

    let bench = BenchFile {
        what: format!(
            "dophy-serve sustained load: {} query threads against the estimate store \
             ({} backend, {} store shard(s)) while the merged firehose of {} simulations \
             ingests at full speed; then {} framed clients over loopback TCP. \
             Regenerate with: cargo run --release -p dophy-serve -- --sims {} --side {} \
             --duration {} --store-shards {} --bench-out <path>",
            cli.query_threads,
            cli.estimator,
            cli.store_shards.max(1),
            cli.sims,
            cli.net_clients,
            cli.sims,
            cli.side,
            cli.duration_s,
            cli.store_shards.max(1),
        ),
        context: BenchContext {
            available_cores: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            note: "queries/sec counts full query-mix rounds (top-k + per-link + coverage + \
                   path + stats) through TomographyView::answer; per-class latency quantiles \
                   are power-of-two-bucket upper bounds in microseconds; networked numbers \
                   include framing and the loopback round trip; on a single-core host reader \
                   threads timeshare with the ingest loop, so throughputs are conservative",
        },
        sims: cli.sims,
        nodes_per_sim: hose.node_count,
        duration_s: cli.duration_s,
        estimator: cli.estimator.to_string(),
        publish_every: cli.publish_every,
        store_shards: cli.store_shards.max(1),
        load: report,
        networked,
    };
    let json = serde_json::to_string_pretty(&bench)
        .map_err(|e| format!("cannot serialize bench report: {e}"))?;
    match &cli.bench_out {
        Some(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
                }
            }
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("bench report -> {}", path.display());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn run(cli: Cli) -> Result<(), String> {
    if let Some(addr) = cli.connect.clone() {
        return run_connect(&cli, &addr);
    }
    if let Some(addr) = cli.listen.clone() {
        return run_listen(&cli, &addr);
    }
    if cli.check {
        let (_spec, cfg, hose) = capture_firehose(&cli)?;
        return replay_check(&cli, &hose.events, cfg, hose.node_count);
    }
    run_bench(&cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(cli) {
        eprintln!("dophy-serve: {e}");
        std::process::exit(1);
    }
}
