//! Length-prefixed framed codec for the tomography service.
//!
//! ## Frame layout
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------
//!       0     2  magic        0xD0 0xF1 ("dophy frame")
//!       2     2  version      u16 little-endian, PROTOCOL_VERSION
//!       4     4  payload len  u32 little-endian, bytes following
//!       8     n  payload      UTF-8 JSON of one Request/Response
//! ```
//!
//! ## Decode hardening
//!
//! The decoder validates in header order and fails with a typed
//! [`WireError`] *before* committing resources: magic first, then
//! version, then the length against [`MAX_FRAME_PAYLOAD`] — only a
//! length that passed the cap ever drives an allocation, so a hostile
//! 4 GiB length prefix costs nothing. Truncated input reports exactly
//! how many bytes were expected versus present, and payloads that are
//! not valid UTF-8 JSON of the expected type surface as
//! [`WireError::Payload`]. The decoder never panics on any input — the
//! `wire_proptest` suite bit-flips, truncates, and inflates frames to
//! hold it to that.

use crate::proto::PROTOCOL_VERSION;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = [0xD0, 0xF1];

/// Fixed header size (magic + version + payload length).
pub const HEADER_LEN: usize = 8;

/// Hard cap on payload size: frames claiming more are rejected before
/// any allocation. Generous for full-snapshot responses, far below
/// anything that could be used to balloon a peer's memory.
pub const MAX_FRAME_PAYLOAD: u32 = 8 * 1024 * 1024;

/// Typed decode/transport failure. Every malformed input maps to one of
/// these — the codec has no panicking path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The frame carried a protocol version this build does not speak.
    VersionSkew {
        /// Version in the frame header.
        got: u16,
        /// Version this build speaks.
        want: u16,
    },
    /// The length prefix exceeded [`MAX_FRAME_PAYLOAD`].
    Oversize {
        /// Claimed payload length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// The input ended before the frame did.
    Truncated {
        /// Bytes the frame required.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload was not valid UTF-8 JSON of the expected type.
    Payload(String),
    /// Transport-level I/O failure.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => {
                write!(f, "bad frame magic {:02x}{:02x}", m[0], m[1])
            }
            WireError::VersionSkew { got, want } => {
                write!(
                    f,
                    "protocol version skew: frame v{got}, this build speaks v{want}"
                )
            }
            WireError::Oversize { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::Payload(e) => write!(f, "bad frame payload: {e}"),
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one message as a complete frame (header + JSON payload).
/// Fails with [`WireError::Oversize`] if the payload would exceed the
/// cap the decoder enforces — an encoder must never emit a frame its
/// peer is required to reject.
pub fn encode_frame<T: Serialize>(msg: &T) -> Result<Vec<u8>, WireError> {
    encode_frame_versioned(msg, PROTOCOL_VERSION)
}

/// [`encode_frame`] with an explicit header version — the test hook for
/// exercising version-skew handling.
pub fn encode_frame_versioned<T: Serialize>(msg: &T, version: u16) -> Result<Vec<u8>, WireError> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| WireError::Payload(e.to_string()))?
        .into_bytes();
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversize {
        len: u32::MAX,
        max: MAX_FRAME_PAYLOAD,
    })?;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize {
            len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&version.to_le_bytes());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Validates a frame header. Returns the payload length. Checks run in
/// header order (magic, version, length) so each error names the first
/// defect, and nothing is allocated on any failing path.
fn check_header(header: &[u8; HEADER_LEN]) -> Result<usize, WireError> {
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    let version = u16::from_le_bytes([header[2], header[3]]);
    if version != PROTOCOL_VERSION {
        return Err(WireError::VersionSkew {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize {
            len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    Ok(len as usize)
}

/// Decodes the payload bytes into the expected message type.
fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload).map_err(|e| WireError::Payload(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| WireError::Payload(e.to_string()))
}

/// Decodes one frame from the front of `buf`. Returns the message and
/// the number of bytes consumed. Never reads past the declared frame,
/// never allocates more than the (capped) declared payload length, and
/// returns [`WireError::Truncated`] when `buf` ends early.
pub fn decode_frame<T: Deserialize>(buf: &[u8]) -> Result<(T, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            expected: HEADER_LEN,
            got: buf.len(),
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let len = check_header(&header)?;
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Err(WireError::Truncated {
            expected: total,
            got: buf.len(),
        });
    }
    let msg = decode_payload(&buf[HEADER_LEN..total])?;
    Ok((msg, total))
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived when the
/// stream ends early (so stream truncation carries the same typed
/// diagnostics as slice truncation).
fn read_exact_counted<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    already: usize,
    expected: usize,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected,
                    got: already + filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads and decodes one frame from a stream. The payload buffer is
/// allocated only after the header's length passed the cap check.
pub fn read_frame<T: Deserialize, R: Read>(r: &mut R) -> Result<T, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_counted(r, &mut header, 0, HEADER_LEN)?;
    let len = check_header(&header)?;
    let mut payload = vec![0u8; len];
    read_exact_counted(r, &mut payload, HEADER_LEN, HEADER_LEN + len)?;
    decode_payload(&payload)
}

/// Encodes and writes one frame to a stream, flushing it.
pub fn write_frame<T: Serialize, W: Write>(w: &mut W, msg: &T) -> Result<(), WireError> {
    let frame = encode_frame(msg)?;
    w.write_all(&frame)
        .map_err(|e| WireError::Io(e.to_string()))?;
    w.flush().map_err(|e| WireError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;

    #[test]
    fn round_trips_a_request() {
        let req = Request::PerLink { link: (3, 1) };
        let frame = encode_frame(&req).unwrap();
        assert_eq!(&frame[..2], &MAGIC);
        let (back, used): (Request, usize) = decode_frame(&frame).unwrap();
        assert_eq!(back, req);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn header_defects_report_in_order() {
        let frame = encode_frame(&Request::Stats).unwrap();

        let mut bad_magic = frame.clone();
        bad_magic[0] = 0x00;
        assert!(matches!(
            decode_frame::<Request>(&bad_magic),
            Err(WireError::BadMagic([0x00, 0xF1]))
        ));

        let mut skew = frame.clone();
        skew[2] = 0xFF;
        assert!(matches!(
            decode_frame::<Request>(&skew),
            Err(WireError::VersionSkew {
                want: PROTOCOL_VERSION,
                ..
            })
        ));

        let mut oversize = frame.clone();
        oversize[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame::<Request>(&oversize),
            Err(WireError::Oversize { len: u32::MAX, .. })
        ));

        assert!(matches!(
            decode_frame::<Request>(&frame[..frame.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn stream_reader_matches_slice_decoder() {
        let req = Request::TopK { k: 5 };
        let frame = encode_frame(&req).unwrap();
        let mut cursor = std::io::Cursor::new(frame.clone());
        let from_stream: Request = read_frame(&mut cursor).unwrap();
        let (from_slice, _): (Request, usize) = decode_frame(&frame).unwrap();
        assert_eq!(from_stream, from_slice);
        // A truncated stream reports byte-accurate counts.
        let mut short = std::io::Cursor::new(frame[..frame.len() - 2].to_vec());
        match read_frame::<Request, _>(&mut short) {
            Err(WireError::Truncated { expected, got }) => {
                assert_eq!(expected, frame.len());
                assert_eq!(got, frame.len() - 2);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }
}
