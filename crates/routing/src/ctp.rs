//! CTP-style collection routing: dynamic parent selection over ETX.
//!
//! [`Router`] is an *embeddable* component, not a full
//! [`dophy_sim::Protocol`]: the application protocol (Dophy, or the plain
//! collection app used for baselines) owns a `Router` and forwards the
//! relevant engine callbacks to it. This mirrors the TinyOS decomposition
//! where CTP's routing engine and the application share the node.
//!
//! The router:
//!
//! * broadcasts beacons `(seq, advertised ETX)` paced by a Trickle timer;
//! * estimates link ETX from beacon gaps and data-plane ARQ outcomes;
//! * selects as parent the neighbor minimising `link ETX + advertised ETX`,
//!   with switch hysteresis to prevent parent flapping;
//! * resets its Trickle timer on parent changes so the network reacts
//!   quickly — exactly the *dynamic forwarding-node selection* that breaks
//!   static-tree tomography and motivates Dophy.
//!
//! Transient routing loops are possible, as in real distance-vector
//! collection; the data plane guards with a TTL (see the `dophy` crate).

use crate::beacon::{Trickle, TrickleConfig};
use crate::table::{EstimatorConfig, NeighborTable};
use dophy_sim::obs::{beacon_trace_id, ParentChangeEvent, SpanEvent, SpanPhase};
use dophy_sim::{Ctx, Frame, NodeId, SendDone, SimTime, TimerId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Timer-id namespace reserved by the router. Applications embedding a
/// router must keep their own timer ids below this value.
pub const ROUTER_TIMER_BASE: u32 = 0x8000_0000;

/// Routing beacon payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconMsg {
    /// Per-origin beacon sequence number (gaps ⇒ losses).
    pub seq: u32,
    /// Sender's advertised path ETX to the sink (0 at the sink).
    pub etx_to_sink: f64,
}

/// Wire size of a beacon frame: 11B MAC header + 2B origin + 4B seq +
/// 2B quantized ETX.
pub const BEACON_WIRE_BYTES: usize = 19;

/// Router tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Link-estimator parameters.
    pub estimator: EstimatorConfig,
    /// Beacon pacing.
    pub trickle: TrickleConfig,
    /// A new parent must beat the current one by this much path ETX
    /// (CTP's PARENT_SWITCH_THRESHOLD).
    pub switch_hysteresis_etx: f64,
    /// Neighbors silent for longer than this are treated as gone (must
    /// exceed the Trickle maximum interval or healthy-but-quiet neighbors
    /// get evicted).
    pub neighbor_timeout: dophy_sim::SimDuration,
}

impl std::hash::Hash for RouterConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::hash::Hash::hash(&self.estimator, state);
        std::hash::Hash::hash(&self.trickle, state);
        state.write_u64(self.switch_hysteresis_etx.to_bits());
        state.write_u64(self.neighbor_timeout.as_micros());
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            estimator: EstimatorConfig::default(),
            trickle: TrickleConfig::default(),
            switch_hysteresis_etx: 1.5,
            neighbor_timeout: dophy_sim::SimDuration::from_secs(300),
        }
    }
}

/// Counters exposed for the dynamics experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Times the parent changed (first adoption excluded).
    pub parent_changes: u64,
    /// Beacons transmitted.
    pub beacons_sent: u64,
    /// Beacons received.
    pub beacons_heard: u64,
}

/// Embeddable collection-routing engine for one node.
#[derive(Debug, Clone)]
pub struct Router {
    node: NodeId,
    is_sink: bool,
    cfg: RouterConfig,
    table: NeighborTable,
    trickle: Trickle,
    parent: Option<NodeId>,
    parent_etx: f64,
    beacon_seq: u32,
    /// Generation guard: a Trickle reset schedules a fresh timer and stale
    /// ones are ignored by comparing the generation embedded in the id.
    timer_gen: u32,
    stats: RouterStats,
    /// Parent-change log `(time, new_parent)` for churn metrics.
    parent_log: Vec<(SimTime, NodeId)>,
}

impl Router {
    /// Creates a router for `node` with the given forwarding candidates
    /// (normally `ctx.neighbors()`). The sink's router advertises ETX 0 and
    /// never selects a parent.
    pub fn new(node: NodeId, candidates: &[NodeId], cfg: RouterConfig) -> Self {
        let is_sink = node == NodeId::SINK;
        Self {
            node,
            is_sink,
            table: NeighborTable::new(candidates),
            trickle: Trickle::new(cfg.trickle),
            cfg,
            parent: None,
            parent_etx: f64::INFINITY,
            beacon_seq: 0,
            timer_gen: 0,
            stats: RouterStats::default(),
            parent_log: Vec::new(),
        }
    }

    /// The node this router belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current next hop toward the sink (None at the sink or before any
    /// route forms).
    pub fn next_hop(&self) -> Option<NodeId> {
        self.parent
    }

    /// This node's path ETX to the sink (0 at the sink, ∞ with no route).
    pub fn own_etx(&self) -> f64 {
        if self.is_sink {
            0.0
        } else {
            self.parent_etx
        }
    }

    /// Router statistics.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Parent-change history `(time, new_parent)`.
    pub fn parent_log(&self) -> &[(SimTime, NodeId)] {
        &self.parent_log
    }

    /// Parent snapshot: the parent in effect at `t` (the last adoption at
    /// or before `t`), `None` before the first route formed. Binary search
    /// over the append-only change log, so window-based tomography can
    /// attribute any past window against the routing state that actually
    /// carried it. At `t = now` this equals [`Self::next_hop`].
    pub fn parent_as_of(&self, t: SimTime) -> Option<NodeId> {
        let idx = self.parent_log.partition_point(|&(at, _)| at <= t);
        idx.checked_sub(1).map(|i| self.parent_log[i].1)
    }

    /// The neighbor table (read access for diagnostics and Dophy's
    /// forwarding-index lookups).
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// Call from the protocol's `on_init`.
    pub fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        self.schedule_beacon(ctx);
    }

    /// Restarts beaconing after a period of suppression (e.g. the node was
    /// powered down and swallowed its pending Trickle timer). Resets the
    /// Trickle interval and drops the current route so it is re-learned
    /// from fresh advertisements.
    pub fn restart(&mut self, ctx: &mut Ctx<'_>) {
        self.trickle.reset();
        self.parent = None;
        self.parent_etx = f64::INFINITY;
        self.timer_gen = self.timer_gen.wrapping_add(1);
        self.schedule_beacon(ctx);
    }

    /// Call from the protocol's `on_timer`; returns true if the timer
    /// belonged to the router.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) -> bool {
        if timer.0 < ROUTER_TIMER_BASE {
            return false;
        }
        let gen = timer.0 - ROUTER_TIMER_BASE;
        if gen != self.timer_gen {
            return true; // stale pre-reset timer: swallow silently
        }
        self.send_beacon(ctx);
        self.schedule_beacon(ctx);
        true
    }

    /// Call from the protocol's `on_frame`; returns true if the frame was a
    /// routing beacon (consumed).
    pub fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) -> bool {
        let Some(b) = frame.payload_as::<BeaconMsg>() else {
            return false;
        };
        self.stats.beacons_heard += 1;
        if let Some(e) = self.table.get_mut(frame.src) {
            e.record_beacon(b.seq, b.etx_to_sink, frame.rx_time);
        }
        self.reconsider(ctx);
        true
    }

    /// Call from the protocol's `on_send_done` for data frames sent via
    /// [`next_hop`](Self::next_hop); feeds the data-driven estimator.
    pub fn on_send_done(&mut self, ctx: &mut Ctx<'_>, done: &SendDone) {
        if done.was_dropped() {
            return;
        }
        if let Some(e) = self.table.get_mut(done.dst) {
            e.record_data(done.attempts, done.acked, &self.cfg.estimator);
        }
        self.reconsider(ctx);
    }

    fn send_beacon(&mut self, ctx: &mut Ctx<'_>) {
        self.beacon_seq += 1;
        let msg = BeaconMsg {
            seq: self.beacon_seq,
            etx_to_sink: self.own_etx(),
        };
        let trace = beacon_trace_id(self.node.0, u64::from(self.beacon_seq));
        if let Some(observer) = ctx.observer() {
            observer.on_span(
                ctx.now(),
                &SpanEvent {
                    trace_id: trace,
                    node: self.node.0,
                    phase: SpanPhase::Origin,
                },
            );
        }
        ctx.send_broadcast_traced(Arc::new(msg), BEACON_WIRE_BYTES, trace);
        self.stats.beacons_sent += 1;
    }

    fn schedule_beacon(&mut self, ctx: &mut Ctx<'_>) {
        let delay = self.trickle.next_delay(ctx.rng());
        ctx.set_timer(delay, TimerId(ROUTER_TIMER_BASE + self.timer_gen));
    }

    /// Re-runs parent selection; resets Trickle on a change.
    fn reconsider(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_sink {
            return;
        }
        let Some((best, best_etx)) =
            self.table
                .best(&self.cfg.estimator, ctx.now(), self.cfg.neighbor_timeout)
        else {
            // No live candidate: drop the route entirely.
            self.parent = None;
            self.parent_etx = f64::INFINITY;
            return;
        };
        // A silent (timed-out) current parent is abandoned unconditionally.
        let parent_alive = self
            .parent
            .and_then(|cur| self.table.get(cur))
            .is_some_and(|e| {
                e.last_heard
                    .is_some_and(|t| ctx.now().since(t.min(ctx.now())) <= self.cfg.neighbor_timeout)
            });
        match self.parent {
            Some(cur) if cur == best && parent_alive => {
                // Refresh the metric through the current parent.
                self.parent_etx = best_etx;
            }
            Some(cur) if parent_alive => {
                let cur_etx = self
                    .table
                    .get(cur)
                    .map(|e| e.path_etx(&self.cfg.estimator))
                    .unwrap_or(f64::INFINITY);
                self.parent_etx = cur_etx;
                if best_etx + self.cfg.switch_hysteresis_etx < cur_etx {
                    self.adopt(ctx, best, best_etx);
                }
            }
            _ => self.adopt(ctx, best, best_etx),
        }
    }

    fn adopt(&mut self, ctx: &mut Ctx<'_>, parent: NodeId, etx: f64) {
        let had_parent = self.parent.is_some();
        if let Some(obs) = ctx.observer() {
            obs.on_parent_change(
                ctx.now(),
                &ParentChangeEvent {
                    node: ctx.node_id().0,
                    old_parent: self.parent.map(|p| p.0),
                    new_parent: parent.0,
                    etx,
                },
            );
        }
        self.parent = Some(parent);
        self.parent_etx = etx;
        self.parent_log.push((ctx.now(), parent));
        if had_parent {
            self.stats.parent_changes += 1;
        }
        // Fast convergence after a change: shrink the beacon interval and
        // restart the timer under a fresh generation.
        if self.trickle.reset() || !had_parent {
            self.timer_gen = self.timer_gen.wrapping_add(1);
            let delay = self.trickle.next_delay(ctx.rng());
            ctx.set_timer(delay, TimerId(ROUTER_TIMER_BASE + self.timer_gen));
        }
    }
}

/// A self-contained protocol that runs *only* the router (plus optional
/// periodic test traffic). Used by routing's own integration tests and by
/// experiments that need a tree without an application.
pub struct RoutingOnlyNode {
    router: Option<Router>,
    cfg: RouterConfig,
}

impl RoutingOnlyNode {
    /// New routing-only node.
    pub fn new(cfg: RouterConfig) -> Self {
        Self { router: None, cfg }
    }

    /// The embedded router, once initialised.
    ///
    /// # Panics
    /// Panics before `on_init` ran.
    pub fn router(&self) -> &Router {
        self.router.as_ref().expect("initialised")
    }
}

impl dophy_sim::Protocol for RoutingOnlyNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        let candidates: Vec<_> = ctx.neighbors().to_vec();
        let mut r = Router::new(ctx.node_id(), &candidates, self.cfg);
        r.on_init(ctx);
        self.router = Some(r);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        self.router
            .as_mut()
            .expect("initialised")
            .on_timer(ctx, timer);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        self.router
            .as_mut()
            .expect("initialised")
            .on_frame(ctx, frame);
    }

    fn on_send_done(&mut self, ctx: &mut Ctx<'_>, done: &SendDone) {
        self.router
            .as_mut()
            .expect("initialised")
            .on_send_done(ctx, done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_sim::{
        Engine, LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration,
    };
    use std::sync::Arc as StdArc;

    fn run_routing(cfg: SimConfig, secs: u64) -> Engine<RoutingOnlyNode> {
        let topo = StdArc::new(cfg.topology());
        let models = cfg.loss_models(&topo);
        let protos = (0..topo.node_count())
            .map(|_| RoutingOnlyNode::new(RouterConfig::default()))
            .collect();
        let mut e = Engine::new(topo, &models, cfg.mac, cfg.hub(), protos);
        e.start();
        e.run_for(SimDuration::from_secs(secs));
        e
    }

    #[test]
    fn tree_forms_on_grid() {
        let cfg = SimConfig {
            placement: Placement::Grid {
                side: 5,
                spacing: 15.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 21,
        };
        let e = run_routing(cfg, 300);
        let n = e.topology().node_count();
        // Every non-sink node must have a parent.
        for i in 1..n {
            let r = e.protocol(NodeId(i as u32)).router();
            assert!(r.next_hop().is_some(), "node {i} has no parent");
            assert!(r.own_etx().is_finite(), "node {i} has no route metric");
        }
        // Following parents from every node must reach the sink (no loops
        // in the converged state).
        for i in 1..n {
            let mut cur = NodeId(i as u32);
            let mut hops = 0;
            while cur != NodeId::SINK {
                cur = e.protocol(cur).router().next_hop().expect("routed");
                hops += 1;
                assert!(hops <= n, "routing loop from node {i}");
            }
        }
    }

    #[test]
    fn sink_advertises_zero_and_has_no_parent() {
        let cfg = SimConfig {
            placement: Placement::Line {
                n: 3,
                spacing: 10.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 5,
        };
        let e = run_routing(cfg, 60);
        let sink = e.protocol(NodeId::SINK).router();
        assert_eq!(sink.next_hop(), None);
        assert_eq!(sink.own_etx(), 0.0);
        assert!(sink.stats().beacons_sent > 0);
    }

    #[test]
    fn etx_grows_with_depth_on_a_line() {
        let cfg = SimConfig {
            placement: Placement::Line {
                n: 5,
                spacing: 25.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 8,
        };
        let e = run_routing(cfg, 300);
        let etx: Vec<f64> = (0..5)
            .map(|i| e.protocol(NodeId(i)).router().own_etx())
            .collect();
        assert_eq!(etx[0], 0.0);
        for i in 1..5 {
            assert!(
                etx[i] > etx[i - 1] - 0.5,
                "ETX should broadly grow with depth: {etx:?}"
            );
        }
        assert!(etx[4] >= 3.0, "far node must be several ETX out: {etx:?}");
    }

    #[test]
    fn beacons_fire_and_are_heard() {
        let cfg = SimConfig {
            placement: Placement::Grid {
                side: 3,
                spacing: 12.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 99,
        };
        let e = run_routing(cfg, 120);
        let total_sent: u64 = (0..9)
            .map(|i| e.protocol(NodeId(i)).router().stats().beacons_sent)
            .sum();
        let total_heard: u64 = (0..9)
            .map(|i| e.protocol(NodeId(i)).router().stats().beacons_heard)
            .sum();
        assert!(total_sent >= 9, "each node should beacon at least once");
        assert!(
            total_heard > total_sent,
            "dense grid: multiple hearers per beacon"
        );
    }

    #[test]
    fn volatile_links_cause_parent_churn() {
        let churn = |e: &Engine<RoutingOnlyNode>| -> u64 {
            (1..e.topology().node_count())
                .map(|i| e.protocol(NodeId(i as u32)).router().stats().parent_changes)
                .sum()
        };
        // A single seed can land within noise of the static baseline, so
        // aggregate the churn counts over several seeds before comparing.
        let (mut cs, mut cv) = (0u64, 0u64);
        for seed in 13..16 {
            let base = SimConfig {
                placement: Placement::UniformDisk {
                    n: 40,
                    radius: 70.0,
                },
                radio: RadioModel::default(),
                mac: MacConfig::default(),
                dynamics: LinkDynamics::Static,
                seed,
            };
            cs += churn(&run_routing(base, 600));
            cv += churn(&run_routing(
                SimConfig {
                    dynamics: LinkDynamics::Volatile {
                        sigma_per_sqrt_s: 0.08,
                    },
                    ..base
                },
                600,
            ));
        }
        assert!(
            cv > cs,
            "volatile links must cause more parent changes: stable {cs} vs volatile {cv}"
        );
    }

    #[test]
    fn deterministic_replay() {
        let cfg = SimConfig {
            placement: Placement::Grid {
                side: 4,
                spacing: 14.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Drift {
                amp: 0.2,
                period_s: 60.0,
            },
            seed: 4242,
        };
        let snapshot = |e: &Engine<RoutingOnlyNode>| -> Vec<(Option<NodeId>, u64)> {
            (0..e.topology().node_count())
                .map(|i| {
                    let r = e.protocol(NodeId(i as u32)).router();
                    (r.next_hop(), r.stats().beacons_sent)
                })
                .collect()
        };
        let a = run_routing(cfg, 200);
        let b = run_routing(cfg, 200);
        assert_eq!(snapshot(&a), snapshot(&b));
    }

    #[test]
    fn parent_as_of_replays_the_change_log() {
        let cfg = SimConfig {
            placement: Placement::Grid {
                side: 4,
                spacing: 14.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Drift {
                amp: 0.3,
                period_s: 40.0,
            },
            seed: 99,
        };
        let e = run_routing(cfg, 300);
        let mut changes = 0usize;
        for i in 0..e.topology().node_count() {
            let r = e.protocol(NodeId(i as u32)).router();
            let log = r.parent_log();
            // The live view and the snapshot at `now` must agree.
            assert_eq!(r.parent_as_of(e.now()), r.next_hop(), "node {i}");
            if log.is_empty() {
                continue;
            }
            // Before the first adoption there was no route.
            let first = log[0].0;
            assert_eq!(
                r.parent_as_of(SimTime::from_micros(first.as_micros() - 1)),
                None
            );
            // At (and just after) each adoption instant the snapshot is
            // that entry's parent.
            for w in log.windows(2) {
                let (at, parent) = w[0];
                let next_at = w[1].0;
                if next_at == at {
                    // Two adoptions in the same microsecond: the later
                    // one wins every query at that instant.
                    continue;
                }
                assert_eq!(r.parent_as_of(at), Some(parent));
                assert_eq!(
                    r.parent_as_of(SimTime::from_micros(next_at.as_micros() - 1)),
                    Some(parent)
                );
                changes += 1;
            }
        }
        assert!(changes > 0, "drift regime produced no parent changes");
    }
}
