//! Trickle-style adaptive beaconing.
//!
//! CTP paces its routing beacons with a Trickle timer: the interval doubles
//! from `i_min` up to `i_max` while the topology is quiet, and resets to
//! `i_min` on events that demand fast convergence (parent change, large ETX
//! shift, a loop signature). The beacon interval is the primary lever
//! controlling how *dynamic* routing is — experiments sweep it to stress
//! tomography under path churn.

use dophy_sim::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Trickle timer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrickleConfig {
    /// Minimum interval.
    pub i_min: SimDuration,
    /// Maximum interval.
    pub i_max: SimDuration,
}

impl Default for TrickleConfig {
    fn default() -> Self {
        Self {
            i_min: SimDuration::from_millis(125),
            i_max: SimDuration::from_secs(120),
        }
    }
}

/// The Trickle state machine (interval management only; suppression is not
/// needed for collection beacons, matching CTP's usage).
///
/// ```
/// use dophy_routing::{Trickle, TrickleConfig};
/// use dophy_sim::{RngHub, StreamKind};
///
/// let mut t = Trickle::new(TrickleConfig::default());
/// let mut rng = RngHub::new(1).stream(StreamKind::Protocol, 0, 0);
/// let first = t.interval();
/// t.next_delay(&mut rng);
/// assert_eq!(t.interval(), first * 2, "interval doubles while quiet");
/// t.reset();
/// assert_eq!(t.interval(), first, "topology events reset it");
/// ```
#[derive(Debug, Clone)]
pub struct Trickle {
    cfg: TrickleConfig,
    current: SimDuration,
}

impl Trickle {
    /// Creates a timer starting at `i_min`.
    ///
    /// # Panics
    /// Panics unless `0 < i_min <= i_max`.
    pub fn new(cfg: TrickleConfig) -> Self {
        assert!(
            !cfg.i_min.is_zero() && cfg.i_min <= cfg.i_max,
            "need 0 < i_min <= i_max"
        );
        Self {
            cfg,
            current: cfg.i_min,
        }
    }

    /// The current interval.
    pub fn interval(&self) -> SimDuration {
        self.current
    }

    /// Draws the delay until the next beacon: uniform in the second half of
    /// the current interval (Trickle's `[I/2, I)` firing window), then
    /// doubles the interval for next time.
    pub fn next_delay(&mut self, rng: &mut SmallRng) -> SimDuration {
        let i = self.current.as_micros();
        let delay = rng.gen_range(i / 2..i.max(i / 2 + 1));
        // Double, capped.
        self.current = (self.current * 2).min(self.cfg.i_max);
        SimDuration::from_micros(delay)
    }

    /// Resets to the minimum interval (topology event). Returns true if the
    /// interval actually shrank (callers use this to reschedule).
    pub fn reset(&mut self) -> bool {
        let shrank = self.current > self.cfg.i_min;
        self.current = self.cfg.i_min;
        shrank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_sim::{RngHub, StreamKind};

    fn rng() -> SmallRng {
        RngHub::new(3).stream(StreamKind::Protocol, 0, 0)
    }

    #[test]
    fn interval_doubles_to_cap() {
        let cfg = TrickleConfig {
            i_min: SimDuration::from_millis(100),
            i_max: SimDuration::from_millis(900),
        };
        let mut t = Trickle::new(cfg);
        let mut r = rng();
        assert_eq!(t.interval(), SimDuration::from_millis(100));
        t.next_delay(&mut r);
        assert_eq!(t.interval(), SimDuration::from_millis(200));
        t.next_delay(&mut r);
        assert_eq!(t.interval(), SimDuration::from_millis(400));
        t.next_delay(&mut r);
        assert_eq!(t.interval(), SimDuration::from_millis(800));
        t.next_delay(&mut r);
        assert_eq!(t.interval(), SimDuration::from_millis(900), "capped");
        t.next_delay(&mut r);
        assert_eq!(t.interval(), SimDuration::from_millis(900));
    }

    #[test]
    fn delay_within_firing_window() {
        let mut t = Trickle::new(TrickleConfig::default());
        let mut r = rng();
        for _ in 0..50 {
            let i = t.interval().as_micros();
            let d = t.next_delay(&mut r).as_micros();
            assert!(d >= i / 2 && d < i, "delay {d} outside [{}, {i})", i / 2);
        }
    }

    #[test]
    fn reset_shrinks_interval() {
        let mut t = Trickle::new(TrickleConfig::default());
        let mut r = rng();
        for _ in 0..5 {
            t.next_delay(&mut r);
        }
        assert!(t.interval() > TrickleConfig::default().i_min);
        assert!(t.reset());
        assert_eq!(t.interval(), TrickleConfig::default().i_min);
        assert!(!t.reset(), "second reset is a no-op");
    }

    #[test]
    #[should_panic(expected = "i_min")]
    fn rejects_inverted_bounds() {
        Trickle::new(TrickleConfig {
            i_min: SimDuration::from_secs(10),
            i_max: SimDuration::from_secs(1),
        });
    }
}
