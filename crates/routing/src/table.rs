//! Per-neighbor routing state: link estimation and advertised routes.
//!
//! Each node keeps one [`NeighborEntry`] per out-neighbor in its static
//! candidate set. Link quality is estimated two ways, mirroring CTP's
//! hybrid estimator:
//!
//! * **Beacon-driven**: neighbors broadcast beacons with sequence numbers;
//!   gaps reveal losses, feeding an EWMA of the beacon reception ratio.
//! * **Data-driven**: completed ARQ exchanges report the attempt count,
//!   which *is* an unbiased ETX sample for the link (including the ACK
//!   direction); these feed a second EWMA that dominates once data flows.

use dophy_sim::stats::Ewma;
use dophy_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Tuning knobs for the link estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// EWMA smoothing for beacon reception ratio.
    pub beacon_alpha: f64,
    /// EWMA smoothing for data-driven ETX samples.
    pub data_alpha: f64,
    /// ETX charged for an ARQ exchange that exhausted its budget
    /// (attempts were `R`, but the *expected* cost of an undeliverable
    /// frame is higher; CTP uses a similar failure penalty).
    pub failure_penalty_etx: f64,
    /// ETX assumed for a neighbor never heard from.
    pub initial_etx: f64,
}

impl std::hash::Hash for EstimatorConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.beacon_alpha.to_bits());
        state.write_u64(self.data_alpha.to_bits());
        state.write_u64(self.failure_penalty_etx.to_bits());
        state.write_u64(self.initial_etx.to_bits());
    }
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            beacon_alpha: 0.2,
            data_alpha: 0.25,
            failure_penalty_etx: 12.0,
            initial_etx: 3.0,
        }
    }
}

/// State tracked for one out-neighbor.
#[derive(Debug, Clone)]
pub struct NeighborEntry {
    /// The neighbor's id.
    pub id: NodeId,
    /// EWMA of beacon reception (1 per received, 0 per inferred miss).
    beacon_prr: Ewma,
    /// Highest beacon sequence seen.
    last_beacon_seq: Option<u32>,
    /// EWMA of data-driven ETX samples (attempts per delivered frame).
    data_etx: Ewma,
    /// The neighbor's advertised path ETX to the sink.
    pub advertised_etx: f64,
    /// When the advertisement was last refreshed.
    pub last_heard: Option<SimTime>,
}

impl NeighborEntry {
    fn new(id: NodeId) -> Self {
        Self {
            id,
            beacon_prr: Ewma::new(0.2),
            last_beacon_seq: None,
            data_etx: Ewma::new(0.25),
            advertised_etx: f64::INFINITY,
            last_heard: None,
        }
    }

    /// Records a received beacon with sequence `seq`, inferring losses from
    /// the gap since the last one.
    ///
    /// Beacons also *slowly* pull the data-driven ETX toward the
    /// beacon-implied value. Without this, a link the router abandoned
    /// keeps its last (bad) data ETX forever and is never re-adopted after
    /// recovering — CTP's hybrid estimator blends both signals for exactly
    /// this reason.
    pub fn record_beacon(&mut self, seq: u32, advertised_etx: f64, now: SimTime) {
        if let Some(last) = self.last_beacon_seq {
            // Ignore reordered/duplicate beacons (broadcasts are one-shot,
            // so this only guards against protocol restarts).
            if seq <= last {
                self.last_beacon_seq = Some(seq.max(last));
                self.advertised_etx = advertised_etx;
                self.last_heard = Some(now);
                return;
            }
            let missed = seq - last - 1;
            for _ in 0..missed.min(8) {
                self.beacon_prr.update(0.0);
            }
        }
        self.beacon_prr.update(1.0);
        if self.data_etx.value().is_some() {
            if let Some(prr) = self.beacon_prr.value() {
                let implied = 1.0 / prr.clamp(0.05, 1.0).powi(2);
                self.data_etx.update(implied);
            }
        }
        self.last_beacon_seq = Some(seq);
        self.advertised_etx = advertised_etx;
        self.last_heard = Some(now);
    }

    /// Records a completed ARQ exchange toward this neighbor.
    pub fn record_data(&mut self, attempts: u16, acked: bool, cfg: &EstimatorConfig) {
        let sample = if acked {
            f64::from(attempts)
        } else {
            cfg.failure_penalty_etx
        };
        self.data_etx.update(sample);
    }

    /// Current single-hop ETX estimate for the link to this neighbor.
    ///
    /// Data-driven samples dominate once present; otherwise the beacon PRR
    /// is inverted (`1/prr²` approximates bidirectional ETX under rough
    /// symmetry); otherwise a configured prior.
    pub fn link_etx(&self, cfg: &EstimatorConfig) -> f64 {
        if let Some(etx) = self.data_etx.value() {
            return etx.max(1.0);
        }
        if let Some(prr) = self.beacon_prr.value() {
            let prr = prr.clamp(0.05, 1.0);
            return (1.0 / (prr * prr)).min(cfg.failure_penalty_etx * 2.0);
        }
        cfg.initial_etx
    }

    /// Path ETX through this neighbor (link + its advertised route).
    pub fn path_etx(&self, cfg: &EstimatorConfig) -> f64 {
        self.link_etx(cfg) + self.advertised_etx
    }

    /// Beacon reception estimate, if any beacon arrived yet.
    pub fn beacon_prr(&self) -> Option<f64> {
        self.beacon_prr.value()
    }

    /// True once any beacon has been heard.
    pub fn heard(&self) -> bool {
        self.last_heard.is_some()
    }
}

/// Fixed-candidate-set neighbor table (candidates come from the topology,
/// as a deployment's neighbor discovery would populate).
#[derive(Debug, Clone)]
pub struct NeighborTable {
    entries: Vec<NeighborEntry>,
}

impl NeighborTable {
    /// Builds a table over the given candidate neighbors.
    pub fn new(candidates: &[NodeId]) -> Self {
        Self {
            entries: candidates
                .iter()
                .map(|&id| NeighborEntry::new(id))
                .collect(),
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[NeighborEntry] {
        &self.entries
    }

    /// Entry for `id`, if it is a candidate.
    pub fn get(&self, id: NodeId) -> Option<&NeighborEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Mutable entry for `id`.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut NeighborEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no candidates (isolated node).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The neighbor minimising path ETX, with its path ETX — the routing
    /// decision. Only neighbors heard from (with a finite advertised
    /// route) *recently* qualify: entries silent for longer than `timeout`
    /// are treated as gone (dead or departed nodes must stop attracting
    /// traffic).
    pub fn best(
        &self,
        cfg: &EstimatorConfig,
        now: SimTime,
        timeout: dophy_sim::SimDuration,
    ) -> Option<(NodeId, f64)> {
        self.entries
            .iter()
            .filter(|e| e.advertised_etx.is_finite())
            .filter(|e| match e.last_heard {
                Some(t) => now.since(t.min(now)) <= timeout,
                None => false,
            })
            .map(|e| (e.id, e.path_etx(cfg)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ETX"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::default()
    }

    #[test]
    fn beacon_gaps_count_as_losses() {
        let mut e = NeighborEntry::new(NodeId(3));
        e.record_beacon(1, 0.0, SimTime::from_micros(1));
        assert_eq!(e.beacon_prr(), Some(1.0));
        // Seq jumps 1 → 4: two missed.
        e.record_beacon(4, 0.0, SimTime::from_micros(2));
        let prr = e.beacon_prr().unwrap();
        assert!(prr < 1.0, "missed beacons must lower the estimate: {prr}");
    }

    #[test]
    fn perfect_beacons_keep_prr_at_one() {
        let mut e = NeighborEntry::new(NodeId(3));
        for seq in 1..=50 {
            e.record_beacon(seq, 0.0, SimTime::from_micros(u64::from(seq)));
        }
        assert_eq!(e.beacon_prr(), Some(1.0));
    }

    #[test]
    fn duplicate_beacon_is_ignored_for_prr() {
        let mut e = NeighborEntry::new(NodeId(3));
        e.record_beacon(5, 1.0, SimTime::from_micros(1));
        let before = e.beacon_prr();
        e.record_beacon(5, 2.0, SimTime::from_micros(2));
        assert_eq!(e.beacon_prr(), before);
        // But the advertisement refreshes.
        assert_eq!(e.advertised_etx, 2.0);
    }

    #[test]
    fn data_samples_dominate_link_etx() {
        let mut e = NeighborEntry::new(NodeId(3));
        e.record_beacon(1, 0.0, SimTime::from_micros(1));
        // Beacon-only estimate: prr 1 → etx 1.
        assert!((e.link_etx(&cfg()) - 1.0).abs() < 1e-9);
        for _ in 0..30 {
            e.record_data(3, true, &cfg());
        }
        let etx = e.link_etx(&cfg());
        assert!((etx - 3.0).abs() < 0.3, "data ETX should approach 3: {etx}");
    }

    #[test]
    fn beacons_heal_a_stale_bad_data_etx() {
        // The link degrades, the router abandons it, then it recovers:
        // perfect beacons must pull the data ETX back down so the link can
        // be re-adopted.
        let mut e = NeighborEntry::new(NodeId(3));
        e.record_beacon(1, 0.0, SimTime::from_micros(1));
        for _ in 0..20 {
            e.record_data(7, false, &cfg()); // failures: ETX ≈ 12
        }
        assert!(e.link_etx(&cfg()) > 8.0);
        // Recovery: only beacons arrive (no data traffic on this link).
        for seq in 2..60 {
            e.record_beacon(seq, 0.0, SimTime::from_micros(u64::from(seq)));
        }
        let healed = e.link_etx(&cfg());
        assert!(
            healed < 3.0,
            "beacons should heal the stale estimate: {healed}"
        );
    }

    #[test]
    fn failures_penalise_etx() {
        let mut e = NeighborEntry::new(NodeId(3));
        for _ in 0..10 {
            e.record_data(7, false, &cfg());
        }
        assert!(e.link_etx(&cfg()) > 7.0);
    }

    #[test]
    fn unheard_neighbor_uses_prior() {
        let e = NeighborEntry::new(NodeId(3));
        assert_eq!(e.link_etx(&cfg()), cfg().initial_etx);
        assert!(!e.heard());
        assert!(e.path_etx(&cfg()).is_infinite());
    }

    fn long() -> dophy_sim::SimDuration {
        dophy_sim::SimDuration::from_secs(10_000)
    }

    #[test]
    fn best_picks_lowest_path_etx() {
        let mut t = NeighborTable::new(&[NodeId(1), NodeId(2), NodeId(3)]);
        // n1: great link, long route. n2: good link, short route. n3: unheard.
        t.get_mut(NodeId(1))
            .unwrap()
            .record_beacon(1, 5.0, SimTime::ZERO);
        t.get_mut(NodeId(2))
            .unwrap()
            .record_beacon(1, 1.0, SimTime::ZERO);
        let (best, etx) = t.best(&cfg(), SimTime::ZERO, long()).unwrap();
        assert_eq!(best, NodeId(2));
        assert!((etx - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table_has_no_best() {
        let t = NeighborTable::new(&[]);
        assert!(t.best(&cfg(), SimTime::ZERO, long()).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn best_ignores_unheard() {
        let t = NeighborTable::new(&[NodeId(1), NodeId(2)]);
        assert!(
            t.best(&cfg(), SimTime::ZERO, long()).is_none(),
            "no advertisements yet"
        );
    }

    #[test]
    fn best_evicts_silent_neighbors() {
        let mut t = NeighborTable::new(&[NodeId(1), NodeId(2)]);
        t.get_mut(NodeId(1))
            .unwrap()
            .record_beacon(1, 1.0, SimTime::from_micros(0));
        t.get_mut(NodeId(2))
            .unwrap()
            .record_beacon(1, 5.0, SimTime::from_micros(90_000_000));
        let timeout = dophy_sim::SimDuration::from_secs(60);
        // At t=30s both are fresh; n1 wins on ETX.
        let now = SimTime::from_micros(30_000_000);
        assert_eq!(t.best(&cfg(), now, timeout).unwrap().0, NodeId(1));
        // At t=100s n1 is 100s silent (out), n2 is 10s fresh (in).
        let now = SimTime::from_micros(100_000_000);
        assert_eq!(t.best(&cfg(), now, timeout).unwrap().0, NodeId(2));
        // At t=200s both are silent.
        let now = SimTime::from_micros(200_000_000);
        assert!(t.best(&cfg(), now, timeout).is_none());
    }

    #[test]
    fn table_lookup() {
        let t = NeighborTable::new(&[NodeId(4), NodeId(9)]);
        assert_eq!(t.len(), 2);
        assert!(t.get(NodeId(4)).is_some());
        assert!(t.get(NodeId(5)).is_none());
    }
}
