//! Route-churn metrics.
//!
//! Quantifies *how dynamic* routing was during a run — the x-axis of the
//! accuracy-vs-dynamics experiment (`fig7`). Metrics are computed from the
//! per-node parent-change logs kept by [`crate::ctp::Router`].

use dophy_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate churn metrics for a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Total parent changes across all nodes (first adoptions excluded).
    pub total_changes: u64,
    /// Parent changes per node per hour of simulated time.
    pub changes_per_node_hour: f64,
    /// Mean number of distinct parents used per node.
    pub mean_distinct_parents: f64,
    /// Mean normalised parent entropy per node (0 = one parent always,
    /// 1 = uniform over all parents used).
    pub mean_parent_entropy: f64,
    /// Fraction of nodes that never changed parent.
    pub stable_fraction: f64,
}

/// Computes churn metrics from per-node parent logs.
///
/// `logs[i]` is node `i`'s `(time, new_parent)` history (the first entry is
/// the initial adoption); `duration` is the observed window. Nodes with
/// empty logs (e.g. the sink) are skipped.
pub fn churn_report(logs: &[&[(SimTime, NodeId)]], duration: SimTime) -> ChurnReport {
    let mut total_changes = 0u64;
    let mut distinct_sum = 0.0;
    let mut entropy_sum = 0.0;
    let mut stable = 0u64;
    let mut counted_nodes = 0u64;
    for log in logs {
        if log.is_empty() {
            continue;
        }
        counted_nodes += 1;
        let changes = (log.len() - 1) as u64;
        total_changes += changes;
        if changes == 0 {
            stable += 1;
        }
        // Time-weighted parent occupancy for the entropy metric. Kept
        // ordered so the entropy's float sums run in a fixed order and
        // reports stay byte-identical across same-seed runs.
        let mut occupancy: BTreeMap<NodeId, f64> = BTreeMap::new();
        for (i, &(t, p)) in log.iter().enumerate() {
            let end = log.get(i + 1).map(|&(t2, _)| t2).unwrap_or(duration.max(t));
            let span = end.since(t).as_secs_f64();
            *occupancy.entry(p).or_insert(0.0) += span;
        }
        let k = occupancy.len();
        distinct_sum += k as f64;
        if k > 1 {
            let total: f64 = occupancy.values().sum();
            if total > 0.0 {
                let h: f64 = occupancy
                    .values()
                    .filter(|&&w| w > 0.0)
                    .map(|&w| {
                        let p = w / total;
                        -p * p.log2()
                    })
                    .sum();
                entropy_sum += h / (k as f64).log2();
            }
        }
    }
    let hours = duration.as_secs_f64() / 3600.0;
    let n = counted_nodes.max(1) as f64;
    ChurnReport {
        total_changes,
        changes_per_node_hour: if hours > 0.0 {
            total_changes as f64 / n / hours
        } else {
            0.0
        },
        mean_distinct_parents: distinct_sum / n,
        mean_parent_entropy: entropy_sum / n,
        stable_fraction: stable as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn stable_network_has_zero_churn() {
        let a = [(t(1), NodeId(5))];
        let b = [(t(2), NodeId(7))];
        let logs: Vec<&[(SimTime, NodeId)]> = vec![&a, &b];
        let r = churn_report(&logs, t(3600));
        assert_eq!(r.total_changes, 0);
        assert_eq!(r.changes_per_node_hour, 0.0);
        assert_eq!(r.mean_distinct_parents, 1.0);
        assert_eq!(r.mean_parent_entropy, 0.0);
        assert_eq!(r.stable_fraction, 1.0);
    }

    #[test]
    fn churn_counts_changes() {
        let a = [(t(0), NodeId(5)), (t(100), NodeId(6)), (t(200), NodeId(5))];
        let logs: Vec<&[(SimTime, NodeId)]> = vec![&a];
        let r = churn_report(&logs, t(3600));
        assert_eq!(r.total_changes, 2);
        assert_eq!(r.mean_distinct_parents, 2.0);
        assert!((r.changes_per_node_hour - 2.0).abs() < 1e-9);
        assert_eq!(r.stable_fraction, 0.0);
        assert!(r.mean_parent_entropy > 0.0);
    }

    #[test]
    fn entropy_reflects_balance() {
        // Half the time on each of two parents → normalised entropy 1.
        let a = [(t(0), NodeId(1)), (t(1800), NodeId(2))];
        let logs: Vec<&[(SimTime, NodeId)]> = vec![&a];
        let r = churn_report(&logs, t(3600));
        assert!((r.mean_parent_entropy - 1.0).abs() < 1e-9);

        // 90/10 split → entropy well below 1.
        let b = [(t(0), NodeId(1)), (t(3240), NodeId(2))];
        let logs: Vec<&[(SimTime, NodeId)]> = vec![&b];
        let r2 = churn_report(&logs, t(3600));
        assert!(r2.mean_parent_entropy < 0.6);
    }

    #[test]
    fn empty_logs_skipped() {
        let a: [(SimTime, NodeId); 0] = [];
        let b = [(t(0), NodeId(2)), (t(10), NodeId(3))];
        let logs: Vec<&[(SimTime, NodeId)]> = vec![&a, &b];
        let r = churn_report(&logs, t(3600));
        assert_eq!(r.total_changes, 1);
        // Per-node rate divides by 1 counted node, not 2.
        assert!((r.changes_per_node_hour - 1.0).abs() < 1e-9);
    }
}
