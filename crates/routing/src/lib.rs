//! # dophy-routing
//!
//! CTP-style dynamic collection routing for the Dophy reproduction: the
//! substrate that makes routing paths *dynamic*, which is the entire reason
//! Dophy exists (static-tree tomography assumes paths don't move).
//!
//! * [`table`] — per-neighbor link estimation (beacon-gap PRR + data-driven
//!   ETX, CTP's hybrid estimator);
//! * [`beacon`] — Trickle-paced adaptive beaconing;
//! * [`ctp`] — the embeddable [`ctp::Router`]: dynamic parent selection
//!   with switch hysteresis, plus [`ctp::RoutingOnlyNode`] for tree-only
//!   simulations;
//! * [`dynamics`] — route-churn metrics (the x-axis of the
//!   accuracy-vs-dynamics experiments).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod beacon;
pub mod ctp;
pub mod dynamics;
pub mod table;

pub use beacon::{Trickle, TrickleConfig};
pub use ctp::{BeaconMsg, Router, RouterConfig, RouterStats, RoutingOnlyNode, BEACON_WIRE_BYTES};
pub use dynamics::{churn_report, ChurnReport};
pub use table::{EstimatorConfig, NeighborEntry, NeighborTable};
