//! Estimation-accuracy metrics.
//!
//! Scores a set of per-link loss estimates against ground truth: mean
//! absolute error, RMSE, relative error, per-link error CDF data, and link
//! coverage. Used by every accuracy experiment.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Directed link key (matches `baseline::LinkKey`).
pub type LinkKey = (u32, u32);

/// Accuracy summary for one scheme on one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Links scored (present in both estimate and truth).
    pub scored_links: usize,
    /// Links with ground truth that the scheme produced no estimate for.
    pub missing_links: usize,
    /// Mean absolute error of the loss ratio.
    pub mae: f64,
    /// Root-mean-square error of the loss ratio.
    pub rmse: f64,
    /// Mean relative error `|est - true| / max(true, floor)`.
    pub mean_relative_error: f64,
    /// 90th-percentile absolute error.
    pub p90_abs_error: f64,
    /// Maximum absolute error.
    pub max_abs_error: f64,
    /// Per-link absolute errors (sorted ascending; CDF x-values).
    pub abs_errors: Vec<f64>,
}

/// Floor used in the relative-error denominator (a 1% loss ratio), so
/// near-perfect links don't blow the relative metric up.
pub const REL_ERROR_FLOOR: f64 = 0.01;

/// Scores `estimates` (link → estimated loss ratio) against `truth`
/// (link → true loss ratio). Links present only in `estimates` are ignored
/// (they carried no ground truth); links present only in `truth` are
/// counted as `missing_links`.
pub fn score(estimates: &HashMap<LinkKey, f64>, truth: &HashMap<LinkKey, f64>) -> AccuracyReport {
    let mut abs_errors = Vec::new();
    let mut rel_sum = 0.0;
    let mut missing = 0usize;
    // Accumulate in link order: float sums depend on summation order, and
    // HashMap iteration order varies per process — sorting keeps reports
    // byte-identical across same-seed runs.
    let mut links: Vec<(&LinkKey, &f64)> = truth.iter().collect();
    links.sort_by_key(|(k, _)| **k);
    for (link, &true_loss) in links {
        match estimates.get(link) {
            Some(&est) => {
                let e = (est - true_loss).abs();
                abs_errors.push(e);
                rel_sum += e / true_loss.max(REL_ERROR_FLOOR);
            }
            None => missing += 1,
        }
    }
    abs_errors.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
    let n = abs_errors.len();
    let (mae, rmse, p90, max) = if n == 0 {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        let mae = abs_errors.iter().sum::<f64>() / n as f64;
        let rmse = (abs_errors.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        let p90 = abs_errors[((n - 1) as f64 * 0.9).round() as usize];
        let max = *abs_errors.last().expect("non-empty");
        (mae, rmse, p90, max)
    };
    AccuracyReport {
        scored_links: n,
        missing_links: missing,
        mae,
        rmse,
        mean_relative_error: if n == 0 { 0.0 } else { rel_sum / n as f64 },
        p90_abs_error: p90,
        max_abs_error: max,
        abs_errors,
    }
}

impl AccuracyReport {
    /// Fraction of truth links the scheme covered.
    pub fn coverage(&self) -> f64 {
        let total = self.scored_links + self.missing_links;
        if total == 0 {
            0.0
        } else {
            self.scored_links as f64 / total as f64
        }
    }

    /// Empirical CDF points `(abs_error, fraction_of_links_at_or_below)`.
    pub fn error_cdf(&self) -> Vec<(f64, f64)> {
        let n = self.abs_errors.len();
        self.abs_errors
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[((u32, u32), f64)]) -> HashMap<LinkKey, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_estimates_score_zero() {
        let truth = map(&[((1, 0), 0.1), ((2, 1), 0.3)]);
        let r = score(&truth.clone(), &truth);
        assert_eq!(r.scored_links, 2);
        assert_eq!(r.missing_links, 0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn known_errors() {
        let truth = map(&[((1, 0), 0.2), ((2, 1), 0.4)]);
        let est = map(&[((1, 0), 0.3), ((2, 1), 0.4)]);
        let r = score(&est, &truth);
        assert!((r.mae - 0.05).abs() < 1e-12);
        assert!((r.rmse - (0.005f64).sqrt()).abs() < 1e-12);
        assert!((r.max_abs_error - 0.1).abs() < 1e-12);
        // Relative error: 0.1/0.2 = 0.5 and 0 → mean 0.25.
        assert!((r.mean_relative_error - 0.25).abs() < 1e-12);
    }

    #[test]
    fn missing_links_counted_not_scored() {
        let truth = map(&[((1, 0), 0.2), ((2, 1), 0.4), ((3, 2), 0.1)]);
        let est = map(&[((1, 0), 0.2)]);
        let r = score(&est, &truth);
        assert_eq!(r.scored_links, 1);
        assert_eq!(r.missing_links, 2);
        assert!((r.coverage() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn extra_estimated_links_ignored() {
        let truth = map(&[((1, 0), 0.2)]);
        let est = map(&[((1, 0), 0.2), ((9, 9), 0.9)]);
        let r = score(&est, &truth);
        assert_eq!(r.scored_links, 1);
        assert_eq!(r.mae, 0.0);
    }

    #[test]
    fn relative_error_floor_protects_good_links() {
        // True loss 0.001, estimate 0.011: abs error 0.01, relative uses
        // the 0.01 floor → 1.0 instead of 10.0.
        let truth = map(&[((1, 0), 0.001)]);
        let est = map(&[((1, 0), 0.011)]);
        let r = score(&est, &truth);
        assert!((r.mean_relative_error - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_complete_and_monotone() {
        let truth = map(&[((1, 0), 0.1), ((2, 0), 0.2), ((3, 0), 0.3)]);
        let est = map(&[((1, 0), 0.15), ((2, 0), 0.2), ((3, 0), 0.05)]);
        let r = score(&est, &truth);
        let cdf = r.error_cdf();
        assert_eq!(cdf.len(), 3);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn empty_truth_scores_empty() {
        let r = score(&HashMap::new(), &HashMap::new());
        assert_eq!(r.scored_links, 0);
        assert_eq!(r.coverage(), 0.0);
        assert!(r.error_cdf().is_empty());
    }
}
