//! Per-link loss estimation from retransmission-count observations.
//!
//! Over a link with per-transmission reception probability `p`, the attempt
//! number of the first received copy is geometric: `P(A = a) = (1-p)^(a-1) p`.
//! Two complications make the textbook estimator (`p̂ = n / Σa`) biased:
//!
//! * **Truncation** — exchanges that fail all `R` data attempts are never
//!   observed at all, so samples come from the geometric *conditioned on
//!   `A ≤ R`*. Ignoring this over-estimates `p` on bad links.
//! * **Censoring** — symbol aggregation (Optimization 1) reports some
//!   observations only as a range `lo..=hi`.
//!
//! [`LinkEstimator`] therefore maximises the exact likelihood
//!
//! ```text
//! ℓ(p) = Σ_exact log[(1-p)^(a-1) p] + Σ_range log[(1-p)^(lo-1) - (1-p)^hi]
//!        - n log[1 - (1-p)^R]
//! ```
//!
//! via a grid scan plus golden-section refinement (robust, no derivatives),
//! with a standard error from the numerical observed information. The naive
//! method-of-moments estimator is kept for the ablation comparison.

use dophy_coding::aggregate::AttemptObservation;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A per-link loss estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossEstimate {
    /// Estimated per-transmission reception probability.
    pub p_success: f64,
    /// Estimated loss ratio (`1 - p_success`).
    pub loss: f64,
    /// Observations behind the estimate.
    pub n_samples: u64,
    /// Wald standard error of `p_success` (None when the information is
    /// degenerate, e.g. all samples at the boundary).
    pub stderr: Option<f64>,
}

/// Accumulates attempt observations for one directed link.
///
/// ```
/// use dophy::estimator::LinkEstimator;
/// use dophy_coding::aggregate::AttemptObservation;
///
/// let mut est = LinkEstimator::new();
/// // 80 first-attempt successes, 20 second-attempt, 5 censored "4..=7".
/// for _ in 0..80 { est.observe(AttemptObservation::Exact(1)); }
/// for _ in 0..20 { est.observe(AttemptObservation::Exact(2)); }
/// for _ in 0..5 { est.observe(AttemptObservation::Range { lo: 4, hi: 7 }); }
/// let fit = est.mle(7).unwrap();
/// assert!(fit.loss > 0.1 && fit.loss < 0.35);
/// assert_eq!(fit.n_samples, 105);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkEstimator {
    /// `exact[a]` = count of exact observations with attempt `a`.
    /// Ordered so likelihood sums are evaluated in a fixed order —
    /// float summation order affects the last bits, and byte-identical
    /// same-seed output is a hard guarantee.
    exact: BTreeMap<u16, u64>,
    /// `(lo, hi)` → count of censored observations.
    ranges: BTreeMap<(u16, u16), u64>,
    n: u64,
}

impl LinkEstimator {
    /// Empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, obs: AttemptObservation) {
        match obs {
            AttemptObservation::Exact(a) => *self.exact.entry(a).or_insert(0) += 1,
            AttemptObservation::Range { lo, hi } => *self.ranges.entry((lo, hi)).or_insert(0) += 1,
        }
        self.n += 1;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Log-likelihood of reception probability `p` under retry budget `r`.
    pub fn log_likelihood(&self, p: f64, r: u16) -> f64 {
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        let q = 1.0 - p;
        let lq = q.ln();
        let mut ll = 0.0;
        for (&a, &c) in &self.exact {
            ll += c as f64 * (f64::from(a - 1) * lq + p.ln());
        }
        for (&(lo, hi), &c) in &self.ranges {
            // Σ_{a=lo..hi} q^(a-1) p = q^(lo-1) - q^hi.
            let mass = q.powi(i32::from(lo) - 1) - q.powi(i32::from(hi));
            ll += c as f64 * mass.max(1e-300).ln();
        }
        // Condition on delivery within the budget.
        let trunc = 1.0 - q.powi(i32::from(r));
        ll -= self.n as f64 * trunc.max(1e-300).ln();
        ll
    }

    /// Truncation/censoring-aware MLE. `r` is the MAC retry budget.
    /// Returns `None` with no observations.
    pub fn mle(&self, r: u16) -> Option<LossEstimate> {
        if self.n == 0 {
            return None;
        }
        // Coarse grid to bracket the optimum (the likelihood is unimodal
        // for this family; the grid guards against numerical plateaus).
        const GRID: usize = 64;
        let eval = |p: f64| self.log_likelihood(p, r);
        let mut best_i = 0;
        let mut best_v = f64::NEG_INFINITY;
        let grid_p = |i: usize| 1e-4 + (1.0 - 2e-4) * (i as f64 / (GRID - 1) as f64);
        for i in 0..GRID {
            let v = eval(grid_p(i));
            if v > best_v {
                best_v = v;
                best_i = i;
            }
        }
        let mut lo = grid_p(best_i.saturating_sub(1));
        let mut hi = grid_p((best_i + 1).min(GRID - 1));
        // Golden-section refinement.
        const INV_PHI: f64 = 0.618_033_988_749_894_9;
        let mut x1 = hi - INV_PHI * (hi - lo);
        let mut x2 = lo + INV_PHI * (hi - lo);
        let mut f1 = eval(x1);
        let mut f2 = eval(x2);
        for _ in 0..70 {
            if f1 < f2 {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + INV_PHI * (hi - lo);
                f2 = eval(x2);
            } else {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - INV_PHI * (hi - lo);
                f1 = eval(x1);
            }
        }
        let p_hat = (lo + hi) / 2.0;
        // Observed information via central second difference.
        let h = 1e-5;
        let stderr = if p_hat > 2.0 * h && p_hat < 1.0 - 2.0 * h {
            let d2 = (eval(p_hat + h) - 2.0 * eval(p_hat) + eval(p_hat - h)) / (h * h);
            (d2 < -1e-9).then(|| (-1.0 / d2).sqrt())
        } else {
            None
        };
        Some(LossEstimate {
            p_success: p_hat,
            loss: 1.0 - p_hat,
            n_samples: self.n,
            stderr,
        })
    }

    /// Naive method-of-moments estimator `p̂ = n / Σ a` (midpoints for
    /// ranges), ignoring truncation — the ablation baseline.
    pub fn naive(&self) -> Option<LossEstimate> {
        if self.n == 0 {
            return None;
        }
        let mut sum = 0.0;
        for (&a, &c) in &self.exact {
            sum += f64::from(a) * c as f64;
        }
        for (&(lo, hi), &c) in &self.ranges {
            sum += (f64::from(lo) + f64::from(hi)) / 2.0 * c as f64;
        }
        let p = (self.n as f64 / sum).clamp(0.0, 1.0);
        Some(LossEstimate {
            p_success: p,
            loss: 1.0 - p,
            n_samples: self.n,
            stderr: None,
        })
    }

    /// Empirical distribution of *exact* attempt observations, normalised:
    /// `dist[a-1]` ≈ P(A = a) for `a` in `1..=r`. Censored observations
    /// spread their mass over their range proportionally to the fitted
    /// geometric. Returns `None` without observations.
    pub fn attempt_distribution(&self, r: u16) -> Option<Vec<f64>> {
        if self.n == 0 {
            return None;
        }
        let p = self.mle(r)?.p_success.clamp(1e-6, 1.0 - 1e-6);
        let q = 1.0 - p;
        let mut mass = vec![0.0f64; usize::from(r)];
        for (&a, &c) in &self.exact {
            if a >= 1 && a <= r {
                mass[usize::from(a) - 1] += c as f64;
            }
        }
        for (&(lo, hi), &c) in &self.ranges {
            // Spread by the fitted geometric within [lo, hi].
            let hi = hi.min(r);
            let total: f64 = (lo..=hi).map(|a| q.powi(i32::from(a) - 1) * p).sum();
            if total > 0.0 {
                for a in lo..=hi {
                    let w = q.powi(i32::from(a) - 1) * p / total;
                    mass[usize::from(a) - 1] += c as f64 * w;
                }
            }
        }
        let sum: f64 = mass.iter().sum();
        if sum > 0.0 {
            for m in &mut mass {
                *m /= sum;
            }
        }
        Some(mass)
    }

    /// Expected physical transmissions per delivered packet on this link
    /// under the fitted model (the energy-relevant quantity): the mean of
    /// the truncated geometric at the MLE.
    pub fn expected_transmissions(&self, r: u16) -> Option<f64> {
        let p = self.mle(r)?.p_success.clamp(1e-6, 1.0 - 1e-6);
        let q = 1.0 - p;
        let norm: f64 = 1.0 - q.powi(i32::from(r));
        let mean: f64 = (1..=r)
            .map(|a| f64::from(a) * q.powi(i32::from(a) - 1) * p)
            .sum::<f64>()
            / norm.max(1e-12);
        Some(mean)
    }

    /// Merges another estimator's observations into this one.
    pub fn merge(&mut self, other: &LinkEstimator) {
        for (&a, &c) in &other.exact {
            *self.exact.entry(a).or_insert(0) += c;
        }
        for (&k, &c) in &other.ranges {
            *self.ranges.entry(k).or_insert(0) += c;
        }
        self.n += other.n;
    }
}

/// Network-wide estimator: one [`LinkEstimator`] per directed link.
#[derive(Debug, Clone, Default)]
pub struct NetworkEstimator {
    links: HashMap<(u32, u32), LinkEstimator>,
}

impl NetworkEstimator {
    /// Empty network estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation for link `src → dst`.
    pub fn observe(&mut self, src: u32, dst: u32, obs: AttemptObservation) {
        self.links.entry((src, dst)).or_default().observe(obs);
    }

    /// Number of links with at least one observation.
    pub fn covered_links(&self) -> usize {
        self.links.len()
    }

    /// Per-link estimator access.
    pub fn link(&self, src: u32, dst: u32) -> Option<&LinkEstimator> {
        self.links.get(&(src, dst))
    }

    /// All MLE estimates with at least `min_samples` observations.
    pub fn estimates(&self, r: u16, min_samples: u64) -> Vec<((u32, u32), LossEstimate)> {
        let mut v: Vec<_> = self
            .links
            .iter()
            .filter(|(_, e)| e.count() >= min_samples)
            .filter_map(|(&k, e)| e.mle(r).map(|est| (k, est)))
            .collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// All naive estimates with at least `min_samples` observations.
    pub fn naive_estimates(&self, min_samples: u64) -> Vec<((u32, u32), LossEstimate)> {
        let mut v: Vec<_> = self
            .links
            .iter()
            .filter(|(_, e)| e.count() >= min_samples)
            .filter_map(|(&k, e)| e.naive().map(|est| (k, est)))
            .collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Drops all accumulated observations (windowed estimation).
    pub fn reset(&mut self) {
        self.links.clear();
    }
}

/// The in-band bake-off backend: Dophy's retransmission-count MLE, fed
/// from [`crate::infer::Evidence::Hop`] events and adapted otherwise
/// unchanged.
impl crate::infer::Estimator for NetworkEstimator {
    fn name(&self) -> &'static str {
        "in-band"
    }

    fn observe(&mut self, ev: &crate::infer::Evidence) {
        if let crate::infer::Evidence::Hop {
            sender,
            receiver,
            observation,
            ..
        } = ev
        {
            self.observe(*sender, *receiver, *observation);
        }
    }

    fn snapshot(&self, q: &crate::infer::SnapshotQuery) -> Vec<((u32, u32), LossEstimate)> {
        self.estimates(q.r, q.min_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Draws geometric attempt samples truncated at `r` for success prob
    /// `p`, feeding `est` through an optional censoring cap.
    fn feed_samples(
        est: &mut LinkEstimator,
        p: f64,
        r: u16,
        n: usize,
        cap: Option<u16>,
        seed: u64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fed = 0;
        while fed < n {
            let mut a = 1u16;
            while rng.gen::<f64>() >= p && a < r + 10 {
                a += 1;
            }
            if a > r {
                continue; // truncated: never observed
            }
            fed += 1;
            let obs = match cap {
                Some(c) if a >= c => AttemptObservation::Range { lo: c, hi: r },
                _ => AttemptObservation::Exact(a),
            };
            est.observe(obs);
        }
    }

    #[test]
    fn mle_recovers_p_exact_observations() {
        for &p in &[0.9, 0.7, 0.5, 0.3] {
            let mut e = LinkEstimator::new();
            feed_samples(&mut e, p, 7, 20_000, None, 42);
            let est = e.mle(7).unwrap();
            assert!(
                (est.p_success - p).abs() < 0.02,
                "p={p} est={}",
                est.p_success
            );
        }
    }

    #[test]
    fn mle_handles_censored_observations() {
        for &p in &[0.8, 0.5] {
            let mut e = LinkEstimator::new();
            feed_samples(&mut e, p, 7, 20_000, Some(3), 7);
            let est = e.mle(7).unwrap();
            assert!(
                (est.p_success - p).abs() < 0.03,
                "p={p} est={} (censored at 3)",
                est.p_success
            );
        }
    }

    #[test]
    fn naive_biased_on_lossy_links_mle_not() {
        // p = 0.25, R = 7: heavy truncation. The naive estimator must be
        // optimistic (overestimates p); the MLE corrects it.
        let p = 0.25;
        let mut e = LinkEstimator::new();
        feed_samples(&mut e, p, 7, 30_000, None, 11);
        let naive = e.naive().unwrap().p_success;
        let mle = e.mle(7).unwrap().p_success;
        assert!(naive > p + 0.03, "naive should overestimate: {naive}");
        assert!((mle - p).abs() < 0.03, "mle should be unbiased: {mle}");
    }

    #[test]
    fn extreme_cap_one_still_estimates() {
        // Cap 1: every observation is Range{1, 7} — no information beyond
        // delivery. The MLE cannot identify p and should land somewhere in
        // (0, 1) without crashing.
        let mut e = LinkEstimator::new();
        for _ in 0..100 {
            e.observe(AttemptObservation::Range { lo: 1, hi: 7 });
        }
        let est = e.mle(7).unwrap();
        assert!(est.p_success > 0.0 && est.p_success < 1.0);
    }

    #[test]
    fn stderr_shrinks_with_samples() {
        let mut small = LinkEstimator::new();
        let mut large = LinkEstimator::new();
        feed_samples(&mut small, 0.7, 7, 100, None, 3);
        feed_samples(&mut large, 0.7, 7, 10_000, None, 3);
        let se_small = small.mle(7).unwrap().stderr.unwrap();
        let se_large = large.mle(7).unwrap().stderr.unwrap();
        assert!(
            se_large < se_small / 5.0,
            "100x samples should shrink stderr ~10x: {se_small} vs {se_large}"
        );
    }

    #[test]
    fn empty_estimator_returns_none() {
        let e = LinkEstimator::new();
        assert!(e.mle(7).is_none());
        assert!(e.naive().is_none());
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn all_first_attempt_pushes_p_high() {
        let mut e = LinkEstimator::new();
        for _ in 0..1000 {
            e.observe(AttemptObservation::Exact(1));
        }
        let est = e.mle(7).unwrap();
        assert!(est.p_success > 0.99, "got {}", est.p_success);
        assert!(est.loss < 0.01);
    }

    #[test]
    fn merge_equals_combined_feed() {
        let mut a = LinkEstimator::new();
        let mut b = LinkEstimator::new();
        let mut whole = LinkEstimator::new();
        feed_samples(&mut a, 0.6, 7, 500, Some(4), 1);
        feed_samples(&mut b, 0.6, 7, 700, None, 2);
        feed_samples(&mut whole, 0.6, 7, 500, Some(4), 1);
        feed_samples(&mut whole, 0.6, 7, 700, None, 2);
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn network_estimator_coverage_and_filtering() {
        let mut n = NetworkEstimator::new();
        n.observe(1, 0, AttemptObservation::Exact(1));
        n.observe(1, 0, AttemptObservation::Exact(2));
        n.observe(2, 1, AttemptObservation::Exact(1));
        assert_eq!(n.covered_links(), 2);
        assert_eq!(n.estimates(7, 2).len(), 1, "min_samples filter");
        assert_eq!(n.estimates(7, 1).len(), 2);
        assert_eq!(n.naive_estimates(1).len(), 2);
        n.reset();
        assert_eq!(n.covered_links(), 0);
    }

    #[test]
    fn attempt_distribution_matches_geometric() {
        let mut e = LinkEstimator::new();
        feed_samples(&mut e, 0.7, 7, 20_000, None, 21);
        let dist = e.attempt_distribution(7).unwrap();
        assert_eq!(dist.len(), 7);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // P(A=1) ≈ 0.7 / (1 - 0.3^7) ≈ 0.70.
        assert!((dist[0] - 0.70).abs() < 0.02, "P(1) = {}", dist[0]);
        assert!(
            dist[1] > dist[2] && dist[0] > dist[1],
            "monotone decreasing"
        );
    }

    #[test]
    fn attempt_distribution_spreads_censored_mass() {
        let mut e = LinkEstimator::new();
        for _ in 0..700 {
            e.observe(AttemptObservation::Exact(1));
        }
        for _ in 0..100 {
            e.observe(AttemptObservation::Range { lo: 3, hi: 7 });
        }
        let dist = e.attempt_distribution(7).unwrap();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Censored mass lands inside [3, 7], weighted toward 3.
        assert!(dist[2] > dist[4]);
        assert!(dist[2] > 0.0 && dist[6] > 0.0);
        assert_eq!(dist[1], 0.0, "no mass invented at attempt 2");
    }

    #[test]
    fn expected_transmissions_tracks_loss() {
        let mut good = LinkEstimator::new();
        feed_samples(&mut good, 0.9, 7, 5_000, None, 5);
        let mut bad = LinkEstimator::new();
        feed_samples(&mut bad, 0.4, 7, 5_000, None, 5);
        let g = good.expected_transmissions(7).unwrap();
        let b = bad.expected_transmissions(7).unwrap();
        assert!((g - 1.11).abs() < 0.05, "good link ≈ 1/0.9: {g}");
        assert!(b > 2.0 && b < 2.6, "lossy link well above: {b}");
    }

    #[test]
    fn likelihood_is_finite_at_extremes() {
        let mut e = LinkEstimator::new();
        e.observe(AttemptObservation::Exact(7));
        e.observe(AttemptObservation::Range { lo: 3, hi: 7 });
        for p in [1e-6, 0.5, 1.0 - 1e-6] {
            let ll = e.log_likelihood(p, 7);
            assert!(ll.is_finite(), "ll({p}) = {ll}");
        }
    }
}
