//! MINC-style multicast MLE, generalized to Dophy's dynamic-parent DAG.
//!
//! Cáceres, Duffield, Horowitz & Towsley ("Multicast-based inference of
//! network-internal loss characteristics", IEEE Trans. IT 1999) infer
//! per-link loss on a multicast tree from end-to-end probe outcomes: for
//! each node `k` they maintain `γ_k` — the empirical probability that a
//! probe is seen somewhere in `k`'s subtree — updated incrementally per
//! probe (`γ += (y − γ)/n`), and recover `A_k` — the root→`k` path
//! survival — by a recursion over the tree; the per-link survival is then
//! `σ_k = A_k / A_parent(k)`.
//!
//! A collection network is the *dual* picture: traffic flows leaf→sink
//! instead of root→leaves, and — crucially — **every node originates its
//! own traffic**, so every interior node is a measurement point. Under the
//! dual the MINC quantities become:
//!
//! * `γ_k` — the end-to-end delivery ratio of packets originated at `k`
//!   (directly observed, no subtree OR needed);
//! * `A_p` — the survival of `p`'s path to the sink (`A_sink = 1`);
//! * link survival `σ_{k,p} = γ_{k,p} / A_p` where `γ_{k,p}` is `k`'s
//!   delivery ratio *restricted to windows in which `p` was `k`'s parent*.
//!
//! The dynamic-parent generalization lives in that restriction: Dophy's
//! CTP tree re-parents continuously, so there is no static tree to recurse
//! over. Instead each [`Evidence::PathOutcome`] carries the parent path
//! snapshotted from CTP routing state at the start of its attribution
//! window, and outcomes accumulate per *(child, parent)* edge of the
//! observed DAG — per-edge γ — while `A_p` is taken from `p`'s own
//! cumulative γ (its packets measure its path directly). For a parent that
//! never originated traffic, `A_p` falls back to the MINC-style
//! evidence-from-below aggregate `Σ sent·γ_{k,p} / Σ sent` over its
//! observed children — a lower bound on `A_p` (it still contains the
//! child-to-`p` hop), used only when nothing better exists.
//!
//! The remaining approximation, documented rather than hidden: `γ_{k,p}`
//! conditions on the window's parent snapshot, but `A_p` is `p`'s
//! *run-cumulative* path survival, so windows where `p`'s own route
//! differed are mixed. With per-window γ on both sides the estimator
//! would be exact per window but far noisier; the cumulative form is the
//! standard bias/variance trade.
//!
//! Everything is deterministic: `BTreeMap` state, closed-form batched
//! gamma updates, no iteration-order dependence.

use super::{Estimator, Evidence, SnapshotQuery};
use crate::baseline::survival_to_transmission_loss;
use crate::estimator::LossEstimate;
use std::collections::BTreeMap;

/// Survival estimates are clamped into `[EPS, 1]` before ratios — a parent
/// with an apparently dead path must not blow up the division.
const EPS: f64 = 1e-6;

/// Incrementally maintained outcome aggregate: MINC's `γ` plus the raw
/// tallies behind it.
#[derive(Debug, Clone, Copy, Default)]
struct OutcomeAgg {
    /// Packets sent (probe count `n` in MINC terms).
    sent: u64,
    /// Packets delivered end-to-end.
    delivered: u64,
    /// Incremental delivery-ratio estimate.
    gamma: f64,
}

impl OutcomeAgg {
    /// Folds one window's outcomes in. This is the batched form of MINC's
    /// per-probe `γ += (y − γ)/n`: a window of `sent` Bernoulli outcomes
    /// with mean `m` advances `γ += (m − γ)·sent/n_total`, which is
    /// algebraically the same running mean and independent of any
    /// within-window ordering.
    fn push(&mut self, sent: u64, delivered: u64) {
        if sent == 0 {
            return;
        }
        let delivered = delivered.min(sent);
        self.sent += sent;
        self.delivered += delivered;
        let m = delivered as f64 / sent as f64;
        self.gamma += (m - self.gamma) * (sent as f64 / self.sent as f64);
    }
}

/// The MINC backend. Consumes [`Evidence::PathOutcome`] only; hop
/// evidence (Dophy's in-band channel) is deliberately invisible to it —
/// that is the whole point of the bake-off.
#[derive(Debug, Clone, Default)]
pub struct MincEstimator {
    /// Per-(child, parent) aggregates: `γ_{k,p}`, conditioned on the
    /// window parent snapshot.
    links: BTreeMap<(u32, u32), OutcomeAgg>,
    /// Per-origin aggregates: `γ_k`, the node's cumulative delivery ratio.
    nodes: BTreeMap<u32, OutcomeAgg>,
    /// The sink (root of the dual tree), learned from path tails.
    sink: Option<u32>,
}

impl MincEstimator {
    /// Creates an empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Path-survival estimates `A_p` for every node that can serve as a
    /// parent, resolved as described in the module docs.
    fn path_survival(&self) -> BTreeMap<u32, f64> {
        let mut a = BTreeMap::new();
        if let Some(sink) = self.sink {
            a.insert(sink, 1.0);
        }
        // Direct estimates: every node that originated traffic measures
        // its own path.
        for (&k, agg) in &self.nodes {
            if agg.sent > 0 {
                a.entry(k).or_insert_with(|| agg.gamma.clamp(EPS, 1.0));
            }
        }
        // Evidence-from-below fallback for silent parents.
        let silent: Vec<u32> = self
            .links
            .keys()
            .map(|&(_, p)| p)
            .filter(|p| !a.contains_key(p))
            .collect();
        for p in silent {
            let (mut w, mut wg) = (0.0, 0.0);
            for (&(_, q), agg) in &self.links {
                if q == p && agg.sent > 0 {
                    w += agg.sent as f64;
                    wg += agg.sent as f64 * agg.gamma;
                }
            }
            if w > 0.0 {
                a.insert(p, (wg / w).clamp(EPS, 1.0));
            }
        }
        a
    }
}

impl Estimator for MincEstimator {
    fn name(&self) -> &'static str {
        "minc"
    }

    fn observe(&mut self, ev: &Evidence) {
        let Evidence::PathOutcome {
            origin,
            path,
            sent,
            delivered,
            ..
        } = ev
        else {
            return;
        };
        let Some(&(child, parent)) = path.first() else {
            return;
        };
        // The first link of the snapshot must be the origin's own hop;
        // anything else is a malformed outcome and is ignored.
        if child != *origin {
            return;
        }
        self.sink = path.last().map(|&(_, dst)| dst).or(self.sink);
        self.links
            .entry((child, parent))
            .or_default()
            .push(*sent, *delivered);
        self.nodes
            .entry(*origin)
            .or_default()
            .push(*sent, *delivered);
    }

    fn snapshot(&self, q: &SnapshotQuery) -> Vec<((u32, u32), LossEstimate)> {
        let a = self.path_survival();
        let mut out = Vec::new();
        for (&(k, p), agg) in &self.links {
            if agg.sent < q.min_samples {
                continue;
            }
            let Some(&a_p) = a.get(&p) else { continue };
            let sigma = (agg.gamma / a_p).clamp(EPS, 1.0);
            let loss = survival_to_transmission_loss(sigma, q.r);
            out.push((
                (k, p),
                LossEstimate {
                    p_success: 1.0 - loss,
                    loss,
                    n_samples: agg.sent,
                    stderr: None,
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_sim::SimTime;

    fn outcome(origin: u32, path: &[(u32, u32)], sent: u64, delivered: u64) -> Evidence {
        Evidence::PathOutcome {
            at: SimTime::from_micros(0),
            origin,
            path: path.to_vec(),
            sent,
            delivered,
        }
    }

    /// End-to-end survival of a chain with the given per-hop survivals.
    fn chain_delivery(hops: &[f64], sent: u64) -> u64 {
        let surv: f64 = hops.iter().product();
        (sent as f64 * surv).round() as u64
    }

    #[test]
    fn recovers_per_link_survival_on_a_static_chain() {
        // 3 → 2 → 1 → 0 with per-hop *end-to-end* survival (post-ARQ)
        // 0.9, 0.95, 1.0. Every node originates traffic, so the dual MINC
        // recursion has direct A estimates everywhere.
        let mut est = MincEstimator::new();
        let hops = [0.9, 0.95, 1.0];
        for _ in 0..50 {
            est.observe(&outcome(
                3,
                &[(3, 2), (2, 1), (1, 0)],
                20,
                chain_delivery(&hops, 20),
            ));
            est.observe(&outcome(
                2,
                &[(2, 1), (1, 0)],
                20,
                chain_delivery(&hops[1..], 20),
            ));
            est.observe(&outcome(1, &[(1, 0)], 20, chain_delivery(&hops[2..], 20)));
        }
        // r=1: per-transmission loss == 1 - link survival.
        let q = SnapshotQuery {
            now: SimTime::from_micros(0),
            r: 1,
            min_samples: 10,
        };
        let snap: BTreeMap<_, _> = est.snapshot(&q).into_iter().collect();
        assert!(
            (snap[&(3, 2)].loss - 0.1).abs() < 0.02,
            "{:?}",
            snap[&(3, 2)]
        );
        assert!(
            (snap[&(2, 1)].loss - 0.05).abs() < 0.02,
            "{:?}",
            snap[&(2, 1)]
        );
        assert!(snap[&(1, 0)].loss < 0.02, "{:?}", snap[&(1, 0)]);
    }

    #[test]
    fn attributes_across_a_parent_change() {
        // Node 3 re-parents from 2 to 1 halfway through; each edge's γ is
        // conditioned on its own windows, so both estimates are clean.
        let mut est = MincEstimator::new();
        for _ in 0..40 {
            est.observe(&outcome(
                3,
                &[(3, 2), (2, 0)],
                10,
                chain_delivery(&[0.8, 1.0], 10),
            ));
            est.observe(&outcome(2, &[(2, 0)], 10, 10));
            est.observe(&outcome(1, &[(1, 0)], 10, 10));
        }
        for _ in 0..40 {
            est.observe(&outcome(
                3,
                &[(3, 1), (1, 0)],
                10,
                chain_delivery(&[0.6, 1.0], 10),
            ));
            est.observe(&outcome(2, &[(2, 0)], 10, 10));
            est.observe(&outcome(1, &[(1, 0)], 10, 10));
        }
        let q = SnapshotQuery {
            now: SimTime::from_micros(0),
            r: 1,
            min_samples: 10,
        };
        let snap: BTreeMap<_, _> = est.snapshot(&q).into_iter().collect();
        assert!(
            (snap[&(3, 2)].loss - 0.2).abs() < 0.03,
            "{:?}",
            snap[&(3, 2)]
        );
        assert!(
            (snap[&(3, 1)].loss - 0.4).abs() < 0.03,
            "{:?}",
            snap[&(3, 1)]
        );
    }

    #[test]
    fn silent_parent_uses_evidence_from_below() {
        // Node 2 never originates traffic: A_2 must come from its
        // children's outcomes, and the estimate stays finite and sane.
        let mut est = MincEstimator::new();
        for _ in 0..30 {
            est.observe(&outcome(3, &[(3, 2), (2, 0)], 10, 9));
        }
        let q = SnapshotQuery {
            now: SimTime::from_micros(0),
            r: 1,
            min_samples: 10,
        };
        let snap = est.snapshot(&q);
        assert_eq!(snap.len(), 1);
        let (link, e) = snap[0];
        assert_eq!(link, (3, 2));
        assert!(e.loss >= 0.0 && e.loss < 0.2, "{e:?}");
    }

    #[test]
    fn min_samples_filters_thin_edges() {
        let mut est = MincEstimator::new();
        est.observe(&outcome(1, &[(1, 0)], 3, 3));
        let thin = SnapshotQuery {
            now: SimTime::from_micros(0),
            r: 1,
            min_samples: 10,
        };
        assert!(est.snapshot(&thin).is_empty());
    }
}
