//! Sparse recovery of per-link loss from end-to-end path outcomes.
//!
//! Classic tomography is under-determined: far fewer observed paths than
//! links. The sparse-recovery literature (e.g. "Link Delay Estimation
//! Using Sparse Recovery for Dynamic Network Tomography") resolves the
//! ambiguity with the physical prior that *most links are fine* — the
//! per-link loss vector is sparse — and solves an L1-regularized least
//! squares over the routing matrix.
//!
//! Formulation here, in log-transmission space:
//!
//! * Each observed path outcome gives a row: over one attribution window,
//!   `sent` packets traversed link set `r` and a fraction `DR` arrived,
//!   so `ln DR ≈ Σ_{l∈r} ln σ_l` where `σ_l` is link `l`'s end-to-end
//!   (post-ARQ) survival. Substituting `u_l = −ln σ_l ≥ 0`:
//!
//!   ```text
//!   minimize  ½ Σ_rows w_r (y_r + Σ_{l∈r} u_l)²  +  λ Σ_l u_l
//!   subject to u ≥ 0,     with y_r = ln DR_r, w_r = sent_r
//!   ```
//!
//!   On the nonnegative orthant the L1 penalty is linear, so the proximal
//!   step is a shift-and-project: `u ← max(0, v − s·(∇f + λ))`.
//! * Solved by FISTA (accelerated ISTA) with the step size `1/L` taken
//!   from a fixed-iteration power-iteration bound on `‖AᵀWA‖`, and
//!   `λ = λ_scale · max_l |∇f(0)_l|` so the regularization is scale-free
//!   in traffic volume.
//!
//! Rows are aggregated by exact link sequence (`BTreeMap` keyed on the
//! path), so state stays bounded by the number of *distinct routes* seen,
//! not the number of windows. Everything — row order, link order, power
//! iteration, FISTA — runs a fixed number of exactly ordered float
//! operations: deterministic by construction, no RNG anywhere.

use super::{Estimator, Evidence, SnapshotQuery};
use crate::baseline::survival_to_transmission_loss;
use crate::estimator::LossEstimate;
use std::collections::BTreeMap;

/// Delivery ratios are floored before the log so a fully black-holed
/// window contributes a large-but-finite attenuation (`ln 1e-3 ≈ −6.9`).
const DR_FLOOR: f64 = 1e-3;

/// Tuning for the sparse solver.
#[derive(Debug, Clone, Copy)]
pub struct SparseConfig {
    /// Regularization as a fraction of `max_l |∇f(0)_l|` (at 1.0 the
    /// all-zero solution is optimal; smaller keeps more links active).
    pub lambda_scale: f64,
    /// FISTA iteration budget.
    pub max_iters: usize,
    /// Early-exit threshold on the max coordinate change (deterministic:
    /// a pure function of the data).
    pub tol: f64,
}

impl Default for SparseConfig {
    fn default() -> Self {
        Self {
            lambda_scale: 0.02,
            max_iters: 250,
            tol: 1e-10,
        }
    }
}

/// The sparse-recovery backend. Consumes [`Evidence::PathOutcome`] only.
#[derive(Debug, Clone)]
pub struct SparseL1Estimator {
    cfg: SparseConfig,
    /// Outcome tallies keyed by the exact route: path → (sent, delivered).
    rows: BTreeMap<Vec<(u32, u32)>, (u64, u64)>,
}

impl SparseL1Estimator {
    /// Creates an empty backend.
    pub fn new(cfg: SparseConfig) -> Self {
        Self {
            cfg,
            rows: BTreeMap::new(),
        }
    }
}

/// One least-squares row: link indices (with multiplicity, for looping
/// snapshots), weight, and log delivery ratio.
struct Row {
    idx: Vec<usize>,
    w: f64,
    y: f64,
}

impl Estimator for SparseL1Estimator {
    fn name(&self) -> &'static str {
        "sparse-l1"
    }

    fn observe(&mut self, ev: &Evidence) {
        let Evidence::PathOutcome {
            path,
            sent,
            delivered,
            ..
        } = ev
        else {
            return;
        };
        if path.is_empty() || *sent == 0 {
            return;
        }
        let entry = self.rows.entry(path.clone()).or_insert((0, 0));
        entry.0 += sent;
        entry.1 += (*delivered).min(*sent);
    }

    fn snapshot(&self, q: &SnapshotQuery) -> Vec<((u32, u32), LossEstimate)> {
        // Link universe, sorted — the solver's coordinate order.
        let mut links: Vec<(u32, u32)> = self.rows.keys().flatten().copied().collect();
        links.sort_unstable();
        links.dedup();
        if links.is_empty() {
            return Vec::new();
        }
        let index: BTreeMap<(u32, u32), usize> =
            links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let rows: Vec<Row> = self
            .rows
            .iter()
            .map(|(path, &(sent, delivered))| Row {
                idx: path.iter().map(|l| index[l]).collect(),
                w: sent as f64,
                y: ((delivered as f64 / sent as f64).clamp(DR_FLOOR, 1.0)).ln(),
            })
            .collect();
        let m = links.len();

        // Gradient of the smooth part at `u`:
        // ∇f_l = Σ_{rows r ∋ l} w_r (y_r + Σ_{k∈r} u_k), per multiplicity.
        let grad = |u: &[f64], g: &mut [f64]| {
            g.iter_mut().for_each(|v| *v = 0.0);
            for row in &rows {
                let resid = row.y + row.idx.iter().map(|&i| u[i]).sum::<f64>();
                for &i in &row.idx {
                    g[i] += row.w * resid;
                }
            }
        };

        // λ from the gradient at zero; if the data are all clean
        // (every y = 0) the zero vector is already optimal.
        let mut g0 = vec![0.0; m];
        grad(&vec![0.0; m], &mut g0);
        let gmax = g0.iter().fold(0.0f64, |acc, g| acc.max(g.abs()));
        if gmax == 0.0 {
            return self.report(&links, &vec![0.0; m], q);
        }
        let lambda = self.cfg.lambda_scale * gmax;

        // Lipschitz bound for the step size: ‖AᵀWA‖₂ by power iteration
        // from a fixed all-ones start (deterministic; 30 rounds is plenty
        // at these dimensions).
        let mut v = vec![1.0 / (m as f64).sqrt(); m];
        let mut av = vec![0.0; m];
        let mut lip = 1.0f64;
        for _ in 0..30 {
            av.iter_mut().for_each(|x| *x = 0.0);
            for row in &rows {
                let dot: f64 = row.idx.iter().map(|&i| v[i]).sum();
                for &i in &row.idx {
                    av[i] += row.w * dot;
                }
            }
            let norm = av.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                break;
            }
            lip = norm;
            v.iter_mut().zip(&av).for_each(|(x, &a)| *x = a / norm);
        }
        let step = 1.0 / (lip * 1.01);

        // FISTA with shift-and-project prox.
        let mut u = vec![0.0; m];
        let mut z = vec![0.0; m];
        let mut g = vec![0.0; m];
        let mut t = 1.0f64;
        for _ in 0..self.cfg.max_iters {
            grad(&z, &mut g);
            let mut delta = 0.0f64;
            let mut next = vec![0.0; m];
            for i in 0..m {
                next[i] = (z[i] - step * (g[i] + lambda)).max(0.0);
                delta = delta.max((next[i] - u[i]).abs());
            }
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            for i in 0..m {
                z[i] = next[i] + ((t - 1.0) / t_next) * (next[i] - u[i]);
            }
            u = next;
            t = t_next;
            if delta < self.cfg.tol {
                break;
            }
        }
        self.report(&links, &u, q)
    }
}

impl SparseL1Estimator {
    /// Converts the solved attenuation vector into per-link estimates.
    fn report(
        &self,
        links: &[(u32, u32)],
        u: &[f64],
        q: &SnapshotQuery,
    ) -> Vec<((u32, u32), LossEstimate)> {
        // Per-link sample support: packets on rows containing the link.
        let mut support = vec![0u64; links.len()];
        let index: BTreeMap<(u32, u32), usize> =
            links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        for (path, &(sent, _)) in &self.rows {
            let mut seen: Vec<usize> = path.iter().map(|l| index[l]).collect();
            seen.sort_unstable();
            seen.dedup();
            for i in seen {
                support[i] += sent;
            }
        }
        links
            .iter()
            .zip(u)
            .zip(support)
            .filter(|(_, n)| *n >= q.min_samples)
            .map(|((&link, &u_l), n)| {
                let sigma = (-u_l).exp().clamp(0.0, 1.0);
                let loss = survival_to_transmission_loss(sigma, q.r);
                (
                    link,
                    LossEstimate {
                        p_success: 1.0 - loss,
                        loss,
                        n_samples: n,
                        stderr: None,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_sim::SimTime;

    fn outcome(origin: u32, path: &[(u32, u32)], sent: u64, delivered: u64) -> Evidence {
        Evidence::PathOutcome {
            at: SimTime::from_micros(0),
            origin,
            path: path.to_vec(),
            sent,
            delivered,
        }
    }

    fn q(r: u16) -> SnapshotQuery {
        SnapshotQuery {
            now: SimTime::from_micros(0),
            r,
            min_samples: 10,
        }
    }

    #[test]
    fn recovers_a_single_lossy_link_and_keeps_the_rest_sparse() {
        // Star-over-chain: 3→2→0 and 4→2→0 share the clean 2→0 link;
        // only 3→2 is lossy. L1 should localize the loss to 3→2 and
        // report (exact) zeros elsewhere.
        let mut est = SparseL1Estimator::new(SparseConfig::default());
        for _ in 0..60 {
            est.observe(&outcome(3, &[(3, 2), (2, 0)], 20, 15));
            est.observe(&outcome(4, &[(4, 2), (2, 0)], 20, 20));
            est.observe(&outcome(2, &[(2, 0)], 20, 20));
        }
        let snap: BTreeMap<_, _> = est.snapshot(&q(1)).into_iter().collect();
        assert!(
            (snap[&(3, 2)].loss - 0.25).abs() < 0.05,
            "{:?}",
            snap[&(3, 2)]
        );
        assert_eq!(snap[&(2, 0)].loss, 0.0, "{:?}", snap[&(2, 0)]);
        assert_eq!(snap[&(4, 2)].loss, 0.0, "{:?}", snap[&(4, 2)]);
    }

    #[test]
    fn splits_loss_between_links_when_paths_disambiguate() {
        // Two lossy links measured through overlapping paths: the joint
        // solve must separate them instead of lumping the product onto
        // one hop.
        let mut est = SparseL1Estimator::new(SparseConfig::default());
        for _ in 0..60 {
            // 2→0 survives 0.9; 3→2→0 survives 0.8·0.9.
            est.observe(&outcome(2, &[(2, 0)], 20, 18));
            est.observe(&outcome(3, &[(3, 2), (2, 0)], 20, 14));
        }
        let snap: BTreeMap<_, _> = est.snapshot(&q(1)).into_iter().collect();
        assert!(
            (snap[&(2, 0)].loss - 0.1).abs() < 0.05,
            "{:?}",
            snap[&(2, 0)]
        );
        assert!(
            (snap[&(3, 2)].loss - 0.2).abs() < 0.06,
            "{:?}",
            snap[&(3, 2)]
        );
    }

    #[test]
    fn snapshot_is_deterministic() {
        let build = || {
            let mut est = SparseL1Estimator::new(SparseConfig::default());
            for i in 0..40u64 {
                est.observe(&outcome(3, &[(3, 2), (2, 0)], 10 + i % 3, 8));
                est.observe(&outcome(2, &[(2, 0)], 10, 9));
            }
            est.snapshot(&q(7))
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn clean_network_reports_zero_loss() {
        let mut est = SparseL1Estimator::new(SparseConfig::default());
        for _ in 0..20 {
            est.observe(&outcome(1, &[(1, 0)], 20, 20));
        }
        let snap = est.snapshot(&q(7));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.loss, 0.0);
    }
}
