//! Pluggable inference backends behind one [`Estimator`] trait.
//!
//! Dophy's headline claim is that in-band retransmission counts beat
//! classic end-to-end loss tomography. Testing that claim requires running
//! *different* inference algorithms over the *same* run, which is only
//! possible if inference is cleanly separated from the protocol. This
//! module owns that separation:
//!
//! * [`Evidence`] — the typed event stream every backend consumes. Two
//!   kinds exist: [`Evidence::Hop`] (a per-hop retransmission-count
//!   observation decoded from a delivered packet's measurement header —
//!   Dophy's in-band channel) and [`Evidence::PathOutcome`] (an end-to-end
//!   delivery tally over one attribution window, against the CTP parent
//!   path snapshotted at window start — the only thing classic tomography
//!   gets to see).
//! * [`Estimator`] — `observe`-style incremental ingestion plus
//!   `snapshot() -> per-link LossEstimate map`. Backends never touch the
//!   engine, the protocol, or each other: they are pure functions of the
//!   evidence stream, which is what keeps every replay/instrumentation/
//!   shard byte-identity guarantee valid for them.
//! * [`Inference`] — the sink's backend stack. The protocol layer holds
//!   one of these and calls [`Inference::observe`]; it never constructs a
//!   concrete estimator.
//!
//! Three bake-off backends implement the trait (plus the windowed and
//! Bayesian estimators, which predate it):
//!
//! | backend | evidence | algorithm |
//! |---|---|---|
//! | in-band ([`crate::estimator::NetworkEstimator`]) | `Hop` | truncation/censoring-corrected per-link MLE |
//! | MINC ([`MincEstimator`]) | `PathOutcome` | Cáceres et al. multicast MLE, generalized to the dynamic-parent DAG |
//! | sparse-L1 ([`SparseL1Estimator`]) | `PathOutcome` | FISTA sparse recovery of per-link log-transmission |
//!
//! All backends are deterministic: fixed iteration orders (`BTreeMap`
//! state), fixed iteration counts, no RNG.

pub mod minc;
pub mod sparse;

pub use minc::MincEstimator;
pub use sparse::{SparseConfig, SparseL1Estimator};

use crate::bayes::{BayesNetworkEstimator, BetaPrior};
use crate::estimator::{LossEstimate, NetworkEstimator};
use crate::tracking::{WindowConfig, WindowedNetworkEstimator};
use dophy_coding::aggregate::AttemptObservation;
use dophy_sim::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One typed evidence event. The stream of these is the *entire* interface
/// between a run and its inference backends — serialize it and you can
/// replay inference offline, bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Evidence {
    /// A per-hop observation decoded from a delivered packet: `sender`
    /// transmitted to `receiver` and the first received copy carried this
    /// attempt count (exact or range-censored). Dophy's in-band channel.
    Hop {
        /// Sink-side decode time.
        at: SimTime,
        /// Transmitting node.
        sender: u32,
        /// Receiving node.
        receiver: u32,
        /// The retransmission-count observation.
        observation: AttemptObservation,
    },
    /// An end-to-end outcome: over one attribution window ending at `at`,
    /// `origin` injected `sent` packets along `path` (directed link list
    /// origin→sink, snapshotted from CTP routing state at window start)
    /// and `delivered` of them reached the sink. What classic tomography
    /// sees.
    PathOutcome {
        /// Window end time.
        at: SimTime,
        /// Originating node.
        origin: u32,
        /// Parent path snapshot, `(child, parent)` per hop.
        path: Vec<(u32, u32)>,
        /// Packets injected in the window.
        sent: u64,
        /// Packets attributed as delivered (carry-corrected, `≤ sent`).
        delivered: u64,
    },
}

/// Parameters of a snapshot: estimates are a function of the evidence seen
/// so far *and* of when/how you ask.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotQuery {
    /// Query time (the windowed backend ages buckets against this).
    pub now: SimTime,
    /// MAC retry budget (attempt-distribution support / end-to-end
    /// survival → per-transmission loss conversion).
    pub r: u16,
    /// Minimum samples for a link to be reported.
    pub min_samples: u64,
}

/// The inference abstraction: incremental ingestion of typed evidence,
/// per-link loss snapshots on demand.
///
/// Implementations must be deterministic — same evidence sequence, same
/// query, bit-identical snapshot — and must ignore evidence kinds they
/// don't consume rather than erroring, so one fan-out feeds every backend.
pub trait Estimator: Send {
    /// Stable backend name (CLI value, figure series label).
    fn name(&self) -> &'static str;

    /// Ingests one evidence event.
    fn observe(&mut self, ev: &Evidence);

    /// Current per-link loss estimates, sorted by link key.
    fn snapshot(&self, q: &SnapshotQuery) -> Vec<((u32, u32), LossEstimate)>;
}

/// Runtime backend selector (`dophy-run --estimator ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Dophy's in-band retransmission-count MLE.
    InBand,
    /// Multicast-MLE dual on end-to-end outcomes.
    Minc,
    /// L1 sparse recovery on end-to-end outcomes.
    SparseL1,
}

impl EstimatorKind {
    /// Every backend, in bake-off order.
    pub const ALL: [EstimatorKind; 3] = [
        EstimatorKind::InBand,
        EstimatorKind::Minc,
        EstimatorKind::SparseL1,
    ];

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EstimatorKind::InBand => "in-band",
            EstimatorKind::Minc => "minc",
            EstimatorKind::SparseL1 => "sparse-l1",
        }
    }
}

impl std::str::FromStr for EstimatorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "in-band" => Ok(EstimatorKind::InBand),
            "minc" => Ok(EstimatorKind::Minc),
            "sparse-l1" => Ok(EstimatorKind::SparseL1),
            other => Err(format!(
                "unknown estimator '{other}' (expected in-band|minc|sparse-l1)"
            )),
        }
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The sink's inference stack: every backend, fed from one evidence
/// stream. Owning construction here is what lets the protocol layer stay
/// estimator-agnostic.
///
/// All backends always run — the end-to-end ones keep tiny aggregate state
/// and defer their solve to snapshot time, so this costs nothing on the
/// hot path — which is how one cached run can serve the whole bake-off.
pub struct Inference {
    /// In-band truncation/censoring-corrected MLE (plus its naive
    /// method-of-moments readout).
    pub in_band: NetworkEstimator,
    /// Time-resolved in-band estimator (tracks drifting links).
    pub windowed: WindowedNetworkEstimator,
    /// Conjugate Bayesian in-band estimator (prior ablation).
    pub bayes: BayesNetworkEstimator,
    /// Multicast-MLE dual over end-to-end outcomes.
    pub minc: MincEstimator,
    /// Sparse-recovery backend over end-to-end outcomes.
    pub sparse: SparseL1Estimator,
    /// Attached auxiliary backends (test instrumentation, e.g.
    /// [`EvidenceLog`]); observed after the built-ins, never snapshotted
    /// by the harness.
    extra: Vec<Box<dyn Estimator>>,
}

impl Inference {
    /// Builds the full stack. `tracking` configures the windowed backend;
    /// everything else uses its crate defaults.
    pub fn new(tracking: WindowConfig) -> Self {
        Self {
            in_band: NetworkEstimator::new(),
            windowed: WindowedNetworkEstimator::new(tracking),
            bayes: BayesNetworkEstimator::new(BetaPrior::default()),
            minc: MincEstimator::new(),
            sparse: SparseL1Estimator::new(SparseConfig::default()),
            extra: Vec::new(),
        }
    }

    /// Fans one evidence event out to every backend, in a fixed order.
    /// The in-band trio goes first and in its historical sequence
    /// (MLE, windowed, Bayes), so their float state is bit-identical to
    /// the pre-trait sink.
    pub fn observe(&mut self, ev: &Evidence) {
        Estimator::observe(&mut self.in_band, ev);
        Estimator::observe(&mut self.windowed, ev);
        Estimator::observe(&mut self.bayes, ev);
        Estimator::observe(&mut self.minc, ev);
        Estimator::observe(&mut self.sparse, ev);
        for e in &mut self.extra {
            e.observe(ev);
        }
    }

    /// The bake-off backend for `kind`.
    pub fn backend(&self, kind: EstimatorKind) -> &dyn Estimator {
        match kind {
            EstimatorKind::InBand => &self.in_band,
            EstimatorKind::Minc => &self.minc,
            EstimatorKind::SparseL1 => &self.sparse,
        }
    }

    /// Attaches an auxiliary backend to the fan-out. It sees every
    /// subsequent event after the built-ins.
    pub fn attach(&mut self, est: Box<dyn Estimator>) {
        self.extra.push(est);
    }
}

/// A recording backend: clones every evidence event into a shared buffer
/// and estimates nothing. Test instrumentation for the engine-blindness
/// guarantee — capture the stream from a live run, replay it into a fresh
/// [`Inference`], and the snapshots must match bit for bit.
pub struct EvidenceLog {
    events: Arc<Mutex<Vec<Evidence>>>,
}

impl EvidenceLog {
    /// Creates a log and the shared handle to read it from outside.
    pub fn new() -> (Self, Arc<Mutex<Vec<Evidence>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                events: Arc::clone(&events),
            },
            events,
        )
    }

    /// Builds a log that records into a caller-supplied buffer. This is
    /// how a harness captures the stream from a run it did not build the
    /// `Inference` for: hand the shared handle in through the attach
    /// surface, read the events out after the run.
    pub fn with_handle(events: Arc<Mutex<Vec<Evidence>>>) -> Self {
        Self { events }
    }
}

impl Estimator for EvidenceLog {
    fn name(&self) -> &'static str {
        "evidence-log"
    }

    fn observe(&mut self, ev: &Evidence) {
        self.events.lock().push(ev.clone());
    }

    fn snapshot(&self, _q: &SnapshotQuery) -> Vec<((u32, u32), LossEstimate)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(sender: u32, receiver: u32, attempt: u16) -> Evidence {
        Evidence::Hop {
            at: SimTime::from_micros(1_000_000),
            sender,
            receiver,
            observation: AttemptObservation::Exact(attempt),
        }
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in EstimatorKind::ALL {
            assert_eq!(kind.as_str().parse::<EstimatorKind>().unwrap(), kind);
        }
        assert!("nonsense".parse::<EstimatorKind>().is_err());
    }

    #[test]
    fn inference_feeds_every_backend_from_one_stream() {
        let mut inf = Inference::new(WindowConfig::default());
        for _ in 0..30 {
            inf.observe(&hop(2, 1, 1));
        }
        inf.observe(&Evidence::PathOutcome {
            at: SimTime::from_micros(2_000_000),
            origin: 2,
            path: vec![(2, 1), (1, 0)],
            sent: 20,
            delivered: 18,
        });
        let q = SnapshotQuery {
            now: SimTime::from_micros(2_000_000),
            r: 7,
            min_samples: 1,
        };
        // The in-band trio saw the hop observations...
        assert_eq!(inf.backend(EstimatorKind::InBand).snapshot(&q).len(), 1);
        assert_eq!(Estimator::snapshot(&inf.bayes, &q).len(), 1);
        // ...and the end-to-end backends saw the path outcome.
        assert!(!inf.backend(EstimatorKind::Minc).snapshot(&q).is_empty());
        assert!(!inf.backend(EstimatorKind::SparseL1).snapshot(&q).is_empty());
    }

    #[test]
    fn evidence_log_captures_and_replays_bit_identically() {
        let build = || {
            let mut inf = Inference::new(WindowConfig::default());
            let (log, handle) = EvidenceLog::new();
            inf.attach(Box::new(log));
            (inf, handle)
        };
        let (mut live, handle) = build();
        for i in 0..50u32 {
            live.observe(&hop(2 + (i % 3), 1, 1 + (i % 2) as u16));
            if i % 10 == 9 {
                live.observe(&Evidence::PathOutcome {
                    at: SimTime::from_micros(u64::from(i) * 100_000),
                    origin: 3,
                    path: vec![(3, 1), (1, 0)],
                    sent: 10,
                    delivered: 9,
                });
            }
        }
        // Replay the captured stream into a fresh stack: snapshots must be
        // bit-identical, proving backends are pure functions of evidence.
        let (mut replayed, _h2) = build();
        for ev in handle.lock().iter() {
            replayed.observe(ev);
        }
        let q = SnapshotQuery {
            now: SimTime::from_micros(5_000_000),
            r: 7,
            min_samples: 1,
        };
        for kind in EstimatorKind::ALL {
            assert_eq!(
                live.backend(kind).snapshot(&q),
                replayed.backend(kind).snapshot(&q),
                "{kind} diverged under replay"
            );
        }
    }

    /// Throughput probe behind `--ignored`: feeds 1M synthetic evidence
    /// events (Hop + periodic PathOutcome, 300 links) through the full
    /// backend fan-out and prints events/sec. Run release for the number
    /// recorded in BENCH_harness.json:
    /// `cargo test --release -p dophy -- --ignored throughput --nocapture`
    #[test]
    #[ignore = "timing probe; run release with --ignored --nocapture"]
    fn estimator_update_throughput() {
        let mut inf = Inference::new(WindowConfig::default());
        const EVENTS: u64 = 1_000_000;
        let start = std::time::Instant::now();
        for i in 0..EVENTS {
            let link = (i % 300) as u32;
            if i % 100 == 99 {
                inf.observe(&Evidence::PathOutcome {
                    at: SimTime::from_micros(i),
                    origin: link + 1,
                    path: vec![(link + 1, link % 7), (link % 7, 0)],
                    sent: 20,
                    delivered: 19,
                });
            } else {
                inf.observe(&hop(link + 1, link % 7, 1 + (i % 3) as u16));
            }
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "estimator fan-out: {EVENTS} events in {secs:.3} s = {:.0} events/s",
            EVENTS as f64 / secs
        );
    }
}
