//! Traditional loss tomography — the comparison baseline.
//!
//! Classical WSN loss tomography infers per-link loss from **end-to-end
//! delivery ratios**: each origin's packets are attributed to a routing
//! path (a snapshot of the tree), and per-link *packet survival*
//! probabilities `σ_l` are chosen to explain the observed delivery ratios
//! `DR_o ≈ Π_{l ∈ path(o)} σ_l`. Two standard solvers are provided:
//!
//! * [`TraditionalTomography::estimate_em`] — an EM algorithm that treats
//!   the hop at which each lost packet died as the latent variable (the
//!   MINC family adapted to unicast collection);
//! * [`TraditionalTomography::estimate_logls`] — weighted least squares on
//!   `log DR_o = Σ log σ_l` with non-positivity constraints, solved by
//!   coordinate descent.
//!
//! Because each hop runs ARQ with budget `R`, survival relates to the
//! per-transmission reception probability as `σ = 1 - (1-p)^R`;
//! [`survival_to_transmission_loss`] inverts this so baseline estimates are
//! comparable with Dophy's fine-grained per-transmission loss ratios.
//!
//! The baseline's structural weakness — the one the paper exploits — is the
//! path attribution: when routing is dynamic, packets sent during a window
//! did not all follow the snapshot path, and the inversion spreads blame
//! over the wrong links.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Directed link key.
pub type LinkKey = (u32, u32);

/// One path's aggregated end-to-end measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathMeasurement {
    /// Links from origin to sink, in order.
    pub path: Vec<LinkKey>,
    /// Packets the origin sent while this path was attributed.
    pub sent: u64,
    /// Of which the sink received.
    pub delivered: u64,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraditionalConfig {
    /// Maximum solver iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the max parameter change.
    pub tol: f64,
    /// Measurements with fewer sent packets are ignored.
    pub min_sent: u64,
}

impl Default for TraditionalConfig {
    fn default() -> Self {
        Self {
            max_iters: 400,
            tol: 1e-7,
            min_sent: 5,
        }
    }
}

/// Collects path measurements and inverts them.
///
/// ```
/// use dophy::baseline::{PathMeasurement, TraditionalConfig, TraditionalTomography};
///
/// let mut tomo = TraditionalTomography::new();
/// // Origin 2 routes 2→1→0; origin 1 routes 1→0 directly.
/// tomo.add(PathMeasurement { path: vec![(2, 1), (1, 0)], sent: 10_000, delivered: 8_100 });
/// tomo.add(PathMeasurement { path: vec![(1, 0)], sent: 10_000, delivered: 9_000 });
/// let sigma = tomo.estimate_em(&TraditionalConfig::default());
/// assert!((sigma[&(1, 0)] - 0.9).abs() < 0.02);
/// assert!((sigma[&(2, 1)] - 0.9).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraditionalTomography {
    measurements: Vec<PathMeasurement>,
}

impl TraditionalTomography {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one aggregated measurement (empty paths and zero-sent
    /// measurements are ignored).
    pub fn add(&mut self, m: PathMeasurement) {
        if !m.path.is_empty() && m.sent > 0 {
            self.measurements.push(m);
        }
    }

    /// Number of usable measurements.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// True when no measurements were collected.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    fn usable<'a>(
        &'a self,
        cfg: &'a TraditionalConfig,
    ) -> impl Iterator<Item = &'a PathMeasurement> {
        self.measurements
            .iter()
            .filter(move |m| m.sent >= cfg.min_sent)
    }

    /// All links appearing in usable measurements.
    fn link_universe(&self, cfg: &TraditionalConfig) -> Vec<LinkKey> {
        let mut set: Vec<LinkKey> = self
            .usable(cfg)
            .flat_map(|m| m.path.iter().copied())
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// EM estimate of per-link packet survival `σ_l`.
    pub fn estimate_em(&self, cfg: &TraditionalConfig) -> HashMap<LinkKey, f64> {
        let links = self.link_universe(cfg);
        if links.is_empty() {
            return HashMap::new();
        }
        let index: HashMap<LinkKey, usize> =
            links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let mut sigma = vec![0.9f64; links.len()];

        for _ in 0..cfg.max_iters {
            let mut trials = vec![0.0f64; links.len()];
            let mut successes = vec![0.0f64; links.len()];
            for m in self.usable(cfg) {
                let k = m.path.len();
                let idx: Vec<usize> = m.path.iter().map(|l| index[l]).collect();
                // Delivered packets credit every hop fully.
                for &j in &idx {
                    trials[j] += m.delivered as f64;
                    successes[j] += m.delivered as f64;
                }
                let lost = (m.sent - m.delivered.min(m.sent)) as f64;
                if lost == 0.0 {
                    continue;
                }
                // Prefix products Π_{i<j} σ and suffix products Π_{i>=j} σ.
                let mut prefix = vec![1.0f64; k + 1];
                for j in 0..k {
                    prefix[j + 1] = prefix[j] * sigma[idx[j]];
                }
                let p_deliver = prefix[k];
                let p_lost = (1.0 - p_deliver).max(1e-12);
                let mut suffix = vec![1.0f64; k + 1];
                for j in (0..k).rev() {
                    suffix[j] = suffix[j + 1] * sigma[idx[j]];
                }
                for j in 0..k {
                    // P(reached hop j | lost) and P(survived hop j | lost).
                    let reach = prefix[j] * (1.0 - suffix[j]) / p_lost;
                    let survive = prefix[j + 1] * (1.0 - suffix[j + 1]) / p_lost;
                    trials[idx[j]] += lost * reach;
                    successes[idx[j]] += lost * survive;
                }
            }
            let mut delta: f64 = 0.0;
            for j in 0..links.len() {
                let new = if trials[j] > 0.0 {
                    (successes[j] / trials[j]).clamp(1e-6, 1.0 - 1e-9)
                } else {
                    sigma[j]
                };
                delta = delta.max((new - sigma[j]).abs());
                sigma[j] = new;
            }
            if delta < cfg.tol {
                break;
            }
        }
        links.into_iter().zip(sigma).collect()
    }

    /// Log-least-squares estimate of per-link packet survival `σ_l`
    /// (coordinate descent on `log σ` with `log σ <= 0`).
    pub fn estimate_logls(&self, cfg: &TraditionalConfig) -> HashMap<LinkKey, f64> {
        let links = self.link_universe(cfg);
        if links.is_empty() {
            return HashMap::new();
        }
        let index: HashMap<LinkKey, usize> =
            links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        // Pre-resolve measurements to (link indices, weight, y).
        struct Row {
            idx: Vec<usize>,
            w: f64,
            y: f64,
        }
        let rows: Vec<Row> = self
            .usable(cfg)
            .map(|m| {
                let dr = (m.delivered as f64 / m.sent as f64).clamp(1e-4, 1.0);
                Row {
                    idx: m.path.iter().map(|l| index[l]).collect(),
                    w: m.sent as f64,
                    y: dr.ln(),
                }
            })
            .collect();
        // membership[l] = rows containing link l.
        let mut membership: Vec<Vec<usize>> = vec![Vec::new(); links.len()];
        for (r, row) in rows.iter().enumerate() {
            for &l in &row.idx {
                membership[l].push(r);
            }
        }
        let mut x = vec![-0.05f64; links.len()]; // log σ, start near σ≈0.95
        for _ in 0..cfg.max_iters {
            let mut delta: f64 = 0.0;
            for l in 0..links.len() {
                let (mut num, mut den) = (0.0f64, 0.0f64);
                for &r in &membership[l] {
                    let row = &rows[r];
                    let others: f64 = row.idx.iter().filter(|&&k| k != l).map(|&k| x[k]).sum();
                    // A link may appear twice on a looping path; count its
                    // multiplicity.
                    let mult = row.idx.iter().filter(|&&k| k == l).count() as f64;
                    num += row.w * mult * (row.y - others - (mult - 1.0) * x[l]);
                    den += row.w * mult * mult;
                }
                if den > 0.0 {
                    let new = (num / den).min(0.0);
                    delta = delta.max((new - x[l]).abs());
                    x[l] = new;
                }
            }
            if delta < cfg.tol {
                break;
            }
        }
        links.into_iter().zip(x.into_iter().map(f64::exp)).collect()
    }
}

/// Converts per-hop packet survival `σ` (under ARQ budget `r`) into the
/// per-transmission loss ratio `1 - p` where `σ = 1 - (1-p)^r`.
pub fn survival_to_transmission_loss(sigma: f64, r: u16) -> f64 {
    let sigma = sigma.clamp(0.0, 1.0);
    (1.0 - sigma).powf(1.0 / f64::from(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-hop chain: origin → a → sink, known survivals.
    fn chain_measurements(s1: f64, s2: f64, sent: u64) -> TraditionalTomography {
        let mut t = TraditionalTomography::new();
        // Origin 2 → 1 → 0 plus origin 1 → 0 (gives the solver leverage to
        // separate the two links).
        let dr2 = s1 * s2;
        t.add(PathMeasurement {
            path: vec![(2, 1), (1, 0)],
            sent,
            delivered: (sent as f64 * dr2).round() as u64,
        });
        t.add(PathMeasurement {
            path: vec![(1, 0)],
            sent,
            delivered: (sent as f64 * s2).round() as u64,
        });
        t
    }

    #[test]
    fn em_recovers_chain_survivals() {
        let t = chain_measurements(0.8, 0.9, 100_000);
        let est = t.estimate_em(&TraditionalConfig::default());
        assert!((est[&(2, 1)] - 0.8).abs() < 0.01, "σ21 {}", est[&(2, 1)]);
        assert!((est[&(1, 0)] - 0.9).abs() < 0.01, "σ10 {}", est[&(1, 0)]);
    }

    #[test]
    fn logls_recovers_chain_survivals() {
        let t = chain_measurements(0.8, 0.9, 100_000);
        let est = t.estimate_logls(&TraditionalConfig::default());
        assert!((est[&(2, 1)] - 0.8).abs() < 0.02, "σ21 {}", est[&(2, 1)]);
        assert!((est[&(1, 0)] - 0.9).abs() < 0.02, "σ10 {}", est[&(1, 0)]);
    }

    #[test]
    fn star_topology_many_origins() {
        // Origins 1..5 each via their own first hop into shared link (9, 0).
        let shared: f64 = 0.85;
        let firsts = [0.95, 0.9, 0.8, 0.7, 0.99];
        let mut t = TraditionalTomography::new();
        for (i, &f) in firsts.iter().enumerate() {
            let o = (i + 1) as u32;
            t.add(PathMeasurement {
                path: vec![(o, 9), (9, 0)],
                sent: 50_000,
                delivered: (50_000.0 * f * shared).round() as u64,
            });
        }
        // One direct measurement of the shared link pins it down.
        t.add(PathMeasurement {
            path: vec![(9, 0)],
            sent: 50_000,
            delivered: (50_000.0 * shared).round() as u64,
        });
        let est = t.estimate_em(&TraditionalConfig::default());
        assert!(
            (est[&(9, 0)] - shared).abs() < 0.02,
            "shared {}",
            est[&(9, 0)]
        );
        for (i, &f) in firsts.iter().enumerate() {
            let o = (i + 1) as u32;
            assert!(
                (est[&(o, 9)] - f).abs() < 0.03,
                "first hop {o}: {} vs {f}",
                est[&(o, 9)]
            );
        }
    }

    #[test]
    fn misattributed_paths_corrupt_estimates() {
        // Ground truth: origin 2 alternated between two routes, but the
        // snapshot attributes everything to route A. Link (3, 0) on route B
        // was lossy; the inversion wrongly blames route A's links.
        let mut t = TraditionalTomography::new();
        // True delivery: half via A (σ=0.95*0.95), half via B (σ=0.95*0.5).
        let dr: f64 = 0.5 * (0.95 * 0.95) + 0.5 * (0.95 * 0.5);
        t.add(PathMeasurement {
            path: vec![(2, 1), (1, 0)], // snapshot claims route A only
            sent: 100_000,
            delivered: (100_000.0 * dr).round() as u64,
        });
        let est = t.estimate_em(&TraditionalConfig::default());
        // Route A's links get blamed: combined estimate ≈ dr ≈ 0.69, far
        // from the true 0.95*0.95 = 0.90.
        let product = est[&(2, 1)] * est[&(1, 0)];
        assert!((product - dr).abs() < 0.02);
        assert!(
            product < 0.8,
            "misattribution must depress route A estimates: {product}"
        );
    }

    #[test]
    fn survival_loss_conversion() {
        // σ = 1 - (1-p)^R with p = 0.5, R = 7 → σ ≈ 0.9922.
        let p: f64 = 0.5;
        let r = 7;
        let sigma = 1.0 - (1.0 - p).powi(7);
        let loss = survival_to_transmission_loss(sigma, r);
        assert!((loss - 0.5).abs() < 1e-9, "loss {loss}");
        assert_eq!(survival_to_transmission_loss(1.0, r), 0.0);
    }

    #[test]
    fn min_sent_filters_noise() {
        let mut t = TraditionalTomography::new();
        t.add(PathMeasurement {
            path: vec![(1, 0)],
            sent: 2,
            delivered: 0,
        });
        let est = t.estimate_em(&TraditionalConfig {
            min_sent: 5,
            ..TraditionalConfig::default()
        });
        assert!(est.is_empty(), "tiny measurements must be ignored");
    }

    #[test]
    fn empty_collector() {
        let t = TraditionalTomography::new();
        assert!(t.is_empty());
        assert!(t.estimate_em(&TraditionalConfig::default()).is_empty());
        assert!(t.estimate_logls(&TraditionalConfig::default()).is_empty());
    }

    #[test]
    fn zero_delivery_does_not_explode() {
        let mut t = TraditionalTomography::new();
        t.add(PathMeasurement {
            path: vec![(1, 0), (2, 1)],
            sent: 1000,
            delivered: 0,
        });
        let em = t.estimate_em(&TraditionalConfig::default());
        let ls = t.estimate_logls(&TraditionalConfig::default());
        for v in em.values().chain(ls.values()) {
            assert!(v.is_finite() && (0.0..=1.0).contains(v));
        }
    }
}
