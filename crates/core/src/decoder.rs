//! Sink-side decoding: recover the path and per-link retransmission counts.
//!
//! Decoding walks the path *forward* from the plaintext origin: the first
//! encoded symbol is the hop-1 receiver's index in the origin's candidate
//! table, which identifies that receiver; its attempt symbol gives the
//! origin→receiver loss observation; and so on. After `header.hops` records
//! the walk must land exactly on the node that delivered the frame to the
//! sink (`final_sender`) — a built-in consistency check that catches model
//! desynchronisation, since a stream decoded with the wrong tables produces
//! a random walk that almost surely violates it. The final link
//! (`final_sender → sink`) is observed directly by the sink from the MAC
//! attempt counter and appended without decoding.

use crate::header::DophyHeader;
use crate::model_mgr::ModelSet;
use crate::symbols::SymbolSpaces;
use dophy_coding::aggregate::AttemptObservation;
use dophy_coding::model::SymbolModel;
use dophy_coding::range::{RangeCodingError, RangeDecoder, RangeEncoder};
use dophy_sim::{NodeId, Topology};

/// One recovered hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkObservation {
    /// Transmitting node of this hop.
    pub sender: NodeId,
    /// Receiving node of this hop.
    pub receiver: NodeId,
    /// What the sink learned about the attempt count.
    pub observation: AttemptObservation,
    /// Coder symbol of the hop index (for model learning); `None` for the
    /// final, directly observed hop.
    pub hop_sym: Option<usize>,
    /// Coder symbol of the attempt count; `None` for the final hop.
    pub attempt_sym: Option<usize>,
}

/// A fully decoded packet record.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedPacket {
    /// Origin node.
    pub origin: NodeId,
    /// Origin sequence number.
    pub seq: u32,
    /// Hop observations in path order, including the final direct one.
    pub observations: Vec<LinkObservation>,
}

impl DecodedPacket {
    /// The recovered path as a node sequence `origin, ..., sink`.
    pub fn path(&self) -> Vec<NodeId> {
        let mut p = vec![self.origin];
        p.extend(self.observations.iter().map(|o| o.receiver));
        p
    }
}

/// Decoding failures (all detectable, counted by the sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Decoded hop index exceeds the sender's candidate-table size —
    /// the classic signature of decoding with the wrong model epoch.
    IndexOutOfRange {
        /// Node whose table was consulted.
        sender: NodeId,
        /// Decoded (invalid) index.
        index: usize,
    },
    /// The decoded walk did not end at the node that physically delivered
    /// the packet.
    PathMismatch {
        /// Where the decoded walk ended.
        decoded_last: NodeId,
        /// Who actually handed the packet to the sink.
        actual_last: NodeId,
    },
    /// Range-coder failure (truncated stream).
    Coding(RangeCodingError),
    /// A hop disabled coding en route (missing epoch models at a node).
    CodingDisabled,
    /// The claimed hop count cannot occur in this topology — a loop-free
    /// path visits each node at most once, so `hops` must stay below the
    /// node count. Catching this up front avoids burning up to 255 model
    /// decodes on a corrupted header and misreporting it as
    /// [`DecodeError::PathMismatch`].
    HopCountOutOfRange {
        /// Hop count the header claimed.
        hops: u8,
        /// Nodes in the topology.
        node_count: usize,
    },
    /// The plaintext origin does not name a node in this topology —
    /// decoding would walk off the neighbor tables.
    OriginOutOfRange {
        /// Origin id the header claimed.
        origin: NodeId,
        /// Nodes in the topology.
        node_count: usize,
    },
}

impl From<RangeCodingError> for DecodeError {
    fn from(e: RangeCodingError) -> Self {
        Self::Coding(e)
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::IndexOutOfRange { sender, index } => {
                write!(f, "decoded index {index} out of range for {sender}'s table")
            }
            Self::PathMismatch {
                decoded_last,
                actual_last,
            } => write!(
                f,
                "decoded path ends at {decoded_last}, packet arrived from {actual_last}"
            ),
            Self::Coding(e) => write!(f, "range coding failed: {e}"),
            Self::CodingDisabled => write!(f, "coding was disabled en route"),
            Self::HopCountOutOfRange { hops, node_count } => {
                write!(f, "claimed {hops} hops in a {node_count}-node topology")
            }
            Self::OriginOutOfRange { origin, node_count } => {
                write!(
                    f,
                    "origin {origin} out of range in a {node_count}-node topology"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a delivered packet.
///
/// * `final_sender` / `final_attempt` — the MAC-observed last hop.
pub fn decode_packet(
    header: &DophyHeader,
    topo: &Topology,
    spaces: &SymbolSpaces,
    models: &ModelSet,
    final_sender: NodeId,
    final_attempt: u16,
) -> Result<DecodedPacket, DecodeError> {
    // Structural integrity precedes semantic flags: a loop-free path has
    // at most `node_count - 1` encoded hops (the origin plus each receiver
    // are distinct nodes), so larger claims are corruption, not routing.
    if usize::from(header.hops) >= topo.node_count() {
        return Err(DecodeError::HopCountOutOfRange {
            hops: header.hops,
            node_count: topo.node_count(),
        });
    }
    if header.origin.index() >= topo.node_count() {
        return Err(DecodeError::OriginOutOfRange {
            origin: header.origin,
            node_count: topo.node_count(),
        });
    }
    if header.coding_disabled {
        return Err(DecodeError::CodingDisabled);
    }
    // Flush the suspended stream into a complete, decodable buffer.
    let full = RangeEncoder::resume(header.coder_state, header.stream.clone()).finish()?;
    let mut dec = RangeDecoder::new(&full)?;

    let mut observations = Vec::with_capacity(usize::from(header.hops) + 1);
    let mut cur = header.origin;
    for _ in 0..header.hops {
        // Context 1: hop index in `cur`'s candidate table.
        let target = dec.decode_target(models.hop.total())?;
        let (hop_sym, cum, freq) = models.hop.symbol_for(target);
        dec.decode_advance(cum, freq)?;
        let table = topo.neighbors(cur);
        if hop_sym >= table.len() {
            return Err(DecodeError::IndexOutOfRange {
                sender: cur,
                index: hop_sym,
            });
        }
        let receiver = table[hop_sym];

        // Context 2: attempt symbol.
        let target = dec.decode_target(models.attempt.total())?;
        let (attempt_sym, cum, freq) = models.attempt.symbol_for(target);
        dec.decode_advance(cum, freq)?;

        // Context 3: optional refinement.
        let observation = if spaces.refine() {
            let n = spaces.mapper().refine_cardinality(attempt_sym);
            let residual = if n > 1 { dec.decode_uniform(n)? } else { 0 };
            AttemptObservation::Exact(spaces.mapper().join(attempt_sym, residual))
        } else {
            spaces.mapper().observation_of(attempt_sym)
        };

        observations.push(LinkObservation {
            sender: cur,
            receiver,
            observation,
            hop_sym: Some(hop_sym),
            attempt_sym: Some(attempt_sym),
        });
        cur = receiver;
    }

    if cur != final_sender {
        return Err(DecodeError::PathMismatch {
            decoded_last: cur,
            actual_last: final_sender,
        });
    }

    // The final hop is observed directly at the sink.
    observations.push(LinkObservation {
        sender: final_sender,
        receiver: NodeId::SINK,
        observation: AttemptObservation::Exact(final_attempt),
        hop_sym: None,
        attempt_sym: None,
    });

    Ok(DecodedPacket {
        origin: header.origin,
        seq: header.seq,
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_hop;
    use dophy_coding::aggregate::AggregationPolicy;
    use dophy_sim::{Placement, RadioModel, RngHub};

    fn topo() -> Topology {
        Topology::generate(
            Placement::Grid {
                side: 4,
                spacing: 12.0,
            },
            &RadioModel::default(),
            &RngHub::new(8),
        )
    }

    fn spaces(topo: &Topology, policy: AggregationPolicy, refine: bool) -> SymbolSpaces {
        let max_degree = (0..topo.node_count())
            .map(|i| topo.neighbors(NodeId::from_index(i)).len())
            .max()
            .unwrap();
        SymbolSpaces::new(max_degree, 7, policy, refine)
    }

    /// Builds a multi-hop chain toward the sink using best neighbors, then
    /// encodes it and decodes it back.
    fn round_trip(policy: AggregationPolicy, refine: bool, attempts: &[u16]) {
        let t = topo();
        let s = spaces(&t, policy, refine);
        let models = ModelSet::initial(&s);

        // Construct a path: start at the far corner, greedily step to any
        // neighbor closer to the sink (by index distance), `attempts.len()`
        // hops. For the test we only need *valid* sender→receiver pairs.
        let mut path = vec![NodeId(15)];
        while path.len() <= attempts.len() {
            let cur = *path.last().unwrap();
            let next = t.neighbors(cur)[path.len() % t.neighbors(cur).len().max(1)];
            path.push(next);
        }

        let origin = path[0];
        let mut h = DophyHeader::new(origin, 7, 0);
        // All hops except the last are encoded by their receivers.
        for (i, &att) in attempts.iter().enumerate().take(attempts.len() - 1) {
            encode_hop(&mut h, &t, &s, &models, path[i], path[i + 1], att).unwrap();
        }

        let final_sender = path[attempts.len() - 1];
        let final_attempt = attempts[attempts.len() - 1];
        let dec = decode_packet(&h, &t, &s, &models, final_sender, final_attempt).unwrap();

        assert_eq!(dec.origin, origin);
        assert_eq!(dec.seq, 7);
        assert_eq!(dec.observations.len(), attempts.len());
        for (i, obs) in dec.observations.iter().enumerate() {
            assert_eq!(obs.sender, path[i], "hop {i} sender");
            if i + 1 < attempts.len() {
                assert_eq!(obs.receiver, path[i + 1], "hop {i} receiver");
            } else {
                assert_eq!(obs.receiver, NodeId::SINK);
            }
            match obs.observation {
                AttemptObservation::Exact(a) => {
                    assert_eq!(a, attempts[i], "hop {i} attempt");
                }
                AttemptObservation::Range { lo, hi } => {
                    assert!(
                        lo <= attempts[i] && attempts[i] <= hi,
                        "hop {i}: {} not in [{lo},{hi}]",
                        attempts[i]
                    );
                }
            }
        }
    }

    #[test]
    fn identity_round_trip_exact() {
        round_trip(AggregationPolicy::Identity, false, &[1, 3, 2, 7, 1]);
    }

    #[test]
    fn capped_round_trip_censors_tail() {
        round_trip(AggregationPolicy::Cap { cap: 3 }, false, &[1, 5, 2, 7]);
    }

    #[test]
    fn capped_with_refinement_is_lossless() {
        round_trip(AggregationPolicy::Cap { cap: 3 }, true, &[1, 5, 2, 7, 6, 1]);
    }

    #[test]
    fn exp_buckets_round_trip() {
        round_trip(AggregationPolicy::ExpBuckets, false, &[1, 2, 4, 6]);
    }

    #[test]
    fn single_hop_decodes_with_empty_stream() {
        let t = topo();
        let s = spaces(&t, AggregationPolicy::Identity, false);
        let models = ModelSet::initial(&s);
        // Node adjacent to the sink sends directly.
        let sender = *t
            .neighbors(NodeId::SINK)
            .first()
            .expect("sink has neighbors");
        let h = DophyHeader::new(sender, 1, 0);
        let dec = decode_packet(&h, &t, &s, &models, sender, 4).unwrap();
        assert_eq!(dec.observations.len(), 1);
        assert_eq!(
            dec.observations[0].observation,
            AttemptObservation::Exact(4)
        );
        assert_eq!(dec.path(), vec![sender, NodeId::SINK]);
    }

    #[test]
    fn path_mismatch_detected() {
        let t = topo();
        let s = spaces(&t, AggregationPolicy::Identity, false);
        let models = ModelSet::initial(&s);
        let origin = NodeId(15);
        let mid = t.neighbors(origin)[0];
        let mut h = DophyHeader::new(origin, 1, 0);
        encode_hop(&mut h, &t, &s, &models, origin, mid, 1).unwrap();
        // Claim the final sender is someone other than `mid`.
        let wrong = (0..t.node_count() as u32)
            .map(NodeId)
            .find(|&v| v != mid)
            .unwrap();
        let err = decode_packet(&h, &t, &s, &models, wrong, 1).unwrap_err();
        assert!(matches!(err, DecodeError::PathMismatch { .. }));
    }

    #[test]
    fn wrong_epoch_models_fail_detectably() {
        let t = topo();
        let s = spaces(&t, AggregationPolicy::Identity, false);
        let enc_models = ModelSet::initial(&s);
        // Decoder uses a very different model.
        use dophy_coding::model::StaticModel;
        let mut freqs = vec![1u32; s.hop_alphabet()];
        freqs[s.hop_alphabet() - 1] = 60_000;
        let dec_models = ModelSet {
            epoch: 1,
            hop: StaticModel::from_frequencies(&freqs),
            attempt: enc_models.attempt.clone(),
        };
        let origin = NodeId(15);
        let mut h = DophyHeader::new(origin, 1, 0);
        let mut cur = origin;
        let mut truth = Vec::new();
        for i in 0..5u16 {
            // Vary both contexts so the streams differ under the two models.
            let nbrs = t.neighbors(cur);
            let next = nbrs[(i as usize * 3 + 1) % nbrs.len()];
            let attempt = (i % 7) + 1;
            encode_hop(&mut h, &t, &s, &enc_models, cur, next, attempt).unwrap();
            truth.push((cur, next, attempt));
            cur = next;
        }
        // Mismatched models must either fail detectably or decode to values
        // that differ from what was encoded (they cannot silently agree).
        match decode_packet(&h, &t, &s, &dec_models, cur, 1) {
            Err(_) => {}
            Ok(decoded) => {
                let agrees =
                    decoded
                        .observations
                        .iter()
                        .zip(&truth)
                        .all(|(o, &(snd, rcv, att))| {
                            o.sender == snd
                                && o.receiver == rcv
                                && o.observation == AttemptObservation::Exact(att)
                        });
                assert!(!agrees, "wrong models silently decoded the exact truth");
            }
        }
    }

    #[test]
    fn impossible_hop_count_rejected_up_front() {
        let t = topo();
        let s = spaces(&t, AggregationPolicy::Identity, false);
        let models = ModelSet::initial(&s);
        let mut h = DophyHeader::new(NodeId(3), 1, 0);
        h.hops = t.node_count() as u8; // 16 hops in a 16-node topology
        let err = decode_packet(&h, &t, &s, &models, NodeId(3), 1).unwrap_err();
        assert_eq!(
            err,
            DecodeError::HopCountOutOfRange {
                hops: 16,
                node_count: 16
            }
        );
    }

    #[test]
    fn coding_disabled_short_circuits() {
        let t = topo();
        let s = spaces(&t, AggregationPolicy::Identity, false);
        let models = ModelSet::initial(&s);
        let mut h = DophyHeader::new(NodeId(3), 1, 0);
        h.coding_disabled = true;
        let err = decode_packet(&h, &t, &s, &models, NodeId(3), 1).unwrap_err();
        assert_eq!(err, DecodeError::CodingDisabled);
    }
}
