//! Network-health reporting — the operator-facing product of tomography.
//!
//! Everything the stack measures converges here: per-link loss estimates
//! with confidence, watchdog alarms, coverage, traffic statistics, and a
//! ranked list of the links a maintainer should look at first. The report
//! is a serializable struct (machine-readable) with a text renderer
//! (human-readable); `dophy-run --text` and the `link_watchdog` example
//! are thin wrappers around it.

use crate::protocol::SinkState;
use crate::tracking::{detect_anomalies, LinkAlarm};
use dophy_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Report-generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisConfig {
    /// MAC retry budget (for the MLE).
    pub max_attempts: u16,
    /// Minimum samples before a link is reported.
    pub min_samples: u64,
    /// Loss ratio above which a link is considered degraded.
    pub loss_threshold: f64,
    /// Confidence (in standard errors) required to alarm.
    pub min_z: f64,
    /// Links listed in the worst-links table.
    pub top_links: usize,
}

impl Default for DiagnosisConfig {
    fn default() -> Self {
        Self {
            max_attempts: 7,
            min_samples: 20,
            loss_threshold: 0.25,
            min_z: 3.0,
            top_links: 10,
        }
    }
}

/// One link's entry in the report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkHealth {
    /// The directed link.
    pub link: (u32, u32),
    /// Long-run loss estimate (cumulative MLE).
    pub loss: f64,
    /// Wald standard error, when available.
    pub stderr: Option<f64>,
    /// Recent loss estimate (windowed), when the link carried recent
    /// traffic.
    pub recent_loss: Option<f64>,
    /// Expected physical transmissions per delivered packet (energy cost).
    pub expected_tx: Option<f64>,
    /// Observations behind the cumulative estimate.
    pub n_samples: u64,
}

/// The full health report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkHealthReport {
    /// Report timestamp (simulated).
    pub at_s: f64,
    /// Packets delivered to the sink so far.
    pub delivered_packets: u64,
    /// Network-wide delivery ratio.
    pub delivery_ratio: Option<f64>,
    /// Fraction of delivered packets decoded.
    pub decode_success: f64,
    /// Links with enough samples to report.
    pub links_monitored: usize,
    /// All monitored links, worst (highest loss) first.
    pub links: Vec<LinkHealth>,
    /// Active watchdog alarms (windowed estimates), most confident first.
    pub alarms: Vec<LinkAlarm>,
    /// Mean Dophy measurement overhead per delivered packet (bytes).
    pub measurement_bytes_per_packet: f64,
}

impl NetworkHealthReport {
    /// Builds a report from the sink's live state.
    pub fn generate(sink: &SinkState, now: SimTime, cfg: &DiagnosisConfig) -> Self {
        let r = cfg.max_attempts;
        let mut links: Vec<LinkHealth> = sink
            .infer
            .in_band
            .estimates(r, cfg.min_samples)
            .into_iter()
            .map(|((src, dst), est)| {
                let le = sink.infer.in_band.link(src, dst);
                LinkHealth {
                    link: (src, dst),
                    loss: est.loss,
                    stderr: est.stderr,
                    recent_loss: sink
                        .infer
                        .windowed
                        .estimate(now, src, dst, r)
                        .map(|e| e.loss),
                    expected_tx: le.and_then(|l| l.expected_transmissions(r)),
                    n_samples: est.n_samples,
                }
            })
            .collect();
        links.sort_by(|a, b| b.loss.partial_cmp(&a.loss).expect("finite loss"));

        let windowed = sink.infer.windowed.estimates(now, r, cfg.min_samples);
        let alarms = detect_anomalies(&windowed, cfg.loss_threshold, cfg.min_z);

        Self {
            at_s: now.as_secs_f64(),
            delivered_packets: sink.overhead.packets,
            delivery_ratio: sink.total_delivery_ratio(),
            decode_success: sink.decode.success_ratio(),
            links_monitored: links.len(),
            links,
            alarms,
            measurement_bytes_per_packet: sink.overhead.mean_measurement_bytes(),
        }
    }

    /// Renders the human-readable summary.
    pub fn render(&self, top_links: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "network health @ {:.0}s", self.at_s);
        let _ = writeln!(
            out,
            "  delivered {} packets (ratio {}), decode {:.2}%, overhead {:.2} B/pkt",
            self.delivered_packets,
            self.delivery_ratio
                .map(|d| format!("{d:.3}"))
                .unwrap_or_else(|| "-".into()),
            100.0 * self.decode_success,
            self.measurement_bytes_per_packet,
        );
        let _ = writeln!(out, "  monitoring {} links", self.links_monitored);
        if self.alarms.is_empty() {
            let _ = writeln!(out, "  alarms: none");
        } else {
            let _ = writeln!(out, "  ALARMS ({}):", self.alarms.len());
            for a in &self.alarms {
                let _ = writeln!(
                    out,
                    "    n{}->n{}: loss {:.3} ({:.1} sigma over threshold, {} samples)",
                    a.link.0, a.link.1, a.loss, a.z, a.n_samples
                );
            }
        }
        let _ = writeln!(out, "  worst links:");
        let _ = writeln!(
            out,
            "    {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "link", "loss", "±se", "recent", "E[tx]", "samples"
        );
        for l in self.links.iter().take(top_links) {
            let _ = writeln!(
                out,
                "    {:>10} {:>8.3} {:>8} {:>8} {:>8} {:>8}",
                format!("n{}->n{}", l.link.0, l.link.1),
                l.loss,
                l.stderr
                    .map(|s| format!("{s:.3}"))
                    .unwrap_or_else(|| "-".into()),
                l.recent_loss
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "-".into()),
                l.expected_tx
                    .map(|t| format!("{t:.2}"))
                    .unwrap_or_else(|| "-".into()),
                l.n_samples
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{build_simulation, DophyConfig};
    use dophy_sim::{Placement, SimConfig, SimDuration};

    fn run() -> (NetworkHealthReport, u16) {
        let sim = SimConfig {
            placement: Placement::Grid {
                side: 4,
                spacing: 15.0,
            },
            ..SimConfig::canonical(55)
        };
        let cfg = DophyConfig {
            traffic_period: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(20),
            ..DophyConfig::default()
        };
        let (mut engine, shared) = build_simulation(&sim, &cfg);
        engine.start();
        engine.run_for(SimDuration::from_secs(600));
        let s = shared.lock();
        let rep = NetworkHealthReport::generate(
            &s,
            engine.now(),
            &DiagnosisConfig {
                max_attempts: sim.mac.max_attempts,
                ..DiagnosisConfig::default()
            },
        );
        (rep, sim.mac.max_attempts)
    }

    #[test]
    fn report_is_populated_and_sorted() {
        let (rep, _) = run();
        assert!(rep.delivered_packets > 500);
        assert!(rep.decode_success > 0.95);
        assert!(rep.links_monitored >= 10);
        assert_eq!(rep.links.len(), rep.links_monitored);
        for w in rep.links.windows(2) {
            assert!(w[0].loss >= w[1].loss, "links sorted worst first");
        }
        for l in &rep.links {
            assert!((0.0..=1.0).contains(&l.loss));
            assert!(l.n_samples >= 20);
            if let Some(etx) = l.expected_tx {
                assert!(etx >= 1.0);
            }
        }
    }

    #[test]
    fn report_renders_and_serializes() {
        let (rep, _) = run();
        let text = rep.render(5);
        assert!(text.contains("network health"));
        assert!(text.contains("worst links"));
        let json = serde_json::to_string(&rep).unwrap();
        let back: NetworkHealthReport = serde_json::from_str(&json).unwrap();
        // serde_json's default float parsing may be 1 ULP off; compare
        // structure exactly and floats with tolerance.
        assert_eq!(back.delivered_packets, rep.delivered_packets);
        assert_eq!(back.links_monitored, rep.links_monitored);
        assert_eq!(back.alarms.len(), rep.alarms.len());
        for (a, b) in back.links.iter().zip(&rep.links) {
            assert_eq!(a.link, b.link);
            assert_eq!(a.n_samples, b.n_samples);
            assert!((a.loss - b.loss).abs() < 1e-9);
        }
    }
}
