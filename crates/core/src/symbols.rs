//! Symbol spaces for Dophy's two coding contexts.
//!
//! Each hop contributes two symbols to the packet's arithmetic stream:
//!
//! 1. a **next-hop index** — the receiver's position in the sender's
//!    (PRR-sorted) candidate table. Dynamic routing concentrates traffic on
//!    low indices (the best parent is index 0 most of the time), so this
//!    context compresses to well under a bit per hop once the model has
//!    learned the skew;
//! 2. a **retransmission-count symbol** — the attempt number of the first
//!    received copy, passed through the configured aggregation policy
//!    (Optimization 1), optionally followed by a uniform residual when
//!    lossless refinement is enabled.
//!
//! [`SymbolSpaces`] pins down both alphabets for a deployment so every node
//! and the sink agree on model shapes.

use dophy_coding::aggregate::{AggregationPolicy, SymbolMapper};
use serde::{Deserialize, Serialize};

/// Alphabet configuration shared by all nodes and the sink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolSpaces {
    /// Maximum candidate-table size across the network (hop-index alphabet).
    max_degree: usize,
    /// Attempt-count mapper (aggregation policy applied to `1..=R`).
    mapper: SymbolMapper,
    /// When true, aggregated symbols are followed by a uniform residual so
    /// the sink recovers exact attempt counts (lossless mode).
    refine: bool,
}

impl SymbolSpaces {
    /// Builds the alphabets.
    ///
    /// # Panics
    /// Panics if `max_degree == 0` or `max_attempts == 0`.
    pub fn new(
        max_degree: usize,
        max_attempts: u16,
        policy: AggregationPolicy,
        refine: bool,
    ) -> Self {
        assert!(max_degree >= 1, "need at least one forwarding candidate");
        Self {
            max_degree,
            mapper: SymbolMapper::new(policy, max_attempts),
            refine,
        }
    }

    /// Hop-index alphabet size.
    pub fn hop_alphabet(&self) -> usize {
        self.max_degree
    }

    /// Attempt-symbol alphabet size (after aggregation).
    pub fn attempt_alphabet(&self) -> usize {
        self.mapper.num_symbols()
    }

    /// The attempt mapper.
    pub fn mapper(&self) -> &SymbolMapper {
        &self.mapper
    }

    /// Whether lossless refinement is on.
    pub fn refine(&self) -> bool {
        self.refine
    }

    /// MAC retry budget the mapper was built for.
    pub fn max_attempts(&self) -> u16 {
        self.mapper.max_attempts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabets_sized_correctly() {
        let s = SymbolSpaces::new(12, 7, AggregationPolicy::Cap { cap: 3 }, false);
        assert_eq!(s.hop_alphabet(), 12);
        assert_eq!(s.attempt_alphabet(), 3);
        assert_eq!(s.max_attempts(), 7);
        assert!(!s.refine());
    }

    #[test]
    fn identity_policy_keeps_full_alphabet() {
        let s = SymbolSpaces::new(5, 7, AggregationPolicy::Identity, true);
        assert_eq!(s.attempt_alphabet(), 7);
        assert!(s.refine());
    }

    #[test]
    #[should_panic(expected = "forwarding candidate")]
    fn rejects_zero_degree() {
        SymbolSpaces::new(0, 7, AggregationPolicy::Identity, false);
    }
}
