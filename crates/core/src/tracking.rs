//! Time-resolved estimation and link watchdogs.
//!
//! Cumulative estimators ([`crate::estimator::NetworkEstimator`]) converge
//! on the *average* loss — but the networks Dophy targets drift. This
//! module adds:
//!
//! * [`WindowedNetworkEstimator`] — per-link observations bucketed into
//!   fixed time windows; the estimate merges the most recent `k` windows,
//!   so it tracks a moving target with bounded lag and bounded memory;
//! * [`detect_anomalies`] — the network-manager use case from the paper's
//!   introduction: flag links whose loss ratio exceeds a threshold with
//!   statistical confidence (one-sided Wald test on the MLE).

use crate::estimator::{LinkEstimator, LossEstimate};
use dophy_coding::aggregate::AttemptObservation;
use dophy_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Windowing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Width of one bucket.
    pub window: SimDuration,
    /// Number of most-recent buckets merged into an estimate.
    pub merge_windows: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_secs(120),
            merge_windows: 5,
        }
    }
}

/// One link's ring of per-window estimators.
#[derive(Debug, Clone, Default)]
struct LinkWindows {
    /// `(window_index, estimator)`, newest last; pruned to `merge_windows`.
    buckets: Vec<(u64, LinkEstimator)>,
}

impl LinkWindows {
    fn observe(&mut self, widx: u64, obs: AttemptObservation, keep: usize) {
        match self.buckets.last_mut() {
            Some((w, est)) if *w == widx => est.observe(obs),
            _ => {
                let mut est = LinkEstimator::new();
                est.observe(obs);
                self.buckets.push((widx, est));
                // Prune anything that can never be merged again.
                let min_keep = widx.saturating_sub(keep as u64);
                self.buckets.retain(|(w, _)| *w >= min_keep);
            }
        }
    }

    fn merged(&self, newest: u64, keep: usize) -> LinkEstimator {
        let oldest = newest.saturating_sub(keep as u64 - 1);
        let mut merged = LinkEstimator::new();
        for (w, est) in &self.buckets {
            if *w >= oldest && *w <= newest {
                merged.merge(est);
            }
        }
        merged
    }
}

/// Network-wide windowed estimator.
#[derive(Debug, Clone)]
pub struct WindowedNetworkEstimator {
    cfg: WindowConfig,
    links: HashMap<(u32, u32), LinkWindows>,
}

impl WindowedNetworkEstimator {
    /// Creates an estimator with the given windowing.
    pub fn new(cfg: WindowConfig) -> Self {
        Self {
            cfg,
            links: HashMap::new(),
        }
    }

    /// The windowing configuration.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    fn window_index(&self, now: SimTime) -> u64 {
        now.as_micros() / self.cfg.window.as_micros().max(1)
    }

    /// Records one observation at time `now`.
    pub fn observe(&mut self, now: SimTime, src: u32, dst: u32, obs: AttemptObservation) {
        let widx = self.window_index(now);
        let keep = self.cfg.merge_windows;
        self.links
            .entry((src, dst))
            .or_default()
            .observe(widx, obs, keep);
    }

    /// Current estimate for one link: MLE over the last `merge_windows`
    /// buckets ending at `now`. `None` without observations in range.
    pub fn estimate(&self, now: SimTime, src: u32, dst: u32, r: u16) -> Option<LossEstimate> {
        let newest = self.window_index(now);
        let merged = self
            .links
            .get(&(src, dst))?
            .merged(newest, self.cfg.merge_windows);
        if merged.count() == 0 {
            None
        } else {
            merged.mle(r)
        }
    }

    /// All current estimates with at least `min_samples` in-range samples.
    pub fn estimates(
        &self,
        now: SimTime,
        r: u16,
        min_samples: u64,
    ) -> Vec<((u32, u32), LossEstimate)> {
        let newest = self.window_index(now);
        let mut v: Vec<_> = self
            .links
            .iter()
            .filter_map(|(&k, lw)| {
                let merged = lw.merged(newest, self.cfg.merge_windows);
                if merged.count() < min_samples {
                    return None;
                }
                merged.mle(r).map(|e| (k, e))
            })
            .collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }
}

/// Trait adapter: the windowed estimator ages its buckets against the
/// snapshot query's `now`, which is exactly why [`SnapshotQuery`] carries
/// a time.
///
/// [`SnapshotQuery`]: crate::infer::SnapshotQuery
impl crate::infer::Estimator for WindowedNetworkEstimator {
    fn name(&self) -> &'static str {
        "windowed"
    }

    fn observe(&mut self, ev: &crate::infer::Evidence) {
        if let crate::infer::Evidence::Hop {
            at,
            sender,
            receiver,
            observation,
        } = ev
        {
            self.observe(*at, *sender, *receiver, *observation);
        }
    }

    fn snapshot(&self, q: &crate::infer::SnapshotQuery) -> Vec<((u32, u32), LossEstimate)> {
        self.estimates(q.now, q.r, q.min_samples)
    }
}

/// CUSUM change-point detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumConfig {
    /// Observations used to establish the baseline mean.
    pub baseline_samples: u64,
    /// Allowance (slack) per observation, in attempt units — drifts smaller
    /// than this are ignored.
    pub drift: f64,
    /// Alarm threshold on the cumulative sum, in attempt units.
    pub threshold: f64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        Self {
            baseline_samples: 50,
            drift: 0.25,
            threshold: 8.0,
        }
    }
}

/// Direction of a detected change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeDirection {
    /// Attempt counts rose: the link got lossier.
    Degraded,
    /// Attempt counts fell: the link improved.
    Improved,
}

/// A detected change point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangeEvent {
    /// When the alarm fired.
    pub at: SimTime,
    /// Which way the link moved.
    pub direction: ChangeDirection,
    /// Baseline mean attempts before the change.
    pub baseline_mean: f64,
}

/// Per-link CUSUM detector over the attempt-count stream.
///
/// ```
/// use dophy::tracking::{CusumConfig, CusumDetector, ChangeDirection};
/// use dophy_coding::aggregate::AttemptObservation;
/// use dophy_sim::SimTime;
///
/// let mut d = CusumDetector::new(CusumConfig::default());
/// // A healthy phase establishes the baseline ...
/// for i in 0..100u64 {
///     assert!(d.observe(SimTime::from_micros(i), AttemptObservation::Exact(1)).is_none());
/// }
/// // ... then the link collapses: the alarm fires within a few packets.
/// let event = (100..120u64)
///     .find_map(|i| d.observe(SimTime::from_micros(i), AttemptObservation::Exact(4)))
///     .expect("detected");
/// assert_eq!(event.direction, ChangeDirection::Degraded);
/// ```
///
/// Classic two-sided CUSUM on the per-packet attempt counts: after a
/// baseline mean is established, `S⁺` accumulates positive deviations
/// (degradation) and `S⁻` negative ones (improvement); crossing the
/// threshold raises a [`ChangeEvent`] and restarts the baseline, so a
/// sequence of changes produces a sequence of events. Attempt counts are
/// a *leading* indicator — a few dozen packets after a link turns bad the
/// detector fires, long before a delivery-ratio statistic would move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumDetector {
    cfg: CusumConfig,
    baseline_sum: f64,
    baseline_n: u64,
    mean: Option<f64>,
    s_pos: f64,
    s_neg: f64,
}

impl CusumDetector {
    /// New detector.
    pub fn new(cfg: CusumConfig) -> Self {
        Self {
            cfg,
            baseline_sum: 0.0,
            baseline_n: 0,
            mean: None,
            s_pos: 0.0,
            s_neg: 0.0,
        }
    }

    /// Baseline mean attempts, once established.
    pub fn baseline(&self) -> Option<f64> {
        self.mean
    }

    /// Feeds one observation; returns an event when a change is detected.
    pub fn observe(&mut self, now: SimTime, obs: AttemptObservation) -> Option<ChangeEvent> {
        let x = obs.midpoint();
        let Some(mean) = self.mean else {
            self.baseline_sum += x;
            self.baseline_n += 1;
            if self.baseline_n >= self.cfg.baseline_samples {
                self.mean = Some(self.baseline_sum / self.baseline_n as f64);
            }
            return None;
        };
        self.s_pos = (self.s_pos + (x - mean - self.cfg.drift)).max(0.0);
        self.s_neg = (self.s_neg + (mean - x - self.cfg.drift)).max(0.0);
        let direction = if self.s_pos > self.cfg.threshold {
            Some(ChangeDirection::Degraded)
        } else if self.s_neg > self.cfg.threshold {
            Some(ChangeDirection::Improved)
        } else {
            None
        };
        direction.map(|direction| {
            let event = ChangeEvent {
                at: now,
                direction,
                baseline_mean: mean,
            };
            // Restart: learn the post-change baseline afresh.
            *self = Self::new(self.cfg);
            event
        })
    }
}

/// A link flagged by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkAlarm {
    /// The offending directed link.
    pub link: (u32, u32),
    /// Its estimated loss ratio.
    pub loss: f64,
    /// One-sided z-score of the exceedance (how many standard errors the
    /// estimate sits above the threshold).
    pub z: f64,
    /// Samples behind the estimate.
    pub n_samples: u64,
}

/// Flags links whose estimated loss exceeds `loss_threshold` with
/// confidence: `(loss - threshold) / stderr >= min_z`. Estimates without a
/// standard error are flagged only on gross exceedance (2× threshold).
pub fn detect_anomalies(
    estimates: &[((u32, u32), LossEstimate)],
    loss_threshold: f64,
    min_z: f64,
) -> Vec<LinkAlarm> {
    let mut alarms: Vec<LinkAlarm> = estimates
        .iter()
        .filter_map(|&(link, est)| {
            let exceed = est.loss - loss_threshold;
            if exceed <= 0.0 {
                return None;
            }
            match est.stderr {
                Some(se) if se > 0.0 => {
                    let z = exceed / se;
                    (z >= min_z).then_some(LinkAlarm {
                        link,
                        loss: est.loss,
                        z,
                        n_samples: est.n_samples,
                    })
                }
                _ => (est.loss >= 2.0 * loss_threshold).then_some(LinkAlarm {
                    link,
                    loss: est.loss,
                    z: f64::INFINITY,
                    n_samples: est.n_samples,
                }),
            }
        })
        .collect();
    alarms.sort_by(|a, b| b.z.partial_cmp(&a.z).expect("finite or inf z"));
    alarms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    fn feed_window(
        est: &mut WindowedNetworkEstimator,
        from_s: u64,
        to_s: u64,
        attempt: u16,
        per_sec: u64,
    ) {
        for s in from_s..to_s {
            for _ in 0..per_sec {
                est.observe(t(s), 1, 0, AttemptObservation::Exact(attempt));
            }
        }
    }

    #[test]
    fn tracks_a_step_change() {
        // Live query pattern: feed, query, feed, query (windowed state is
        // pruned as time advances, so retroactive queries are unsupported).
        let mut est = WindowedNetworkEstimator::new(WindowConfig {
            window: SimDuration::from_secs(60),
            merge_windows: 2,
        });
        // 0–300 s: perfect link (attempt 1).
        feed_window(&mut est, 0, 300, 1, 5);
        let early = est.estimate(t(299), 1, 0, 7).unwrap();
        // 300–600 s: bad link (attempt 3).
        feed_window(&mut est, 300, 600, 3, 5);
        let late = est.estimate(t(599), 1, 0, 7).unwrap();
        assert!(early.loss < 0.02, "early loss {}", early.loss);
        assert!(
            late.loss > 0.4,
            "late loss {} should reflect the step",
            late.loss
        );
    }

    #[test]
    fn old_windows_age_out() {
        let mut est = WindowedNetworkEstimator::new(WindowConfig {
            window: SimDuration::from_secs(10),
            merge_windows: 2,
        });
        feed_window(&mut est, 0, 10, 7, 3);
        // Long silence: by t=100 the old bucket is out of merge range.
        assert!(est.estimate(t(5), 1, 0, 7).is_some());
        assert!(est.estimate(t(100), 1, 0, 7).is_none());
    }

    #[test]
    fn merge_windows_smooths() {
        // A short burst of bad samples moves a wide-memory estimator much
        // less than a narrow one.
        let run = |merge_windows: usize| {
            let mut est = WindowedNetworkEstimator::new(WindowConfig {
                window: SimDuration::from_secs(60),
                merge_windows,
            });
            feed_window(&mut est, 0, 300, 1, 2);
            feed_window(&mut est, 300, 360, 5, 2);
            est.estimate(t(355), 1, 0, 7).unwrap().loss
        };
        let narrow = run(1);
        let wide = run(10);
        assert!(
            wide < narrow - 0.2,
            "wide memory {wide} should damp the burst vs narrow {narrow}"
        );
    }

    #[test]
    fn estimates_lists_all_links() {
        let mut est = WindowedNetworkEstimator::new(WindowConfig::default());
        for i in 0..20 {
            est.observe(t(i), 1, 0, AttemptObservation::Exact(1));
            est.observe(t(i), 2, 0, AttemptObservation::Exact(2));
        }
        let all = est.estimates(t(19), 7, 10);
        assert_eq!(all.len(), 2);
        assert!(est.estimates(t(19), 7, 21).is_empty());
    }

    fn feed_cusum(d: &mut CusumDetector, from: u64, n: u64, attempt: u16) -> Option<ChangeEvent> {
        for i in 0..n {
            if let Some(e) = d.observe(t(from + i), AttemptObservation::Exact(attempt)) {
                return Some(e);
            }
        }
        None
    }

    #[test]
    fn cusum_detects_degradation_quickly() {
        let mut d = CusumDetector::new(CusumConfig::default());
        assert!(
            feed_cusum(&mut d, 0, 200, 1).is_none(),
            "stationary: no alarm"
        );
        assert_eq!(d.baseline(), Some(1.0));
        // Step to attempt 3 (p 1.0 → ~0.33): must fire within a handful of
        // packets (threshold 8 / excess 1.75 ≈ 5 samples).
        let e = feed_cusum(&mut d, 200, 20, 3).expect("degradation detected");
        assert_eq!(e.direction, ChangeDirection::Degraded);
        assert!((e.baseline_mean - 1.0).abs() < 1e-9);
        assert!(e.at.as_micros() <= t(206).as_micros(), "fired at {}", e.at);
    }

    #[test]
    fn cusum_detects_improvement() {
        let mut d = CusumDetector::new(CusumConfig::default());
        assert!(feed_cusum(&mut d, 0, 100, 4).is_none());
        let e = feed_cusum(&mut d, 100, 20, 1).expect("improvement detected");
        assert_eq!(e.direction, ChangeDirection::Improved);
    }

    #[test]
    fn cusum_no_false_alarm_on_mild_noise() {
        let mut d = CusumDetector::new(CusumConfig::default());
        // Alternating 1/2 attempts: mean 1.5, each deviation 0.5, drift
        // 0.25 leaves ±0.25 per sample but the alternation cancels.
        for i in 0..2000u64 {
            let a = 1 + (i % 2) as u16;
            assert!(
                d.observe(t(i), AttemptObservation::Exact(a)).is_none(),
                "false alarm at {i}"
            );
        }
    }

    #[test]
    fn cusum_rebaselines_after_event() {
        let mut d = CusumDetector::new(CusumConfig::default());
        feed_cusum(&mut d, 0, 100, 1);
        feed_cusum(&mut d, 100, 50, 4).expect("first change");
        // After the alarm the detector re-learns; a second step fires again.
        assert!(feed_cusum(&mut d, 150, 100, 4).is_none(), "re-baselining");
        assert_eq!(d.baseline(), Some(4.0));
        let e2 = feed_cusum(&mut d, 250, 30, 1).expect("second change");
        assert_eq!(e2.direction, ChangeDirection::Improved);
    }

    #[test]
    fn watchdog_flags_confident_bad_links() {
        let estimates = vec![
            (
                (1, 0),
                LossEstimate {
                    p_success: 0.55,
                    loss: 0.45,
                    n_samples: 500,
                    stderr: Some(0.02),
                },
            ),
            (
                (2, 0),
                LossEstimate {
                    p_success: 0.88,
                    loss: 0.12,
                    n_samples: 500,
                    stderr: Some(0.05),
                },
            ),
            (
                (3, 0),
                LossEstimate {
                    p_success: 0.98,
                    loss: 0.02,
                    n_samples: 500,
                    stderr: Some(0.01),
                },
            ),
        ];
        let alarms = detect_anomalies(&estimates, 0.1, 3.0);
        // Link 1: (0.45-0.1)/0.02 = 17.5σ → flagged.
        // Link 2: (0.12-0.1)/0.05 = 0.4σ → not confident.
        // Link 3: below threshold.
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].link, (1, 0));
        assert!(alarms[0].z > 17.0);
    }

    #[test]
    fn watchdog_without_stderr_needs_gross_exceedance() {
        let make = |loss: f64| LossEstimate {
            p_success: 1.0 - loss,
            loss,
            n_samples: 3,
            stderr: None,
        };
        let estimates = vec![((1, 0), make(0.15)), ((2, 0), make(0.5))];
        let alarms = detect_anomalies(&estimates, 0.1, 3.0);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].link, (2, 0));
    }

    #[test]
    fn alarms_sorted_by_confidence() {
        let mk = |loss, se| LossEstimate {
            p_success: 1.0 - loss,
            loss,
            n_samples: 100,
            stderr: Some(se),
        };
        let alarms = detect_anomalies(
            &[((1, 0), mk(0.3, 0.05)), ((2, 0), mk(0.3, 0.01))],
            0.1,
            2.0,
        );
        assert_eq!(alarms.len(), 2);
        assert_eq!(alarms[0].link, (2, 0), "tighter stderr ranks first");
    }
}
