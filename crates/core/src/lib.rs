//! # dophy
//!
//! Reproduction of **Dophy** — *Fine-Grained Loss Tomography in Dynamic
//! Sensor Networks* (Cao, Gao, Dong, Bu; ICPP 2015).
//!
//! Dophy infers per-link loss ratios in collection networks whose routing
//! paths change continuously. Its key observation: link-layer ARQ already
//! *measures* every link it uses — the attempt number of the first
//! successfully received frame is a geometric sample of that link's loss.
//! Dophy makes this observable at the sink by **arithmetically encoding the
//! per-hop retransmission counts (and the path itself) inside each data
//! packet**, at a fraction of a byte per hop, with two optimizations:
//!
//! 1. **Symbol aggregation** ([`symbols`], `dophy_coding::aggregate`) —
//!    collapse rare high retransmission counts into shared symbols,
//!    shrinking the alphabet and the code;
//! 2. **Periodic model updates** ([`model_mgr`]) — the sink learns the
//!    empirical symbol distribution and disseminates refreshed coding
//!    tables, keeping per-symbol redundancy near zero as the network
//!    drifts.
//!
//! ## Crate map
//!
//! | module | role |
//! |---|---|
//! | [`symbols`] | alphabet configuration shared network-wide |
//! | [`header`] | the in-packet measurement header |
//! | [`encoder`] | receiver-side per-hop encoding |
//! | [`decoder`] | sink-side path + retx-count recovery |
//! | [`model_mgr`] | epoch-versioned models, learning, dissemination |
//! | [`estimator`] | truncation/censoring-aware per-link loss MLE |
//! | [`infer`] | pluggable inference backends (in-band / MINC / sparse-L1) behind one trait |
//! | [`bayes`] | conjugate Beta-posterior estimator (small-sample shrinkage) |
//! | [`tracking`] | windowed (time-resolved) estimation + link watchdog |
//! | [`diagnosis`] | operator-facing network-health reports |
//! | [`baseline`] | traditional end-to-end loss tomography (EM / log-LS) |
//! | [`metrics`] | accuracy scoring against ground truth |
//! | [`protocol`] | the runnable stack over `dophy-sim` + `dophy-routing` |
//!
//! ## Quickstart
//!
//! ```
//! use dophy::protocol::{build_simulation, DophyConfig};
//! use dophy_sim::{SimConfig, SimDuration, Placement};
//!
//! let mut sim = SimConfig::canonical(42);
//! sim.placement = Placement::Grid { side: 4, spacing: 14.0 };
//! let dophy = DophyConfig {
//!     traffic_period: SimDuration::from_secs(5),
//!     ..DophyConfig::default()
//! };
//! let (mut engine, shared) = build_simulation(&sim, &dophy);
//! engine.start();
//! engine.run_for(SimDuration::from_secs(300));
//!
//! let sink = shared.lock();
//! println!("delivered {} packets, decode ratio {:.3}",
//!          sink.overhead.packets, sink.decode.success_ratio());
//! for ((src, dst), est) in sink.infer.in_band.estimates(7, 20) {
//!     println!("link {src}->{dst}: loss {:.3} ({} samples)", est.loss, est.n_samples);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod bayes;
pub mod decoder;
pub mod diagnosis;
pub mod encoder;
pub mod estimator;
pub mod header;
pub mod infer;
pub mod metrics;
pub mod model_mgr;
pub mod protocol;
pub mod symbols;
pub mod telemetry;
pub mod tracking;

pub use baseline::{PathMeasurement, TraditionalConfig, TraditionalTomography};
pub use bayes::{BayesLinkEstimator, BayesNetworkEstimator, BetaPrior};
pub use decoder::{decode_packet, DecodeError, DecodedPacket, LinkObservation};
pub use diagnosis::{DiagnosisConfig, LinkHealth, NetworkHealthReport};
pub use encoder::{encode_hop, EncodeError};
pub use estimator::{LinkEstimator, LossEstimate, NetworkEstimator};
pub use header::{DophyHeader, Epoch};
pub use infer::{
    Estimator, EstimatorKind, Evidence, Inference, MincEstimator, SnapshotQuery, SparseL1Estimator,
};
pub use metrics::{score, AccuracyReport};
pub use model_mgr::{ModelManager, ModelSet, ModelUpdateConfig};
pub use protocol::{
    build_simulation, build_simulation_with_faults, DophyConfig, DophyNode, SinkState,
};
pub use symbols::SymbolSpaces;
pub use telemetry::sample_metrics;
pub use tracking::{
    detect_anomalies, ChangeDirection, ChangeEvent, CusumConfig, CusumDetector, LinkAlarm,
    WindowConfig, WindowedNetworkEstimator,
};
