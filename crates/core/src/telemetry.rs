//! Metrics sampling for Dophy simulations.
//!
//! [`sample_metrics`] reads the cumulative state of a running engine
//! (single-loop or sharded, via [`SimDriver`]) plus the shared
//! [`SinkState`] and writes it into a [`MetricsRegistry`]. Harnesses call
//! it on a sim-time cadence and then [`MetricsRegistry::snapshot`] to
//! grow the exported time series.
//!
//! Sampling only *reads* engine/sink state, so (like the event observers)
//! it cannot perturb a run.

use crate::protocol::{DophyNode, SinkState};
use dophy_sim::obs::MetricsRegistry;
use dophy_sim::{NodeId, SimDriver, Subsystem};

/// Samples MAC, routing, coding, decode, and estimator state into `reg`.
///
/// Counter metrics are set to the engine's cumulative totals (monotone
/// across snapshots); gauges carry instantaneous values; the
/// `mac_queue_depth` histogram accumulates one observation per node per
/// call, building a distribution of queue depths over the run.
pub fn sample_metrics<E: SimDriver<DophyNode>>(
    reg: &mut MetricsRegistry,
    engine: &E,
    sink: &SinkState,
) {
    let trace = engine.trace_snapshot();
    let topo = engine.topology();
    let n = topo.node_count();

    // Engine throughput: cumulative events executed, plus the sim-relative
    // rate (events per simulated second — a workload-density figure that,
    // unlike wall-clock rates, is deterministic and comparable across
    // machines; wall-clock events/sec lives in the run telemetry).
    reg.set_counter("engine_events_processed", &[], engine.events_processed());
    let sim_secs = engine.now().as_micros() as f64 / 1e6;
    if sim_secs > 0.0 {
        reg.set_gauge(
            "engine_events_per_sim_sec",
            &[],
            engine.events_processed() as f64 / sim_secs,
        );
    }

    // MAC layer: ARQ and queue totals.
    reg.set_counter("mac_unicast_started", &[], trace.unicast_started);
    reg.set_counter("mac_unicast_acked", &[], trace.unicast_acked);
    reg.set_counter("mac_unicast_failed", &[], trace.unicast_failed);
    reg.set_counter("mac_queue_drops", &[], trace.queue_drops);
    reg.set_counter("mac_broadcast_tx", &[], trace.broadcast_tx);
    reg.set_counter("mac_broadcast_rx", &[], trace.broadcast_rx);
    reg.set_counter("mac_bytes_on_air", &[], trace.bytes_on_air);

    // Per-node transmit pressure: retries show up as data_tx on the
    // node's outgoing links; queue depth is read instantaneously.
    let mut per_node_tx = vec![0u64; n];
    for (link, truth) in topo.links().iter().zip(trace.links()) {
        per_node_tx[link.src.index()] += truth.data_tx;
    }
    for (i, &node_tx) in per_node_tx.iter().enumerate() {
        let node = NodeId::from_index(i);
        let label = i.to_string();
        let labels = [("node", label.as_str())];
        reg.set_counter("mac_data_tx", &labels, node_tx);
        let depth = engine.queue_depth(node) as f64;
        reg.set_gauge("mac_queue_depth", &labels, depth);
        reg.observe("mac_queue_depth_hist", &[], depth);
    }

    // Routing layer: beacon traffic and tree churn.
    let mut beacons_sent = 0u64;
    let mut beacons_heard = 0u64;
    let mut parent_changes = 0u64;
    for i in 0..n {
        let stats = engine.protocol(NodeId::from_index(i)).router().stats();
        beacons_sent += stats.beacons_sent;
        beacons_heard += stats.beacons_heard;
        parent_changes += stats.parent_changes;
    }
    reg.set_counter("routing_beacons_sent", &[], beacons_sent);
    reg.set_counter("routing_beacons_heard", &[], beacons_heard);
    reg.set_counter("routing_parent_changes", &[], parent_changes);
    reg.set_counter("routing_no_route_drops", &[], sink.no_route_drops);
    reg.set_counter("routing_ttl_drops", &[], sink.ttl_drops);
    if sim_secs > 0.0 {
        reg.set_gauge(
            "routing_beacon_rate_hz",
            &[],
            beacons_sent as f64 / sim_secs,
        );
    }

    // Coding / model lifecycle.
    reg.set_counter("coding_encode_disabled", &[], sink.encode_disabled);
    reg.set_counter(
        "model_dissemination_bytes",
        &[],
        sink.manager.dissemination_bytes,
    );
    reg.set_gauge("model_epoch_count", &[], sink.manager.epoch_count() as f64);

    // Decode outcomes by cause.
    let d = &sink.decode;
    for (cause, count) in [
        ("ok", d.ok),
        ("unknown_epoch", d.unknown_epoch),
        ("bad_index", d.bad_index),
        ("path_mismatch", d.path_mismatch),
        ("coding", d.coding),
        ("disabled", d.disabled),
        ("bad_hop_count", d.bad_hop_count),
        ("malformed", d.malformed),
    ] {
        reg.set_counter("decode_packets", &[("outcome", cause)], count);
    }
    reg.set_counter("decode_fallback_ok", &[], d.fallback_ok);
    reg.set_counter("decode_quarantined_total", &[], d.quarantined());
    reg.set_counter("fault_corrupt_frame_drops", &[], sink.corrupt_frame_drops);
    reg.set_counter(
        "model_dissemination_drops",
        &[],
        sink.manager.dissemination_drops,
    );

    // Estimator sample coverage.
    let covered = sink.infer.in_band.covered_links();
    reg.set_gauge("estimator_covered_links", &[], covered as f64);
    let total_links = topo.links().len();
    if total_links > 0 {
        reg.set_gauge(
            "estimator_coverage_ratio",
            &[],
            covered as f64 / total_links as f64,
        );
    }

    // Application layer: end-to-end delivery.
    reg.set_counter(
        "app_packets_sent",
        &[],
        sink.sent_per_origin.iter().sum::<u64>(),
    );
    reg.set_counter(
        "app_packets_delivered",
        &[],
        sink.delivered_per_origin.iter().sum::<u64>(),
    );

    // Hot-path self-profiling, when a profiler is installed on the engine:
    // per-subsystem wall-time histograms (nanoseconds). These carry wall
    // clock, not sim state — they vary run to run and are excluded from
    // determinism fingerprints.
    if let Some(prof) = engine.profiler() {
        for sub in Subsystem::ALL {
            reg.set_histogram(
                "profile_wall_ns",
                &[("subsystem", sub.name())],
                prof.histogram(sub),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{build_simulation, DophyConfig};
    use dophy_sim::{LinkDynamics, MacConfig, Placement, RadioModel, SimConfig, SimDuration};

    #[test]
    fn sampler_fills_expected_metric_families() {
        let sim = SimConfig {
            placement: Placement::Grid {
                side: 4,
                spacing: 14.0,
            },
            radio: RadioModel::default(),
            mac: MacConfig::default(),
            dynamics: LinkDynamics::Static,
            seed: 42,
        };
        let dophy = DophyConfig::default();
        let (mut engine, sink) = build_simulation(&sim, &dophy);
        engine.start();
        engine.run_for(SimDuration::from_secs(120));
        let mut reg = MetricsRegistry::new();
        {
            let sink = sink.lock();
            sample_metrics(&mut reg, &engine, &sink);
        }
        let snap = reg.snapshot(engine.now()).clone();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        for required in [
            "engine_events_processed",
            "mac_unicast_started",
            "routing_beacons_sent",
            "coding_encode_disabled",
            "model_dissemination_bytes",
            "decode_packets{outcome=ok}",
            "app_packets_sent",
        ] {
            assert!(names.contains(&required), "missing {required}: {names:?}");
        }
        assert!(
            snap.counters
                .iter()
                .any(|(k, v)| k == "mac_unicast_started" && *v > 0),
            "traffic should have flowed"
        );
        assert!(
            snap.gauges
                .iter()
                .any(|(k, _)| k == "estimator_coverage_ratio"),
            "coverage gauge missing"
        );
        assert!(
            snap.gauges
                .iter()
                .any(|(k, v)| k == "engine_events_per_sim_sec" && *v > 0.0),
            "engine throughput gauge missing"
        );
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(k, _)| k == "mac_queue_depth_hist")
            .expect("queue depth histogram");
        assert_eq!(hist.count, engine.topology().node_count() as u64);
    }
}
