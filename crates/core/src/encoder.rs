//! Receiver-side per-hop encoding — Dophy's in-network half.
//!
//! When a node accepts a data frame it appends two (or three) symbols to
//! the packet's arithmetic stream:
//!
//! 1. its own index in the **sender's** forwarding-candidate table, so the
//!    sink can walk the path forward starting from the plaintext origin;
//! 2. the frame's **attempt number** (read from the MAC header of the first
//!    received copy — exactly the number of transmissions until first
//!    success on the link), mapped through the aggregation policy;
//! 3. optionally the uniform residual that makes aggregation lossless.
//!
//! The node never decodes the stream: it resumes the suspended coder state
//! carried in the header, encodes, and suspends again. The sink is the only
//! place the stream is flushed and read.

use crate::header::DophyHeader;
use crate::model_mgr::ModelSet;
use crate::symbols::SymbolSpaces;
use dophy_coding::model::SymbolModel;
use dophy_coding::range::{RangeCodingError, RangeEncoder};
use dophy_sim::{NodeId, Topology};

/// Why a hop could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The receiver is not in the sender's candidate table (should not
    /// happen with a consistent topology; indicates a stale table).
    NotACandidate {
        /// Frame sender.
        sender: NodeId,
        /// Receiving node (self).
        receiver: NodeId,
    },
    /// The arithmetic coder rejected the operation.
    Coding(RangeCodingError),
    /// Hop counter would overflow (routing loop far beyond any sane TTL).
    TooManyHops,
}

impl From<RangeCodingError> for EncodeError {
    fn from(e: RangeCodingError) -> Self {
        Self::Coding(e)
    }
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotACandidate { sender, receiver } => {
                write!(f, "{receiver} is not a forwarding candidate of {sender}")
            }
            Self::Coding(e) => write!(f, "range coding failed: {e}"),
            Self::TooManyHops => write!(f, "hop counter overflow"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes one hop record into `header` (mutating its stream and coder
/// state and bumping the hop counter).
///
/// * `sender` — the node the frame was received from;
/// * `receiver` — the encoding node itself;
/// * `attempt` — attempt number of the first received copy (`1..=R`).
pub fn encode_hop(
    header: &mut DophyHeader,
    topo: &Topology,
    spaces: &SymbolSpaces,
    models: &ModelSet,
    sender: NodeId,
    receiver: NodeId,
    attempt: u16,
) -> Result<(), EncodeError> {
    let hop_index = topo
        .neighbors(sender)
        .iter()
        .position(|&v| v == receiver)
        .ok_or(EncodeError::NotACandidate { sender, receiver })?;
    if header.hops == u8::MAX {
        return Err(EncodeError::TooManyHops);
    }

    let state = header.coder_state;
    let stream = std::mem::take(&mut header.stream);
    let mut enc = RangeEncoder::resume(state, stream);

    // Context 1: next-hop index.
    let (cum, freq) = models.hop.lookup(hop_index);
    enc.encode(cum, freq, models.hop.total())?;

    // Context 2: (aggregated) attempt count.
    let (sym, residual) = spaces.mapper().split(attempt);
    let (cum, freq) = models.attempt.lookup(sym);
    enc.encode(cum, freq, models.attempt.total())?;

    // Context 3: optional lossless refinement.
    if spaces.refine() {
        let n = spaces.mapper().refine_cardinality(sym);
        if n > 1 {
            enc.encode_uniform(residual, n)?;
        }
    }

    let (state, stream) = enc.suspend();
    header.coder_state = state;
    header.stream = stream;
    header.hops += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_coding::aggregate::AggregationPolicy;
    use dophy_sim::{Placement, RadioModel, RngHub};

    fn topo() -> Topology {
        Topology::generate(
            Placement::Grid {
                side: 3,
                spacing: 12.0,
            },
            &RadioModel::default(),
            &RngHub::new(8),
        )
    }

    fn spaces(topo: &Topology) -> SymbolSpaces {
        let max_degree = (0..topo.node_count())
            .map(|i| topo.neighbors(NodeId::from_index(i)).len())
            .max()
            .unwrap();
        SymbolSpaces::new(max_degree, 7, AggregationPolicy::Cap { cap: 4 }, false)
    }

    #[test]
    fn encoding_grows_header_and_hops() {
        let t = topo();
        let s = spaces(&t);
        let models = ModelSet::initial(&s);
        let mut h = DophyHeader::new(NodeId(8), 1, 0);
        // Walk 8 → some neighbor chain toward the sink.
        let sender = NodeId(8);
        let receiver = t.neighbors(sender)[0];
        encode_hop(&mut h, &t, &s, &models, sender, receiver, 2).unwrap();
        assert_eq!(h.hops, 1);
        // Another hop.
        let next = t.neighbors(receiver)[0];
        encode_hop(&mut h, &t, &s, &models, receiver, next, 1).unwrap();
        assert_eq!(h.hops, 2);
        // Stream stays tiny for two hops of likely symbols.
        assert!(
            h.finished_stream_len() <= 8,
            "got {}",
            h.finished_stream_len()
        );
    }

    #[test]
    fn non_candidate_is_rejected() {
        let t = topo();
        let s = spaces(&t);
        let models = ModelSet::initial(&s);
        let mut h = DophyHeader::new(NodeId(0), 1, 0);
        // Find a node that is NOT a neighbor of node 0.
        let non = (0..t.node_count() as u32)
            .map(NodeId)
            .find(|&v| v != NodeId(0) && !t.neighbors(NodeId(0)).contains(&v));
        if let Some(non) = non {
            let err = encode_hop(&mut h, &t, &s, &models, NodeId(0), non, 1).unwrap_err();
            assert!(matches!(err, EncodeError::NotACandidate { .. }));
            assert_eq!(h.hops, 0, "failed encode must not mutate hops");
        }
    }

    #[test]
    fn likely_symbols_cost_under_a_byte_per_hop() {
        let t = topo();
        let s = spaces(&t);
        let models = ModelSet::initial(&s);
        let mut h = DophyHeader::new(NodeId(8), 1, 0);
        // 10 hops of the most likely symbols (index 0, attempt 1) — walk
        // back and forth between two neighbors.
        let a = NodeId(8);
        let b = t.neighbors(a)[0];
        for i in 0..10 {
            let (snd, rcv) = if i % 2 == 0 { (a, b) } else { (b, a) };
            encode_hop(&mut h, &t, &s, &models, snd, rcv, 1).unwrap();
        }
        assert_eq!(h.hops, 10);
        let per_hop = h.finished_stream_len() as f64 / 10.0;
        assert!(per_hop < 1.2, "bytes/hop {per_hop}");
    }
}
