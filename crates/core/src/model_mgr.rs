//! Epoch-versioned probability models and their dissemination
//! (the paper's Optimization 2).
//!
//! The sink continuously accumulates the empirical distribution of hop-index
//! and retransmission-count symbols. Periodically it freezes the counts into
//! a new [`ModelSet`] (quantized exactly as the wire blob the nodes would
//! receive, so both sides code against identical tables), bumps the epoch,
//! and *disseminates* it. Dissemination costs radio bytes — charged against
//! Dophy's total overhead — and reaches each node after a per-node delay,
//! so freshly switched packets and stale nodes coexist; the epoch byte in
//! every packet header tells the sink which models to decode with.

use crate::header::Epoch;
use crate::symbols::SymbolSpaces;
use dophy_coding::model::{AdaptiveModel, StaticModel};
use dophy_coding::serialize::ModelBlob;
use dophy_sim::{DisseminationFaultConfig, RngHub, SimDuration, SimTime, StreamKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One epoch's coding tables (shared verbatim by nodes and sink).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSet {
    /// Wire epoch id (low 8 bits of the internal epoch counter).
    pub epoch: Epoch,
    /// Next-hop-index context.
    pub hop: StaticModel,
    /// Retransmission-count context.
    pub attempt: StaticModel,
}

impl ModelSet {
    /// The epoch-0 prior every deployment starts from: both contexts get
    /// geometric-shaped priors (traffic favours the best neighbor; first
    /// attempts usually succeed). No dissemination is needed for epoch 0 —
    /// it is compiled into the firmware.
    pub fn initial(spaces: &SymbolSpaces) -> Self {
        Self {
            epoch: 0,
            hop: StaticModel::truncated_geometric(spaces.hop_alphabet(), 0.5),
            attempt: StaticModel::truncated_geometric(spaces.attempt_alphabet(), 0.7),
        }
    }

    /// Dissemination blob size for this set: epoch byte + both model blobs.
    pub fn wire_size(&self) -> usize {
        1 + ModelBlob::encode(&self.hop).wire_size() + ModelBlob::encode(&self.attempt).wire_size()
    }
}

/// Tuning for the update/dissemination machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdateConfig {
    /// How often the sink considers refreshing the model.
    pub update_period: SimDuration,
    /// Minimum new observations since the last refresh before another one
    /// is worthwhile.
    pub min_observations: u64,
    /// Number of past epochs the sink keeps for decoding stale packets.
    pub history_len: usize,
    /// Mean radio transmissions each node spends receiving/forwarding one
    /// dissemination flood (multiplies the blob size into network bytes).
    pub flood_cost_factor: f64,
    /// Upper bound on the per-node dissemination delay.
    pub max_propagation_delay: SimDuration,
    /// Minimum per-symbol redundancy (KL divergence of the learned
    /// distribution from the currently deployed model, in bits) before a
    /// refresh is worth its dissemination cost. Zero = always refresh when
    /// enough observations arrived.
    pub min_kl_bits: f64,
}

impl std::hash::Hash for ModelUpdateConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.update_period.as_micros());
        state.write_u64(self.min_observations);
        state.write_usize(self.history_len);
        state.write_u64(self.flood_cost_factor.to_bits());
        state.write_u64(self.max_propagation_delay.as_micros());
        state.write_u64(self.min_kl_bits.to_bits());
    }
}

impl Default for ModelUpdateConfig {
    fn default() -> Self {
        Self {
            update_period: SimDuration::from_secs(120),
            min_observations: 200,
            history_len: 8,
            flood_cost_factor: 1.3,
            max_propagation_delay: SimDuration::from_secs(10),
            min_kl_bits: 0.0,
        }
    }
}

/// Sink-side model state: learning, epoch history, and per-node
/// dissemination schedules.
#[derive(Debug, Clone)]
pub struct ModelManager {
    spaces: SymbolSpaces,
    cfg: ModelUpdateConfig,
    node_count: usize,
    /// Full epoch history, index = internal epoch number.
    history: Vec<ModelSet>,
    /// Learning accumulators (reset never; rescaling forgets slowly).
    hop_learn: AdaptiveModel,
    attempt_learn: AdaptiveModel,
    observations_since_refresh: u64,
    /// `activation[n]` = times at which node `n` switches to each epoch
    /// (index parallel to `history`; epoch 0 activates at time zero).
    activation: Vec<Vec<SimTime>>,
    /// Hop distance of each node from the sink: dissemination floods
    /// outward, so closer nodes activate new epochs earlier.
    depth: Vec<usize>,
    /// Total bytes charged to dissemination so far.
    pub dissemination_bytes: u64,
    /// Number of refreshes performed.
    pub refreshes: u64,
    /// Injected dissemination faults (drops/extra delay), when configured.
    dissem_faults: Option<DisseminationFaultConfig>,
    /// Node/epoch floods suppressed by injected dissemination faults.
    pub dissemination_drops: u64,
}

impl ModelManager {
    /// Creates the manager; all nodes start on the built-in epoch 0.
    ///
    /// `depths[n]` is node `n`'s hop distance from the sink (use
    /// `Topology::hops_to_sink`); dissemination floods outward from the
    /// sink, so per-node activation delays grow with depth — an origin
    /// adopting a new epoch implies the (closer) nodes on its path already
    /// hold it, which is what keeps in-flight packets decodable.
    pub fn new(spaces: SymbolSpaces, cfg: ModelUpdateConfig, depths: Vec<usize>) -> Self {
        let node_count = depths.len();
        // Disconnected nodes (usize::MAX) never originate traffic; give
        // them the maximum finite depth for delay purposes.
        let max_finite = depths
            .iter()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0);
        let depth: Vec<usize> = depths
            .into_iter()
            .map(|d| if d == usize::MAX { max_finite } else { d })
            .collect();
        let initial = ModelSet::initial(&spaces);
        Self {
            hop_learn: AdaptiveModel::new(spaces.hop_alphabet()),
            attempt_learn: AdaptiveModel::new(spaces.attempt_alphabet()),
            spaces,
            cfg,
            node_count,
            history: vec![initial],
            observations_since_refresh: 0,
            activation: vec![vec![SimTime::ZERO]; node_count],
            depth,
            dissemination_bytes: 0,
            refreshes: 0,
            dissem_faults: None,
            dissemination_drops: 0,
        }
    }

    /// Enables injected dissemination faults: each future epoch flood
    /// independently misses some nodes (they never activate that epoch)
    /// and reaches others late. Draws come from the dedicated
    /// [`StreamKind::Fault`] streams, so enabling faults leaves the
    /// unfaulted dissemination schedule untouched.
    pub fn set_dissemination_faults(&mut self, faults: DisseminationFaultConfig) {
        self.dissem_faults = Some(faults);
    }

    /// The alphabet configuration.
    pub fn spaces(&self) -> &SymbolSpaces {
        &self.spaces
    }

    /// The update configuration.
    pub fn config(&self) -> &ModelUpdateConfig {
        &self.cfg
    }

    /// Latest epoch's models.
    pub fn latest(&self) -> &ModelSet {
        self.history.last().expect("epoch 0 always present")
    }

    /// Feeds one decoded hop record into the learners.
    pub fn observe(&mut self, hop_sym: usize, attempt_sym: usize) {
        self.hop_learn.observe(hop_sym);
        self.attempt_learn.observe(attempt_sym);
        self.observations_since_refresh += 1;
    }

    /// The models node `n` is running at time `now` (the newest epoch whose
    /// dissemination reached it).
    pub fn node_current(&self, node: usize, now: SimTime) -> &ModelSet {
        let acts = &self.activation[node];
        let mut best = 0usize;
        for (epoch, &t) in acts.iter().enumerate() {
            if t <= now {
                best = epoch;
            }
        }
        &self.history[best]
    }

    /// Models node `node` holds for wire-epoch `epoch` at time `now` — i.e.
    /// the newest issued epoch with that wire id whose dissemination has
    /// reached the node. Forwarders use this to encode with the *packet's*
    /// epoch; `None` (not yet received / overwritten wire id) disables
    /// coding for the packet.
    pub fn node_models_for_epoch(
        &self,
        node: usize,
        epoch: Epoch,
        now: SimTime,
    ) -> Option<&ModelSet> {
        let acts = &self.activation[node];
        self.history
            .iter()
            .enumerate()
            .rev()
            .find(|(i, m)| acts[*i] <= now && m.epoch == epoch)
            .map(|(_, m)| m)
    }

    /// Models for decoding a packet stamped with wire-epoch `epoch`.
    /// Returns `None` when the epoch has aged out of the sink's history
    /// window (or was never issued) — such packets are skipped.
    pub fn models_for_epoch(&self, epoch: Epoch) -> Option<&ModelSet> {
        let newest = self.history.len() - 1;
        let oldest_kept = newest.saturating_sub(self.cfg.history_len.saturating_sub(1));
        self.history[oldest_kept..=newest]
            .iter()
            .rev()
            .find(|m| m.epoch == epoch)
    }

    /// Second-choice models for wire-epoch `epoch`, used to retry a decode
    /// that failed with the primary [`Self::models_for_epoch`] choice.
    ///
    /// Two situations make the primary choice wrong: the wire epoch byte
    /// wraps (two live epochs share an id — the newest match wins, but the
    /// packet may predate it), or a node whose dissemination stalled keeps
    /// encoding with the epoch *before* the one the sink would pick. The
    /// fallback is therefore the next-older in-window epoch: an alias with
    /// the same wire id when one exists, else the set issued immediately
    /// before the primary match. `None` when no distinct in-window
    /// candidate exists. A wrong fallback is safe to try — decoding with
    /// mismatched tables almost surely fails the path-consistency check
    /// rather than producing a silent wrong decode.
    pub fn fallback_models_for_epoch(&self, epoch: Epoch) -> Option<&ModelSet> {
        let newest = self.history.len() - 1;
        let oldest_kept = newest.saturating_sub(self.cfg.history_len.saturating_sub(1));
        let window = &self.history[oldest_kept..=newest];
        let primary = window.iter().rposition(|m| m.epoch == epoch)?;
        // Prefer an older alias of the same wire id, else the predecessor.
        window[..primary]
            .iter()
            .rev()
            .find(|m| m.epoch == epoch)
            .or_else(|| primary.checked_sub(1).map(|i| &window[i]))
    }

    /// Attempts a refresh: freezes the learned counts into a new epoch and
    /// schedules its dissemination. Returns the blob size charged, or
    /// `None` when too little new data arrived.
    ///
    /// `now` is the refresh time; per-node propagation delays are drawn
    /// deterministically from `hub`.
    pub fn refresh(&mut self, now: SimTime, hub: &RngHub) -> Option<usize> {
        if self.observations_since_refresh < self.cfg.min_observations {
            return None;
        }
        // Cost-aware gating: skip the flood when the deployed model is
        // still close to the learned distribution (low per-symbol
        // redundancy means little to gain).
        if self.cfg.min_kl_bits > 0.0 && self.pending_redundancy_bits() < self.cfg.min_kl_bits {
            self.observations_since_refresh = 0;
            return None;
        }
        self.observations_since_refresh = 0;
        let internal_epoch = self.history.len();
        // Quantize through the wire format so sink and nodes use the
        // identical tables.
        let (_, hop) = ModelBlob::canonical(&self.hop_learn.snapshot());
        let (_, attempt) = ModelBlob::canonical(&self.attempt_learn.snapshot());
        let set = ModelSet {
            epoch: (internal_epoch & 0xFF) as Epoch,
            hop,
            attempt,
        };
        let blob_bytes = set.wire_size();
        let network_bytes =
            (blob_bytes as f64 * self.node_count as f64 * self.cfg.flood_cost_factor) as u64;
        self.dissemination_bytes += network_bytes;
        self.refreshes += 1;
        self.history.push(set);
        // Flood outward: a node at depth d activates after roughly
        // d/(max_depth+1) of the propagation budget, plus one hop of jitter.
        let max_us = self.cfg.max_propagation_delay.as_micros().max(1);
        let max_depth = self.depth.iter().copied().max().unwrap_or(0);
        let per_hop = (max_us / (max_depth as u64 + 1)).max(1);
        for (n, acts) in self.activation.iter_mut().enumerate() {
            let mut rng = hub.stream(
                StreamKind::Protocol,
                0xD155_EE00 + n as u64,
                internal_epoch as u64,
            );
            let base = per_hop * self.depth[n] as u64;
            let mut delay = SimDuration::from_micros(base + rng.gen_range(0..per_hop));
            // Injected dissemination faults draw from the dedicated Fault
            // streams so the schedule above is identical with faults off.
            if let Some(faults) = self.dissem_faults {
                let mut frng = hub.stream(
                    StreamKind::Fault,
                    0xD15F_0000 ^ n as u64,
                    internal_epoch as u64,
                );
                if frng.gen::<f64>() < faults.drop_prob {
                    // The flood never reaches this node: park the
                    // activation unreachably far in the future.
                    self.dissemination_drops += 1;
                    acts.push(SimTime::from_micros(u64::MAX));
                    continue;
                }
                let u: f64 = frng.gen();
                let span = -(1.0 - u.min(1.0 - 1e-12)).ln();
                let extra = faults.mean_extra_delay.as_micros() as f64 * span;
                delay = delay + SimDuration::from_micros(extra as u64);
            }
            acts.push(now + delay);
        }
        // The sink itself flips instantly.
        self.activation[0][internal_epoch] = now;
        Some(blob_bytes)
    }

    /// Number of epochs issued so far (including the built-in epoch 0).
    pub fn epoch_count(&self) -> usize {
        self.history.len()
    }

    /// Per-symbol redundancy (bits) of coding the learned distribution
    /// with the currently deployed models: the sum of KL divergences of
    /// both contexts. This is what a refresh would save per hop record.
    pub fn pending_redundancy_bits(&self) -> f64 {
        use dophy_coding::entropy::kl_divergence_bits;
        let cur = self.latest();
        let hop_truth: Vec<f64> = self
            .hop_learn
            .snapshot()
            .frequencies()
            .iter()
            .map(|&f| f64::from(f))
            .collect();
        let att_truth: Vec<f64> = self
            .attempt_learn
            .snapshot()
            .frequencies()
            .iter()
            .map(|&f| f64::from(f))
            .collect();
        kl_divergence_bits(&hop_truth, &cur.hop) + kl_divergence_bits(&att_truth, &cur.attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dophy_coding::aggregate::AggregationPolicy;
    use dophy_coding::model::SymbolModel;

    fn spaces() -> SymbolSpaces {
        SymbolSpaces::new(8, 7, AggregationPolicy::Cap { cap: 4 }, false)
    }

    fn mgr() -> ModelManager {
        ModelManager::new(
            spaces(),
            ModelUpdateConfig::default(),
            vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3],
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn initial_epoch_is_zero_everywhere() {
        let m = mgr();
        assert_eq!(m.latest().epoch, 0);
        assert_eq!(m.epoch_count(), 1);
        for n in 0..10 {
            assert_eq!(m.node_current(n, SimTime::ZERO).epoch, 0);
        }
        assert_eq!(m.models_for_epoch(0).unwrap().epoch, 0);
        assert!(m.models_for_epoch(3).is_none());
    }

    #[test]
    fn refresh_requires_observations() {
        let mut m = mgr();
        let hub = RngHub::new(1);
        assert_eq!(m.refresh(t(100), &hub), None, "no data yet");
        for _ in 0..ModelUpdateConfig::default().min_observations {
            m.observe(0, 0);
        }
        let bytes = m.refresh(t(100), &hub).expect("enough data");
        assert!(bytes > 2, "blob carries two models");
        assert_eq!(m.epoch_count(), 2);
        assert_eq!(m.latest().epoch, 1);
        assert!(m.dissemination_bytes > bytes as u64, "flood cost > blob");
        // Counter reset: immediate second refresh refuses.
        assert_eq!(m.refresh(t(200), &hub), None);
    }

    #[test]
    fn learned_skew_shows_in_new_epoch() {
        let mut m = mgr();
        let hub = RngHub::new(2);
        // Heavily skewed: hop index 0 and attempt symbol 0 dominate.
        for i in 0..2000 {
            m.observe(usize::from(i % 50 == 0), usize::from(i % 25 == 0));
        }
        m.refresh(t(10), &hub).unwrap();
        let set = m.latest();
        assert!(set.hop.probability(0) > 0.9, "hop skew learned");
        assert!(set.attempt.probability(1) < 0.1);
    }

    #[test]
    fn nodes_activate_with_bounded_delay() {
        let mut m = mgr();
        let hub = RngHub::new(3);
        for _ in 0..500 {
            m.observe(0, 0);
        }
        m.refresh(t(1000), &hub).unwrap();
        // Sink flips instantly.
        assert_eq!(m.node_current(0, t(1000)).epoch, 1);
        // All nodes on the new epoch after the max delay.
        let horizon = t(1000) + ModelUpdateConfig::default().max_propagation_delay;
        for n in 0..10 {
            assert_eq!(m.node_current(n, horizon).epoch, 1, "node {n}");
        }
        // Before the refresh, everyone was on epoch 0.
        for n in 0..10 {
            assert_eq!(m.node_current(n, t(999)).epoch, 0, "node {n}");
        }
    }

    #[test]
    fn history_window_evicts_old_epochs() {
        let cfg = ModelUpdateConfig {
            history_len: 2,
            min_observations: 1,
            ..ModelUpdateConfig::default()
        };
        let mut m = ModelManager::new(spaces(), cfg, vec![0, 1, 2, 3]);
        let hub = RngHub::new(4);
        for round in 1..=4u64 {
            m.observe(0, 0);
            m.refresh(t(round * 100), &hub).unwrap();
        }
        // Epochs 0..=4 exist; window of 2 keeps {3, 4}.
        assert!(m.models_for_epoch(4).is_some());
        assert!(m.models_for_epoch(3).is_some());
        assert!(m.models_for_epoch(2).is_none());
        assert!(m.models_for_epoch(0).is_none());
    }

    #[test]
    fn dissemination_is_deterministic() {
        let build = || {
            let mut m = mgr();
            let hub = RngHub::new(5);
            for _ in 0..500 {
                m.observe(1, 2);
            }
            m.refresh(t(50), &hub).unwrap();
            (0..10)
                .map(|n| m.node_current(n, t(55)).epoch)
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn kl_gate_skips_pointless_refreshes() {
        let cfg = ModelUpdateConfig {
            min_observations: 1,
            min_kl_bits: 0.05,
            ..ModelUpdateConfig::default()
        };
        let hub = RngHub::new(6);
        let mut m = ModelManager::new(spaces(), cfg, vec![0, 1, 1, 2]);
        // Feed observations that roughly match the epoch-0 prior shape
        // (skewed toward symbol 0): redundancy stays low → no refresh.
        for i in 0..1000u32 {
            let hop = usize::from(i % 3 == 1) + usize::from(i % 9 == 2);
            let att = usize::from(i % 4 == 1);
            m.observe(hop.min(7), att);
        }
        let kl_matched = m.pending_redundancy_bits();
        if kl_matched < 0.05 {
            assert_eq!(
                m.refresh(t(100), &hub),
                None,
                "low KL must skip (kl={kl_matched})"
            );
            assert_eq!(m.refreshes, 0);
        }
        // Now feed a wildly different distribution: refresh goes through.
        for _ in 0..5000 {
            m.observe(7, 3);
        }
        assert!(m.pending_redundancy_bits() > 0.05);
        assert!(m.refresh(t(200), &hub).is_some());
        assert_eq!(m.refreshes, 1);
    }

    #[test]
    fn redundancy_is_zero_right_after_refresh() {
        let cfg = ModelUpdateConfig {
            min_observations: 1,
            ..ModelUpdateConfig::default()
        };
        let hub = RngHub::new(7);
        let mut m = ModelManager::new(spaces(), cfg, vec![0, 1]);
        for i in 0..3000usize {
            m.observe(i % 2, (i / 2) % 3);
        }
        let before = m.pending_redundancy_bits();
        m.refresh(t(10), &hub).unwrap();
        let after = m.pending_redundancy_bits();
        assert!(
            after < before / 5.0 && after < 0.02,
            "refresh should collapse redundancy: {before} -> {after}"
        );
    }

    #[test]
    fn fallback_prefers_predecessor_epoch() {
        let cfg = ModelUpdateConfig {
            min_observations: 1,
            ..ModelUpdateConfig::default()
        };
        let mut m = ModelManager::new(spaces(), cfg, vec![0, 1, 2, 3]);
        let hub = RngHub::new(11);
        assert!(m.fallback_models_for_epoch(0).is_none(), "epoch 0 alone");
        for round in 1..=3u64 {
            m.observe(0, 0);
            m.refresh(t(round * 100), &hub).unwrap();
        }
        // History: epochs 0..=3. Fallback for wire-epoch 2 is epoch 1.
        assert_eq!(m.fallback_models_for_epoch(2).unwrap().epoch, 1);
        assert_eq!(m.fallback_models_for_epoch(1).unwrap().epoch, 0);
        assert!(m.fallback_models_for_epoch(9).is_none(), "never issued");
    }

    #[test]
    fn fallback_resolves_wire_epoch_aliases() {
        // Wire epochs wrap at 256; with a large history window two epochs
        // can share an id. Issue 257 epochs so internal 1 and 257 both
        // carry wire id 1, keep a window large enough to hold both, and
        // check the fallback picks the older alias.
        let cfg = ModelUpdateConfig {
            min_observations: 1,
            history_len: 400,
            ..ModelUpdateConfig::default()
        };
        let mut m = ModelManager::new(spaces(), cfg, vec![0, 1]);
        let hub = RngHub::new(12);
        for round in 1..=257u64 {
            m.observe((round % 3) as usize, 0);
            m.refresh(t(round * 10), &hub).unwrap();
        }
        let primary = m.models_for_epoch(1).unwrap();
        let fallback = m.fallback_models_for_epoch(1).unwrap();
        assert_eq!(primary.epoch, 1);
        assert_eq!(fallback.epoch, 1);
        assert!(
            !std::ptr::eq(primary, fallback),
            "fallback must be the *older* alias, not the primary"
        );
    }

    #[test]
    fn dissemination_faults_drop_and_delay_nodes() {
        let cfg = ModelUpdateConfig {
            min_observations: 1,
            ..ModelUpdateConfig::default()
        };
        let build = |faulted: bool| {
            let mut m = ModelManager::new(spaces(), cfg, (0..50).map(|n| n / 10).collect());
            if faulted {
                m.set_dissemination_faults(DisseminationFaultConfig {
                    drop_prob: 0.3,
                    mean_extra_delay: SimDuration::from_secs(5),
                });
            }
            let hub = RngHub::new(13);
            m.observe(0, 0);
            m.refresh(t(1000), &hub).unwrap();
            m
        };
        let clean = build(false);
        let faulted = build(true);
        assert_eq!(clean.dissemination_drops, 0);
        assert!(
            (5..25).contains(&faulted.dissemination_drops),
            "about 30% of 50 nodes dropped: {}",
            faulted.dissemination_drops
        );
        // Dropped nodes never activate epoch 1, even far in the future.
        let far = t(1_000_000);
        let stuck = (0..50)
            .filter(|&n| faulted.node_current(n, far).epoch == 0)
            .count() as u64;
        assert_eq!(stuck, faulted.dissemination_drops);
        // Sink always flips instantly, faults or not.
        assert_eq!(faulted.node_current(0, t(1000)).epoch, 1);
        // Determinism: same seed, same faulted schedule.
        let again = build(true);
        assert_eq!(again.dissemination_drops, faulted.dissemination_drops);
        for n in 0..50 {
            assert_eq!(
                again.node_current(n, t(1010)).epoch,
                faulted.node_current(n, t(1010)).epoch
            );
        }
    }

    #[test]
    fn initial_models_are_skewed_priors() {
        let set = ModelSet::initial(&spaces());
        assert!(set.hop.probability(0) > set.hop.probability(1));
        assert!(set.attempt.probability(0) > set.attempt.probability(1));
        assert_eq!(set.hop.num_symbols(), 8);
        assert_eq!(set.attempt.num_symbols(), 4);
    }
}
