//! Bayesian per-link estimation with a conjugate Beta prior.
//!
//! For *exact* (uncensored, untruncated) geometric observations the Beta
//! prior is conjugate: with prior `Beta(α, β)` and samples `a_1..a_n`,
//!
//! ```text
//! posterior = Beta(α + n, β + Σ(a_i - 1))
//! ```
//!
//! This gives closed-form posterior means and credible intervals at O(1)
//! per update — attractive for links with few samples, where the MLE is
//! noisy and a mild prior toward "links that carry traffic are decent"
//! regularises sensibly. Truncation at the retry budget and censored
//! (aggregated) observations break exact conjugacy; this estimator handles
//! them approximately (censored ranges contribute their conditional-mean
//! attempt count), which is precisely the trade-off the
//! `ablation-prior` experiment quantifies against the exact MLE.

use crate::estimator::LossEstimate;
use dophy_coding::aggregate::AttemptObservation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Beta prior over the per-transmission reception probability `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaPrior {
    /// Pseudo-successes.
    pub alpha: f64,
    /// Pseudo-failures.
    pub beta: f64,
}

impl BetaPrior {
    /// A weakly informative prior centred at `p` with `strength`
    /// pseudo-observations.
    pub fn centred(p: f64, strength: f64) -> Self {
        let p = p.clamp(0.01, 0.99);
        Self {
            alpha: p * strength,
            beta: (1.0 - p) * strength,
        }
    }

    /// Flat prior `Beta(1, 1)`.
    pub fn flat() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
        }
    }
}

impl Default for BetaPrior {
    /// Default prior: links that ETX routing actually selects are usually
    /// good (centre 0.9, worth ~3 observations).
    fn default() -> Self {
        Self::centred(0.9, 3.0)
    }
}

/// Conjugate Bayesian estimator for one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BayesLinkEstimator {
    prior: BetaPrior,
    /// Accumulated successes (= observations).
    n: f64,
    /// Accumulated failures (= Σ attempts − n).
    failures: f64,
    /// Integer observation count for reporting.
    count: u64,
}

impl BayesLinkEstimator {
    /// New estimator under `prior`.
    pub fn new(prior: BetaPrior) -> Self {
        Self {
            prior,
            n: 0.0,
            failures: 0.0,
            count: 0,
        }
    }

    /// Records one observation. Censored ranges contribute the conditional
    /// mean of a geometric restricted to `[lo, hi]` under the current
    /// posterior-mean `p` (an EM-flavoured approximation).
    pub fn observe(&mut self, obs: AttemptObservation) {
        let attempts = match obs {
            AttemptObservation::Exact(a) => f64::from(a),
            AttemptObservation::Range { lo, hi } => {
                let p = self.posterior_mean().clamp(0.05, 0.95);
                conditional_mean_attempts(p, lo, hi)
            }
        };
        self.n += 1.0;
        self.failures += attempts - 1.0;
        self.count += 1;
    }

    /// Posterior mean of `p`.
    pub fn posterior_mean(&self) -> f64 {
        let a = self.prior.alpha + self.n;
        let b = self.prior.beta + self.failures;
        a / (a + b)
    }

    /// Posterior standard deviation of `p`.
    pub fn posterior_sd(&self) -> f64 {
        let a = self.prior.alpha + self.n;
        let b = self.prior.beta + self.failures;
        let s = a + b;
        (a * b / (s * s * (s + 1.0))).sqrt()
    }

    /// Point estimate in the common [`LossEstimate`] shape.
    pub fn estimate(&self) -> Option<LossEstimate> {
        if self.count == 0 {
            return None;
        }
        let p = self.posterior_mean();
        Some(LossEstimate {
            p_success: p,
            loss: 1.0 - p,
            n_samples: self.count,
            stderr: Some(self.posterior_sd()),
        })
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Mean of a geometric(p) attempt count conditioned on `lo <= A <= hi`.
fn conditional_mean_attempts(p: f64, lo: u16, hi: u16) -> f64 {
    let q = 1.0 - p;
    let (mut mass, mut mean) = (0.0, 0.0);
    for a in lo..=hi {
        let w = q.powi(i32::from(a) - 1) * p;
        mass += w;
        mean += w * f64::from(a);
    }
    if mass > 0.0 {
        mean / mass
    } else {
        f64::from(lo + hi) / 2.0
    }
}

/// Network-wide Bayesian estimator.
#[derive(Debug, Clone, Default)]
pub struct BayesNetworkEstimator {
    prior: Option<BetaPrior>,
    /// Ordered so iteration (and with it any summary float work) runs in
    /// a fixed link order — the crate-wide determinism convention; see
    /// `estimator.rs`.
    links: BTreeMap<(u32, u32), BayesLinkEstimator>,
}

impl BayesNetworkEstimator {
    /// Estimator applying `prior` to every link.
    pub fn new(prior: BetaPrior) -> Self {
        Self {
            prior: Some(prior),
            links: BTreeMap::new(),
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, src: u32, dst: u32, obs: AttemptObservation) {
        let prior = self.prior.unwrap_or_default();
        self.links
            .entry((src, dst))
            .or_insert_with(|| BayesLinkEstimator::new(prior))
            .observe(obs);
    }

    /// All estimates with at least `min_samples` observations.
    pub fn estimates(&self, min_samples: u64) -> Vec<((u32, u32), LossEstimate)> {
        let mut v: Vec<_> = self
            .links
            .iter()
            .filter(|(_, e)| e.count() >= min_samples)
            .filter_map(|(&k, e)| e.estimate().map(|est| (k, est)))
            .collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }
}

impl crate::infer::Estimator for BayesNetworkEstimator {
    fn name(&self) -> &'static str {
        "bayes"
    }

    fn observe(&mut self, ev: &crate::infer::Evidence) {
        if let crate::infer::Evidence::Hop {
            sender,
            receiver,
            observation,
            ..
        } = ev
        {
            self.observe(*sender, *receiver, *observation);
        }
    }

    fn snapshot(&self, q: &crate::infer::SnapshotQuery) -> Vec<((u32, u32), LossEstimate)> {
        self.estimates(q.min_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn feed(est: &mut BayesLinkEstimator, p: f64, n: usize, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..n {
            let mut a = 1u16;
            while rng.gen::<f64>() >= p && a < 50 {
                a += 1;
            }
            est.observe(AttemptObservation::Exact(a));
        }
    }

    #[test]
    fn posterior_converges_to_truth() {
        for &p in &[0.9, 0.6, 0.4] {
            let mut e = BayesLinkEstimator::new(BetaPrior::default());
            feed(&mut e, p, 20_000, 3);
            let est = e.estimate().unwrap();
            assert!(
                (est.p_success - p).abs() < 0.02,
                "p={p} got {}",
                est.p_success
            );
        }
    }

    #[test]
    fn prior_regularises_small_samples() {
        // One unlucky observation (attempt 7): the flat-prior/MLE view says
        // p ≈ 1/7; the informed prior keeps the estimate moderate.
        let mut informed = BayesLinkEstimator::new(BetaPrior::centred(0.8, 10.0));
        let mut flat = BayesLinkEstimator::new(BetaPrior::flat());
        informed.observe(AttemptObservation::Exact(7));
        flat.observe(AttemptObservation::Exact(7));
        assert!(informed.posterior_mean() > flat.posterior_mean() + 0.2);
    }

    #[test]
    fn posterior_sd_shrinks_with_data() {
        let mut e = BayesLinkEstimator::new(BetaPrior::default());
        feed(&mut e, 0.7, 10, 5);
        let sd_small = e.posterior_sd();
        feed(&mut e, 0.7, 5_000, 6);
        let sd_large = e.posterior_sd();
        assert!(sd_large < sd_small / 5.0, "{sd_small} -> {sd_large}");
    }

    #[test]
    fn conditional_mean_bounds() {
        for p in [0.2, 0.5, 0.9] {
            let m = conditional_mean_attempts(p, 3, 7);
            assert!((3.0..=7.0).contains(&m), "p={p} mean {m}");
            // Higher p concentrates mass near the low end.
            let m_lossy = conditional_mean_attempts(0.1, 3, 7);
            let m_good = conditional_mean_attempts(0.9, 3, 7);
            assert!(m_good < m_lossy);
        }
    }

    #[test]
    fn censored_observations_accepted() {
        let mut e = BayesLinkEstimator::new(BetaPrior::default());
        for _ in 0..500 {
            e.observe(AttemptObservation::Exact(1));
        }
        for _ in 0..50 {
            e.observe(AttemptObservation::Range { lo: 4, hi: 7 });
        }
        let est = e.estimate().unwrap();
        assert!(est.p_success > 0.5 && est.p_success < 0.95);
        assert_eq!(est.n_samples, 550);
    }

    #[test]
    fn empty_estimator_reports_none() {
        let e = BayesLinkEstimator::new(BetaPrior::default());
        assert!(e.estimate().is_none());
    }

    #[test]
    fn network_estimator_filters_by_samples() {
        let mut n = BayesNetworkEstimator::new(BetaPrior::default());
        for _ in 0..10 {
            n.observe(1, 0, AttemptObservation::Exact(1));
        }
        n.observe(2, 0, AttemptObservation::Exact(2));
        assert_eq!(n.estimates(5).len(), 1);
        assert_eq!(n.estimates(1).len(), 2);
    }

    #[test]
    fn snapshot_order_is_fixed_and_insertion_invariant() {
        // Regression for the old `HashMap` link store: the snapshot must
        // come back in link-key order, and the exact same bytes must come
        // back regardless of the order links were first seen.
        let feed = |pairs: &[(u32, u32)]| {
            let mut n = BayesNetworkEstimator::new(BetaPrior::default());
            for &(s, d) in pairs {
                for a in [1u16, 1, 2, 1, 3] {
                    n.observe(s, d, AttemptObservation::Exact(a));
                }
            }
            n.estimates(1)
        };
        let fwd = feed(&[(1, 0), (5, 2), (3, 0), (2, 1), (4, 4)]);
        let rev = feed(&[(4, 4), (2, 1), (3, 0), (5, 2), (1, 0)]);
        assert_eq!(fwd, rev);
        assert!(
            fwd.windows(2).all(|w| w[0].0 < w[1].0),
            "snapshot not in link order: {:?}",
            fwd.iter().map(|e| e.0).collect::<Vec<_>>()
        );
    }
}
